//! The stack (input-history) effect of Section 2.2: the same `'11' → '00'`
//! transition is faster or slower depending on how the inputs reached `'11'`,
//! because the internal PMOS-stack node stores a different charge.
//!
//! Run with `cargo run --release --example nor2_history`.

use mcsm::cells::cell::{CellKind, CellTemplate};
use mcsm::cells::stimuli::InputHistory;
use mcsm::cells::tech::Technology;
use mcsm::cells::testbench::{CellTestbench, LoadSpec};
use mcsm::spice::analysis::TranOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_130nm();
    let nor2 = CellTemplate::new(CellKind::Nor2, tech.clone());
    let vdd = tech.vdd;

    let t_first = 1e-9;
    let t_final = 2e-9;
    let transition = 50e-12;
    let event = t_final + 0.5 * transition;

    println!("history                        V(N) before '00'   50% delay [ps]");
    for (label, fast) in [
        ("'10' -> '11' -> '00' (fast)", true),
        ("'01' -> '11' -> '00' (slow)", false),
    ] {
        let history = if fast {
            InputHistory::nor2_fast_case(vdd, transition, t_first, t_final)
        } else {
            InputHistory::nor2_slow_case(vdd, transition, t_first, t_final)
        };
        let mut bench = CellTestbench::new(&nor2, &LoadSpec::Fanout(2))?;
        bench.apply_history(&history)?;
        let result = bench.run_transient(&TranOptions::new(3.2e-9, 2e-12))?;
        let internal = result.node(&bench.internal_names()[0])?;
        let output = result.node("out")?;
        let v_n = internal.value_at(t_final - 20e-12);
        let delay = output
            .crossing(0.5 * vdd, true)
            .map(|t| (t - event) * 1e12)
            .unwrap_or(f64::NAN);
        println!("{label:<30} {v_n:>8.3} V          {delay:>8.2}");
    }
    println!("\nThe slow case must first recharge the internal node, so its output");
    println!("transition is later — the effect the MCSM models and SIS/baseline MIS miss.");
    Ok(())
}
