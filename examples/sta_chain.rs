//! Waveform-based timing of a small gate chain with all four delay-calculation
//! backends: SIS-only (what conventional STA does), baseline MIS, the complete
//! MCSM, and the paper's §3.4 selective mode. For a multiple-input-switching
//! event the SIS backend is optimistic; the MCSM backend tracks the
//! internal-node charge; the selective backend pays for the internal-node
//! tables only on lightly loaded gates.
//!
//! Run with `cargo run --release --example sta_chain`.

use std::collections::HashMap;

use mcsm::cells::cell::CellKind;
use mcsm::cells::tech::Technology;
use mcsm::core::config::CharacterizationConfig;
use mcsm::core::selective::SelectivePolicy;
use mcsm::core::sim::{CsmSimOptions, DriveWaveform};
use mcsm::sta::arrival::{propagate, TimingOptions};
use mcsm::sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm::sta::graph::GateGraph;
use mcsm::sta::models::ModelLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_130nm();
    println!("characterizing INV and NOR2 ...");
    let library = ModelLibrary::characterize(
        &tech,
        &[CellKind::Inverter, CellKind::Nor2],
        &CharacterizationConfig::standard(),
    )?;

    // a, b -> NOR2 -> mid -> INV -> out
    let mut graph = GateGraph::new();
    let a = graph.net("a");
    let b = graph.net("b");
    let mid = graph.net("mid");
    let out = graph.net("out");
    graph.mark_primary_input(a);
    graph.mark_primary_input(b);
    graph.mark_primary_output(out);
    graph.add_gate("u_nor", CellKind::Nor2, &[a, b], mid)?;
    graph.add_gate("u_inv", CellKind::Inverter, &[mid], out)?;

    // Both primary inputs fall together at 1 ns: a MIS event at the NOR2.
    let mut drives = HashMap::new();
    drives.insert(a, DriveWaveform::falling_ramp(tech.vdd, 1e-9, 80e-12));
    drives.insert(b, DriveWaveform::falling_ramp(tech.vdd, 1e-9, 80e-12));

    println!("backend                    arrival(mid, rise) [ps]   arrival(out, fall) [ps]");
    for (label, backend) in [
        ("SisOnly", DelayBackend::SisOnly),
        ("BaselineMis", DelayBackend::BaselineMis),
        ("CompleteMcsm", DelayBackend::CompleteMcsm),
        // The paper's §3.4 operating point: with the default 8x load-ratio
        // threshold, the lightly loaded NOR2 keeps its internal-node tables
        // while a heavily loaded gate would drop to the simple MIS model.
        (
            "Selective(8x)",
            DelayBackend::Selective(SelectivePolicy::default()),
        ),
    ] {
        // `.with_threads(0)` fans each topological level across all cores;
        // results are bit-identical to the sequential run.
        let options = TimingOptions::new(
            DelayCalculator::new(backend, CsmSimOptions::new(4e-9, 1e-12), tech.vdd),
            2e-15,
        )
        .with_threads(0);
        let timing = propagate(&graph, &library, &drives, &options)?;
        let t_mid = timing.arrival_time(mid, true)?.unwrap_or(f64::NAN) * 1e12;
        let t_out = timing.arrival_time(out, false)?.unwrap_or(f64::NAN) * 1e12;
        println!("{label:<26} {t_mid:>22.2}   {t_out:>22.2}");
    }
    println!("\nSIS-only timing is optimistic for the simultaneous-switching event;");
    println!("the complete MCSM accounts for the stack-node charge as well, and the");
    println!("selective backend matches it wherever the load keeps the effect visible.");
    Ok(())
}
