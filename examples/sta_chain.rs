//! Waveform-based timing of a small gate chain with all four delay-calculation
//! backends: SIS-only (what conventional STA does), baseline MIS, the complete
//! MCSM, and the paper's §3.4 selective mode. For a multiple-input-switching
//! event the SIS backend is optimistic; the MCSM backend tracks the
//! internal-node charge; the selective backend pays for the internal-node
//! tables only on lightly loaded gates.
//!
//! The circuit is described once through the unified `Netlist` IR and lowered
//! to the STA form — the same value would lower to a transistor-level SPICE
//! deck or replay single gates through the generic model engine. (Hand-
//! assembling a `GateGraph`, as earlier revisions of this example did, still
//! works but is the legacy path; `GateGraph` is the STA-internal form.)
//!
//! Run with `cargo run --release --example sta_chain`.
//! Set `MCSM_BENCH_FAST=1` for coarse characterization grids (CI smoke mode).

use std::collections::HashMap;

use mcsm::cells::cell::CellKind;
use mcsm::cells::tech::Technology;
use mcsm::core::config::CharacterizationConfig;
use mcsm::core::selective::SelectivePolicy;
use mcsm::core::sim::{CsmSimOptions, DriveWaveform};
use mcsm::net::NetlistBuilder;
use mcsm::sta::arrival::{propagate, TimingOptions};
use mcsm::sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm::sta::models::ModelLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_130nm();
    let config = if mcsm::num::par::env_flag("MCSM_BENCH_FAST") {
        CharacterizationConfig::coarse()
    } else {
        CharacterizationConfig::standard()
    };
    println!("characterizing INV and NOR2 ...");
    let library =
        ModelLibrary::characterize(&tech, &[CellKind::Inverter, CellKind::Nor2], &config)?;

    // a, b -> NOR2 -> mid -> INV -> out, described backend-neutrally.
    let netlist = NetlistBuilder::new("sta_chain")
        .primary_input("a")
        .primary_input("b")
        .gate("u_nor", CellKind::Nor2, &["a", "b"], "mid")
        .gate("u_inv", CellKind::Inverter, &["mid"], "out")
        .net_load("out", 2e-15) // explicit lumped load on the output net
        .primary_output("out")
        .build()?;
    let graph = netlist.to_gate_graph()?;
    let mid = graph.find_net("mid")?;
    let out = graph.find_net("out")?;

    // Both primary inputs fall together at 1 ns: a MIS event at the NOR2.
    let mut drives = HashMap::new();
    for &pi in graph.primary_inputs() {
        drives.insert(pi, DriveWaveform::falling_ramp(tech.vdd, 1e-9, 80e-12));
    }

    println!("backend                    arrival(mid, rise) [ps]   arrival(out, fall) [ps]");
    for (label, backend) in [
        ("SisOnly", DelayBackend::SisOnly),
        ("BaselineMis", DelayBackend::BaselineMis),
        ("CompleteMcsm", DelayBackend::CompleteMcsm),
        // The paper's §3.4 operating point: with the default 8x load-ratio
        // threshold, the lightly loaded NOR2 keeps its internal-node tables
        // while a heavily loaded gate would drop to the simple MIS model.
        (
            "Selective(8x)",
            DelayBackend::Selective(SelectivePolicy::default()),
        ),
    ] {
        // `.with_threads(0)` fans each topological level across all cores;
        // results are bit-identical to the sequential run. The explicit
        // `net_load("out", …)` above replaces the old per-run
        // `primary_output_load` knob, so it is 0 here.
        let options = TimingOptions::new(
            DelayCalculator::new(backend, CsmSimOptions::new(4e-9, 1e-12), tech.vdd),
            0.0,
        )
        .with_threads(0);
        let timing = propagate(&graph, &library, &drives, &options)?;
        let t_mid = timing.arrival_time(mid, true)?.unwrap_or(f64::NAN) * 1e12;
        let t_out = timing.arrival_time(out, false)?.unwrap_or(f64::NAN) * 1e12;
        println!("{label:<26} {t_mid:>22.2}   {t_out:>22.2}");
    }
    println!("\nSIS-only timing is optimistic for the simultaneous-switching event;");
    println!("the complete MCSM accounts for the stack-node charge as well, and the");
    println!("selective backend matches it wherever the load keeps the effect visible.");
    println!(
        "\nThe same netlist serializes to {} bytes of JSON and lowers to a",
        netlist.to_json_string().len()
    );
    println!("transistor-level SPICE deck via `to_spice_circuit` for cross-checks.");
    Ok(())
}
