//! A scripted end-to-end session against the `mcsm-serve` query engine.
//!
//! The server keeps a characterized library, a netlist and the last committed
//! simulation result resident, so a what-if loop — query, edit, re-query —
//! never re-characterizes and only re-solves the cone an edit invalidated.
//! This example drives one session through the JSON-RPC protocol exactly as a
//! client would: load the ISCAS-85 c17 benchmark, put falling ramps on its
//! inputs, read arrival times at both outputs, then apply a load ECO on net
//! N22 and watch the incremental re-evaluation touch one gate while the other
//! five keep their committed waveforms.
//!
//! Run with `cargo run --release --example server_session`.
//! Set `MCSM_BENCH_FAST=1` for coarse characterization grids (CI smoke mode).
//! Set `MCSM_TRACE=1 MCSM_TRACE_OUT=PATH` to record the whole session as a
//! Chrome trace-event file (load it at <https://ui.perfetto.dev>) — the
//! committed `examples/traces/server_session.trace.json` was produced this
//! way.

use mcsm::cells::cell::CellKind;
use mcsm::cells::tech::Technology;
use mcsm::core::config::CharacterizationConfig;
use mcsm::num::json::JsonValue;
use mcsm::serve::{Engine, Session, SessionConfig};
use mcsm::sta::models::ModelLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    mcsm::obs::init_from_env();
    let tech = Technology::cmos_130nm();
    let config = if mcsm::num::par::env_flag("MCSM_BENCH_FAST") {
        CharacterizationConfig::coarse()
    } else {
        CharacterizationConfig::standard()
    };
    println!("characterizing INV, NAND2, NOR2 ...");
    let library = ModelLibrary::characterize(
        &tech,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &config,
    )?;

    let engine = Engine::new(Session::new(library, SessionConfig::default()));
    let ask = |label: &str, line: &str| -> JsonValue {
        let response = engine.handle_line(line);
        let doc = JsonValue::parse(&response).expect("response is JSON");
        match doc.get("result") {
            Some(result) => result.clone(),
            None => panic!("{label} failed: {response}"),
        }
    };

    // Load c17 and put a staggered falling ramp on every primary input.
    let loaded = ask(
        "load",
        r#"{"id": 1, "method": "load_netlist", "params": {"builtin": "c17"}}"#,
    );
    println!(
        "loaded {}: {} gates, {} nets",
        loaded.get("name").unwrap().as_str().unwrap(),
        loaded.get("gates").unwrap().as_f64().unwrap(),
        loaded.get("nets").unwrap().as_f64().unwrap(),
    );
    for (i, net) in ["N1", "N2", "N3", "N6", "N7"].iter().enumerate() {
        let line = format!(
            r#"{{"id": 1, "method": "set_drive", "params": {{"net": "{}", "drive": {{"kind": "fall", "t_start": {}, "transition": 8e-11}}}}}}"#,
            net,
            1e-9 + 20e-12 * i as f64
        );
        ask("set_drive", &line);
    }

    // The first arrival query triggers the full evaluation. Under these
    // stimuli N22 falls; N23 never crosses 50 % (it starts and ends low), so
    // its arrival is null.
    for net in ["N22", "N23"] {
        let line = format!(r#"{{"id": 1, "method": "arrival", "params": {{"net": "{net}"}}}}"#);
        let arrival = ask("arrival", &line);
        match arrival.get("time_s").unwrap().as_f64() {
            Some(time) => println!(
                "arrival {net}: {:.1} ps ({})",
                time * 1e12,
                if arrival.get("rising").unwrap().as_bool().unwrap() {
                    "rising"
                } else {
                    "falling"
                },
            ),
            None => println!("arrival {net}: no 50 % crossing in the window"),
        }
    }

    // ECO: triple the external load on output net N22. Only its driver g22
    // is invalidated; the next evaluation reuses the other five gates.
    let eco = ask(
        "eco",
        r#"{"id": 1, "method": "eco", "params": {"op": "set_net_load", "net": "N22", "farads": 6e-15}}"#,
    );
    println!(
        "eco set_net_load N22: {} gate(s) invalidated",
        eco.get("invalidated_gates").unwrap().as_f64().unwrap(),
    );
    let resim = ask("resim", r#"{"id": 1, "method": "resim", "params": {}}"#);
    let stats = resim.get("stats").unwrap();
    println!(
        "resim mode {}: {} gate(s) re-solved, {} reused from the committed result",
        resim.get("mode").unwrap().as_str().unwrap(),
        stats.get("gates_simulated").unwrap().as_f64().unwrap()
            + stats.get("gates_skipped").unwrap().as_f64().unwrap(),
        stats.get("gates_reused").unwrap().as_f64().unwrap(),
    );
    let arrival = ask(
        "arrival",
        r#"{"id": 1, "method": "arrival", "params": {"net": "N22"}}"#,
    );
    println!(
        "arrival N22 after ECO: {:.1} ps",
        arrival.get("time_s").unwrap().as_f64().unwrap() * 1e12,
    );

    // Session-cumulative counters: runs, cache sizes, hit rates.
    let report = ask("stats", r#"{"id": 1, "method": "stats", "params": {}}"#);
    let waveforms = report.get("waveform_cache").unwrap();
    println!(
        "session: {} runs, waveform memo {} entries ({} hits / {} misses)",
        report.get("runs").unwrap().as_f64().unwrap(),
        waveforms.get("len").unwrap().as_f64().unwrap(),
        waveforms.get("hits").unwrap().as_f64().unwrap(),
        waveforms.get("misses").unwrap().as_f64().unwrap(),
    );

    // When tracing was armed, dump every span of the session as a Chrome
    // trace-event file for Perfetto.
    match mcsm::obs::dump_trace_if_configured() {
        Some(Ok((path, summary))) => {
            println!("wrote {} spans to {path}", summary.spans);
        }
        Some(Err(e)) => eprintln!("trace dump failed: {e}"),
        None => {}
    }
    Ok(())
}
