//! Clocked sequential simulation and signoff timing of a register pipeline.
//!
//! `mcsm-seq` partitions a register-bearing `Netlist` at its DFF boundaries,
//! then runs one event-driven comb-cone transient per clock cycle: every
//! register launches a characterized clk-to-q ramp at its clock edge, the
//! cone settles through the current-source models, and each D pin is sampled
//! at the next capture edge to become the carried state of the following
//! epoch. The same launch timeline feeds the sequential STA, which checks
//! every D-pin arrival band against the register's characterized setup/hold
//! window.
//!
//! This example builds a seeded 3-stage x 4-bit pipeline, clocks it for
//! eight cycles under toggling inputs, prints the carried register state per
//! cycle, and then runs signoff timing twice: once at a comfortable 2 ns
//! period (all slacks positive) and once deliberately under-constrained,
//! where the worst register endpoint goes negative.
//!
//! Run with `cargo run --release --example seq_pipeline`.
//! Set `MCSM_BENCH_FAST=1` for coarse characterization grids (CI smoke mode).

use mcsm::cells::cell::CellKind;
use mcsm::cells::tech::Technology;
use mcsm::core::characterize::RegisterCharacterizationConfig;
use mcsm::core::config::CharacterizationConfig;
use mcsm::core::sim::CsmSimOptions;
use mcsm::net::pipelined_dag;
use mcsm::netsim::NetsimOptions;
use mcsm::seq::{analyze_sequential, simulate_sequential, CycleInputs, SeqOptions};
use mcsm::sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm::sta::models::ModelLibrary;
use mcsm::sta::slack::{ClockSpec, SlackReport};
use mcsm::sta::TimingOptions;
use mcsm_seq::SeqTimingOptions;

fn print_report(label: &str, report: &SlackReport) {
    let violations = report.violations().count();
    println!(
        "{label}: {} endpoints, {violations} violating",
        report.endpoints.len()
    );
    println!("  endpoint      | arrival ps | setup ps | setup slack ps | hold slack ps");
    for endpoint in report.endpoints.iter().take(5) {
        let ps = |v: Option<f64>| match v {
            Some(v) => format!("{:8.1}", v * 1e12),
            None => "       -".to_string(),
        };
        println!(
            "  {:13} | {} | {:8.1} | {} | {}",
            endpoint.endpoint,
            ps(endpoint.arrival),
            endpoint.setup * 1e12,
            ps(endpoint.setup_slack),
            ps(endpoint.hold_slack),
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_130nm();
    let fast = mcsm::num::par::env_flag("MCSM_BENCH_FAST");
    let (comb_config, reg_config, dt) = if fast {
        (
            CharacterizationConfig::coarse(),
            RegisterCharacterizationConfig::coarse(),
            4e-12,
        )
    } else {
        (
            CharacterizationConfig::standard(),
            RegisterCharacterizationConfig::standard(),
            2e-12,
        )
    };

    println!("characterizing INV/NAND2/NOR2 + DFF ...");
    let mut library = ModelLibrary::characterize(
        &tech,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &comb_config,
    )?;
    library.characterize_registers(&tech, &[CellKind::Dff], &reg_config)?;

    let netlist = pipelined_dag(3, 4, 7);
    println!(
        "{}: {} gates ({} registers), {} nets",
        netlist.name(),
        netlist.gate_count(),
        netlist
            .iter_gates()
            .filter(|g| g.kind.is_sequential())
            .count(),
        netlist.net_count()
    );

    // Eight cycles: every data input toggles each cycle, so all three stages
    // see fresh waves marching through.
    let clock = ClockSpec::new("clk", 2e-9);
    let calculator = DelayCalculator::new(
        DelayBackend::CompleteMcsm,
        CsmSimOptions::new(4e-9, dt),
        tech.vdd,
    );
    let options = SeqOptions::new(NetsimOptions::new(calculator.clone(), 2e-15));
    let data_inputs: Vec<_> = netlist
        .primary_inputs()
        .iter()
        .copied()
        .filter(|&pi| netlist.net_name(pi) != clock.clock)
        .collect();
    let cycles: Vec<CycleInputs> = (0..8)
        .map(|cycle| {
            CycleInputs::from_pairs(
                data_inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &pi)| (pi, (cycle + i) % 2 == 0)),
            )
        })
        .collect();

    let result = simulate_sequential(&netlist, &library, &clock, &cycles, &options)?;
    println!(
        "simulated {} cycles: {} gate solves, {} event-skipped",
        result.stats.cycles, result.stats.gates_simulated, result.stats.gates_skipped
    );
    for (cycle, states) in result.states.iter().enumerate() {
        let bits: String = states
            .iter()
            .map(|s| if s.value { '1' } else { '0' })
            .collect();
        let outs: String = result.po_values[cycle]
            .iter()
            .map(|&v| if v { '1' } else { '0' })
            .collect();
        println!("  cycle {cycle}: registers {bits}  outputs {outs}");
    }

    // Signoff timing over the same launch timeline: comfortable, then
    // deliberately under-constrained so the worst endpoint goes negative.
    let timing = SeqTimingOptions::new(TimingOptions::new(calculator, 2e-15));
    print_report(
        "slack @ 2 ns",
        &analyze_sequential(&netlist, &library, &clock, &timing)?,
    );
    let tight = ClockSpec::new("clk", 150e-12);
    let report = analyze_sequential(&netlist, &library, &tight, &timing)?;
    print_report("slack @ 150 ps", &report);
    if let Some(worst) = report.worst() {
        println!(
            "under-constrained worst endpoint: {} ({:.1} ps setup slack)",
            worst.endpoint,
            worst.setup_slack.unwrap_or(f64::NAN) * 1e12
        );
    }
    Ok(())
}
