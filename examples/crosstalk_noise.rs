//! Crosstalk-noise analysis (the paper's Fig. 12 setup): a victim line coupled
//! to an aggressor through 50 fF drives a NOR2; the MCSM is fed the noisy victim
//! waveform and compared against the transistor-level reference.
//!
//! Run with `cargo run --release --example crosstalk_noise`.

use mcsm::cells::cell::{CellKind, CellTemplate};
use mcsm::cells::tech::Technology;
use mcsm::core::characterize::characterize_mcsm;
use mcsm::core::config::CharacterizationConfig;
use mcsm::core::sim::CsmSimOptions;
use mcsm::sta::noise::CrosstalkScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_130nm();
    let nor2 = CellTemplate::new(CellKind::Nor2, tech.clone());
    println!("characterizing NOR2 ...");
    let model = characterize_mcsm(&nor2, &CharacterizationConfig::standard())?;

    println!("injection time [ns]   delay error [ps]   waveform RMSE [% of Vdd]");
    for k in 0..6 {
        let injection = 2.0e-9 + k as f64 * 0.1e-9;
        let scenario = CrosstalkScenario::paper_setup(tech.clone(), injection);
        let point =
            scenario.evaluate(&model, 2e-12, &CsmSimOptions::new(scenario.t_stop, 0.5e-12))?;
        println!(
            "{:>18.2}   {:>16.2}   {:>24.2}",
            point.injection_time * 1e9,
            point.delay_error * 1e12,
            point.normalized_rmse * 100.0
        );
    }
    Ok(())
}
