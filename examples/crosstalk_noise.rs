//! Crosstalk-noise analysis (the paper's Fig. 12 setup): a victim line coupled
//! to an aggressor through 50 fF drives a NOR2; the MCSM is fed the noisy victim
//! waveform and compared against the transistor-level reference.
//!
//! The NOR2 receiver is described through the unified `Netlist` IR and the
//! MCSM prediction runs through `Netlist::simulate_gate` — the hook that
//! replays one netlist gate through the generic `CellModel` engine. The
//! transistor-level reference still comes from the coupled-interconnect
//! scenario (wire coupling is below the gate-level IR's abstraction).
//!
//! Run with `cargo run --release --example crosstalk_noise`.
//! Set `MCSM_BENCH_FAST=1` for coarse characterization grids (CI smoke mode).

use mcsm::cells::cell::{CellKind, CellTemplate};
use mcsm::cells::load::FanoutLoad;
use mcsm::cells::tech::Technology;
use mcsm::core::characterize::characterize_mcsm;
use mcsm::core::config::CharacterizationConfig;
use mcsm::core::metrics::compare_waveforms;
use mcsm::core::sim::{CsmSimOptions, DriveWaveform};
use mcsm::core::store::{ModelBackend, ModelStore};
use mcsm::net::NetlistBuilder;
use mcsm::sta::noise::CrosstalkScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_130nm();
    let nor2 = CellTemplate::new(CellKind::Nor2, tech.clone());
    let config = if mcsm::num::par::env_flag("MCSM_BENCH_FAST") {
        CharacterizationConfig::coarse()
    } else {
        CharacterizationConfig::standard()
    };
    println!("characterizing NOR2 ...");
    let mut store = ModelStore::new();
    store.mcsm = Some(characterize_mcsm(&nor2, &config)?);

    // The receiver as a one-gate netlist: victim on pin A, the B pin held at
    // its non-controlling value, an FO2 lumped load on the output.
    let load = FanoutLoad::new(tech.clone(), 2).equivalent_capacitance();
    let netlist = NetlistBuilder::new("fig12_receiver")
        .primary_input("victim_net")
        .primary_input("nor_b")
        .gate("dut", CellKind::Nor2, &["victim_net", "nor_b"], "nor_out")
        .net_load("nor_out", load)
        .primary_output("nor_out")
        .build()?;
    let dut = netlist.find_gate("dut")?;

    println!("injection time [ns]   delay error [ps]   waveform RMSE [% of Vdd]");
    for k in 0..6 {
        let injection = 2.0e-9 + k as f64 * 0.1e-9;
        let scenario = CrosstalkScenario::paper_setup(tech.clone(), injection);
        let options = CsmSimOptions::new(scenario.t_stop, 0.5e-12);

        // Transistor-level reference: coupled victim/aggressor lines.
        let reference = scenario.run_reference(2e-12)?;

        // MCSM prediction: the *same netlist gate*, driven by the noisy victim
        // waveform, replayed through the generic engine.
        let predicted = netlist.simulate_gate(
            dut,
            &store,
            ModelBackend::CompleteMcsm,
            &[
                DriveWaveform::Sampled(reference.victim_input.clone()),
                DriveWaveform::dc(0.0),
            ],
            load,
            &options,
        )?;

        let comparison = compare_waveforms(&reference.output, &predicted.output, tech.vdd, true)?;
        println!(
            "{:>18.2}   {:>16.2}   {:>24.2}",
            injection * 1e9,
            comparison.delay_difference.unwrap_or(f64::NAN) * 1e12,
            comparison.normalized_rmse * 100.0
        );
    }
    Ok(())
}
