//! Quickstart: characterize a NOR2 cell, simulate a multiple-input-switching
//! event with the MCSM, and compare it against the transistor-level reference.
//!
//! Run with `cargo run --release --example quickstart`.
//! Set `MCSM_BENCH_FAST=1` for coarse characterization grids (CI smoke mode).

use mcsm::cells::cell::{CellKind, CellTemplate};
use mcsm::cells::load::FanoutLoad;
use mcsm::cells::stimuli::InputHistory;
use mcsm::cells::tech::Technology;
use mcsm::cells::testbench::{CellTestbench, LoadSpec};
use mcsm::core::characterize::characterize_mcsm;
use mcsm::core::config::CharacterizationConfig;
use mcsm::core::metrics::compare_waveforms;
use mcsm::core::sim::{CsmSimOptions, DriveWaveform, Simulation};
use mcsm::spice::analysis::TranOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The technology and the cell under study.
    let tech = Technology::cmos_130nm();
    let nor2 = CellTemplate::new(CellKind::Nor2, tech.clone());
    println!("technology: {} (Vdd = {} V)", tech.name, tech.vdd);

    // 2. Characterize the complete MCSM (4-D current and capacitance tables).
    let config = if mcsm::num::par::env_flag("MCSM_BENCH_FAST") {
        CharacterizationConfig::coarse()
    } else {
        CharacterizationConfig::standard()
    };
    println!("characterizing NOR2 ...");
    let model = characterize_mcsm(&nor2, &config)?;
    println!(
        "  -> tables over {} grid points per current axis",
        model.io.lut().axes()[0].len()
    );

    // 3. A simultaneous '11' -> '00' transition into an FO2 load.
    let t_switch = 1.0e-9;
    let transition = 60e-12;
    let waves = [
        DriveWaveform::falling_ramp(tech.vdd, t_switch, transition),
        DriveWaveform::falling_ramp(tech.vdd, t_switch, transition),
    ];
    let load = FanoutLoad::new(tech.clone(), 2).equivalent_capacitance();
    let mcsm_result = Simulation::of(&model)
        .inputs(&waves)
        .load(load)
        .initial_output(0.0)
        .options(CsmSimOptions::new(2.5e-9, 0.5e-12))
        .run()?;

    // 4. The transistor-level reference of the same event.
    let mut bench = CellTestbench::new(&nor2, &LoadSpec::Fanout(2))?;
    let history = InputHistory::simultaneous(
        tech.vdd,
        transition,
        vec![true, true],
        vec![false, false],
        t_switch,
    );
    bench.apply_history(&history)?;
    let reference = bench.run_transient(&TranOptions::new(2.5e-9, 2e-12))?;
    let spice_out = reference.node("out")?;

    // 5. Compare.
    let cmp = compare_waveforms(spice_out, &mcsm_result.output, tech.vdd, true)?;
    println!("MCSM vs. SPICE for the MIS event:");
    println!(
        "  waveform RMSE     = {:.2} % of Vdd",
        100.0 * cmp.normalized_rmse
    );
    println!("  max voltage error = {:.3} V", cmp.max_abs_error);
    if let Some(dd) = cmp.delay_difference {
        println!("  50% delay error   = {:.1} ps", dd * 1e12);
    }
    Ok(())
}
