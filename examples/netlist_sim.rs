//! End-to-end netlist transient simulation of the ISCAS-85 c17 benchmark.
//!
//! The event-driven `mcsm-netsim` simulator chains per-gate current-source-
//! model solves along the unified `Netlist` IR: every driver's computed
//! output waveform becomes its fanouts' input (as a shared PWL drive), so
//! multiple-input-switching alignment survives all the way through the
//! circuit. This example simulates c17 under staggered falling input ramps,
//! then runs the same circuit and stimuli through the STA layer's
//! propagate-everything flow and prints the two 50 % arrival times side by
//! side — they agree to picoseconds, while the netlist simulator also reports
//! which gates it never had to solve.
//!
//! Run with `cargo run --release --example netlist_sim`.
//! Set `MCSM_BENCH_FAST=1` for coarse characterization grids (CI smoke mode).

use std::collections::HashMap;

use mcsm::cells::cell::CellKind;
use mcsm::cells::tech::Technology;
use mcsm::core::config::CharacterizationConfig;
use mcsm::core::sim::{CsmSimOptions, DriveWaveform};
use mcsm::net::c17;
use mcsm::netsim::{simulate_netlist, NetsimOptions};
use mcsm::sta::arrival::{propagate, TimingOptions};
use mcsm::sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm::sta::models::ModelLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::cmos_130nm();
    let config = if mcsm::num::par::env_flag("MCSM_BENCH_FAST") {
        CharacterizationConfig::coarse()
    } else {
        CharacterizationConfig::standard()
    };
    println!("characterizing NAND2 ...");
    let library = ModelLibrary::characterize(&tech, &[CellKind::Nand2], &config)?;

    let netlist = c17();
    println!(
        "c17: {} gates, {} nets, {} primary inputs",
        netlist.gate_count(),
        netlist.net_count(),
        netlist.primary_inputs().len()
    );

    // Staggered falling ramps on every input: N10/N11 see genuine
    // multiple-input-switching events.
    let mut drives = HashMap::new();
    for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
        drives.insert(
            pi,
            DriveWaveform::falling_ramp(tech.vdd, 1e-9 + 20e-12 * i as f64, 80e-12),
        );
    }

    let calculator = DelayCalculator::new(
        DelayBackend::CompleteMcsm,
        CsmSimOptions::new(3.5e-9, 2e-12),
        tech.vdd,
    );

    // Event-driven netlist simulation (`.with_threads(0)` = all cores;
    // results are bit-identical to the sequential run).
    let options = NetsimOptions::new(calculator.clone(), 2e-15).with_threads(0);
    let result = simulate_netlist(&netlist, &library, &drives, &options)?;
    let stats = result.stats();

    // The same circuit and stimuli through the STA layer, for comparison.
    let graph = netlist.to_gate_graph()?;
    let sta_drives: HashMap<_, _> = drives
        .iter()
        .map(|(&net, drive)| {
            let id = graph.find_net(netlist.net_name(net)).expect("same nets");
            (id, drive.clone())
        })
        .collect();
    let timing = propagate(
        &graph,
        &library,
        &sta_drives,
        &TimingOptions::new(calculator, 2e-15).with_threads(0),
    )?;

    println!("\nnet   | netsim arrival [ps] | STA arrival [ps] | edge");
    println!("------|---------------------|------------------|-----");
    for net in netlist.net_refs() {
        if netlist.driver_of(net).is_none() {
            continue;
        }
        let name = netlist.net_name(net);
        let netsim_arrival = result.arrival_any(net);
        let sta_arrival = timing.arrival_any(graph.find_net(name)?)?;
        match (netsim_arrival, sta_arrival) {
            (Some((t_net, rising)), Some((t_sta, _))) => println!(
                "{name:<5} | {:>19.1} | {:>16.1} | {}",
                t_net * 1e12,
                t_sta * 1e12,
                if rising { "rise" } else { "fall" }
            ),
            _ => println!("{name:<5} | {:>19} | {:>16} | -", "-", "-"),
        }
    }
    println!(
        "\nnetsim solved {} gates, skipped {} (quiescent), {} eventful nets",
        stats.gates_simulated, stats.gates_skipped, stats.events
    );
    println!("the same Netlist value lowers to SPICE via `to_spice_circuit` —");
    println!("tests/netsim.rs pins the c17 waveforms against that golden reference.");
    Ok(())
}
