//! Workspace umbrella crate: re-exports for examples and integration tests.
pub use mcsm_cells as cells;
pub use mcsm_core as core;
pub use mcsm_net as net;
pub use mcsm_netsim as netsim;
pub use mcsm_num as num;
pub use mcsm_obs as obs;
pub use mcsm_seq as seq;
pub use mcsm_serve as serve;
pub use mcsm_spice as spice;
pub use mcsm_sta as sta;
