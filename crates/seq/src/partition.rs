//! Register-boundary partitioning of a sequential netlist.
//!
//! A clocked netlist is, between any two consecutive clock edges, a purely
//! combinational circuit: register Q pins and primary inputs are *cone
//! sources*, register D/CLK pins and primary outputs are *cone sinks*.
//! [`SeqNetlist::partition`] extracts that combinational interior into its own
//! validated [`Netlist`] (the *comb cone*) and records, for every cone source
//! and sink, where its value comes from — a primary input, a register's Q, or
//! a comb-cone gate. The epoch driver then runs one `mcsm-netsim` pass over
//! the comb cone per clock cycle, and the timing layer propagates waveforms
//! over the same cone.
//!
//! Structural validation (every cycle passes through a register, single
//! drivers, no dangling nets) is inherited from the original [`Netlist`]'s
//! own `build()` checks — its combinational-loop check is relaxed exactly
//! across register arcs. This module adds the *clocking* validation: every
//! register must be clocked directly by one shared primary-input net (gated
//! or derived clocks are rejected descriptively), async resets must be
//! primary inputs, and level-sensitive latches are rejected until
//! transparency is modeled.

use crate::error::SeqError;
use mcsm_cells::cell::{CellKind, PinRole};
use mcsm_net::{GateRef, NetRef, Netlist, NetlistBuilder};

/// One register instance of the original netlist, with its pins resolved by
/// role.
#[derive(Debug, Clone, PartialEq)]
pub struct Register {
    /// The gate in the original netlist.
    pub gate: GateRef,
    /// Instance name.
    pub name: String,
    /// Cell kind ([`CellKind::Dff`] or [`CellKind::DffRb`]).
    pub kind: CellKind,
    /// Net feeding the D pin (original netlist reference).
    pub d_net: NetRef,
    /// Net feeding the CLK pin — always the shared clock primary input.
    pub clk_net: NetRef,
    /// Net feeding the active-low async reset, when the cell has one.
    pub rb_net: Option<NetRef>,
    /// The Q output net (original netlist reference).
    pub q_net: NetRef,
}

/// Where a cone source or sink gets its value within one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSource {
    /// Driven by a primary input of the original netlist.
    PrimaryInput(NetRef),
    /// Driven by the Q output of the register at this index in
    /// [`SeqNetlist::registers`].
    RegisterQ(usize),
    /// Driven by a gate of the comb cone; the [`NetRef`] is the net in the
    /// *original* netlist (same name in the comb cone, where it is a primary
    /// output whenever a register or original PO reads it).
    CombGate(NetRef),
}

/// A netlist partitioned at its register boundaries.
#[derive(Debug, Clone)]
pub struct SeqNetlist {
    original: Netlist,
    comb: Option<Netlist>,
    registers: Vec<Register>,
    clock_net: NetRef,
    /// Sources of the comb cone's primary inputs, `(comb net, source)`.
    comb_inputs: Vec<(NetRef, NetSource)>,
    /// Source of each register's D net, indexed like `registers`.
    d_sources: Vec<NetSource>,
    /// Source of each original primary output, in declaration order.
    po_sources: Vec<NetSource>,
}

impl SeqNetlist {
    /// Partitions a validated netlist at its register boundaries.
    ///
    /// # Errors
    ///
    /// * [`SeqError::ClockMismatch`] — the netlist has no registers;
    /// * [`SeqError::Unsupported`] — latches, multiple clock nets, or an
    ///   async reset that is not a primary input;
    /// * [`SeqError::GatedClock`] — a register clocked by a non-PI net;
    /// * [`SeqError::Net`] — comb-cone construction failures (impossible for
    ///   a validated input, but propagated rather than unwrapped).
    pub fn partition(netlist: &Netlist) -> Result<Self, SeqError> {
        let mut registers = Vec::new();
        for gate in netlist.gate_refs() {
            let kind = netlist.gate_kind(gate);
            if !kind.is_sequential() {
                continue;
            }
            if kind == CellKind::LatchD {
                return Err(SeqError::Unsupported(format!(
                    "gate `{}` is a level-sensitive latch; latch transparency is \
                     not yet supported — use edge-triggered DFF/DFFRB",
                    netlist.gate_name(gate)
                )));
            }
            let inputs = netlist.inputs_of(gate);
            let roles = kind.pin_roles();
            let pin_by_role = |role: PinRole| -> Option<NetRef> {
                roles.iter().position(|&r| r == role).map(|pin| inputs[pin])
            };
            registers.push(Register {
                gate,
                name: netlist.gate_name(gate).to_string(),
                kind,
                d_net: pin_by_role(PinRole::Data).expect("registers have a data pin"),
                clk_net: pin_by_role(PinRole::Clock).expect("flops have a clock pin"),
                rb_net: pin_by_role(PinRole::ResetN),
                q_net: netlist.output_of(gate),
            });
        }
        if registers.is_empty() {
            return Err(SeqError::ClockMismatch(format!(
                "netlist `{}` has no registers; use the combinational flow directly",
                netlist.name()
            )));
        }

        // Clocking validation: one shared clock net, fed by a primary input.
        let clock_net = registers[0].clk_net;
        for reg in &registers {
            if !netlist.is_primary_input(reg.clk_net) {
                return Err(SeqError::GatedClock {
                    gate: reg.name.clone(),
                    net: netlist.net_name(reg.clk_net).to_string(),
                });
            }
            if reg.clk_net != clock_net {
                return Err(SeqError::Unsupported(format!(
                    "register `{}` is clocked by `{}` but `{}` is clocked by \
                     `{}` — multiple clock domains are not supported",
                    registers[0].name,
                    netlist.net_name(clock_net),
                    reg.name,
                    netlist.net_name(reg.clk_net)
                )));
            }
            if let Some(rb) = reg.rb_net {
                if !netlist.is_primary_input(rb) {
                    return Err(SeqError::Unsupported(format!(
                        "register `{}` has async reset `{}`, which is not a \
                         primary input — derived resets are not modeled",
                        reg.name,
                        netlist.net_name(rb)
                    )));
                }
            }
        }

        // Classify a net by its driver. `CombGate` keeps the original net ref;
        // the comb cone reuses the net's name.
        let reg_of_gate = |gate: GateRef| -> usize {
            registers
                .iter()
                .position(|r| r.gate == gate)
                .expect("every sequential gate was collected")
        };
        let classify = |net: NetRef| -> NetSource {
            match netlist.driver_of(net) {
                None => NetSource::PrimaryInput(net),
                Some(driver) if netlist.gate_kind(driver).is_sequential() => {
                    NetSource::RegisterQ(reg_of_gate(driver))
                }
                Some(_) => NetSource::CombGate(net),
            }
        };

        // The comb cone: every non-sequential gate, with cone sources (nets
        // read by comb gates but not driven by one) as primary inputs and
        // cone sinks (comb-driven nets read by a register D pin or marked as
        // original POs) as primary outputs.
        let comb_gates: Vec<GateRef> = netlist
            .gate_refs()
            .filter(|&g| !netlist.gate_kind(g).is_sequential())
            .collect();

        let nets = netlist.net_count();
        let mut comb_reads = vec![false; nets];
        let mut comb_drives = vec![false; nets];
        for &gate in &comb_gates {
            for &input in netlist.inputs_of(gate) {
                comb_reads[input.index()] = true;
            }
            comb_drives[netlist.output_of(gate).index()] = true;
        }
        let mut comb_po = vec![false; nets];
        for reg in &registers {
            if comb_drives[reg.d_net.index()] {
                comb_po[reg.d_net.index()] = true;
            }
        }
        for &po in netlist.primary_outputs() {
            if comb_drives[po.index()] {
                comb_po[po.index()] = true;
            }
        }

        let (comb, comb_inputs) = if comb_gates.is_empty() {
            (None, Vec::new())
        } else {
            let mut builder = NetlistBuilder::new(&format!("{}__comb", netlist.name()));
            let mut sources = Vec::new();
            for net in netlist.net_refs() {
                if comb_reads[net.index()] && !comb_drives[net.index()] {
                    builder = builder.primary_input(netlist.net_name(net));
                    sources.push((net, classify(net)));
                }
            }
            for &gate in &comb_gates {
                let input_names: Vec<&str> = netlist
                    .inputs_of(gate)
                    .iter()
                    .map(|&n| netlist.net_name(n))
                    .collect();
                builder = builder.gate(
                    netlist.gate_name(gate),
                    netlist.gate_kind(gate),
                    &input_names,
                    netlist.net_name(netlist.output_of(gate)),
                );
            }
            for net in netlist.net_refs() {
                if comb_po[net.index()] {
                    builder = builder.primary_output(netlist.net_name(net));
                }
                let load = netlist.net_load(net);
                if load > 0.0 && (comb_reads[net.index()] || comb_drives[net.index()]) {
                    builder = builder.net_load(netlist.net_name(net), load);
                }
            }
            let comb = builder.build()?;
            // Re-key the sources by the comb cone's own net references.
            let comb_inputs = sources
                .into_iter()
                .map(|(orig, source)| {
                    let comb_net = comb
                        .find_net(netlist.net_name(orig))
                        .expect("cone inputs were just declared");
                    (comb_net, source)
                })
                .collect();
            (Some(comb), comb_inputs)
        };

        let d_sources = registers.iter().map(|r| classify(r.d_net)).collect();
        let po_sources = netlist
            .primary_outputs()
            .iter()
            .map(|&po| classify(po))
            .collect();

        Ok(SeqNetlist {
            original: netlist.clone(),
            comb,
            registers,
            clock_net,
            comb_inputs,
            d_sources,
            po_sources,
        })
    }

    /// The original (register-bearing) netlist.
    pub fn original(&self) -> &Netlist {
        &self.original
    }

    /// The combinational cone between register boundaries, or `None` when the
    /// netlist is registers-only.
    pub fn comb(&self) -> Option<&Netlist> {
        self.comb.as_ref()
    }

    /// The registers, in original gate-insertion order.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// The shared clock net (a primary input of the original netlist).
    pub fn clock_net(&self) -> NetRef {
        self.clock_net
    }

    /// Sources of the comb cone's primary inputs, `(comb net, source)`.
    pub fn comb_inputs(&self) -> &[(NetRef, NetSource)] {
        &self.comb_inputs
    }

    /// Source of each register's D net, indexed like [`SeqNetlist::registers`].
    pub fn d_sources(&self) -> &[NetSource] {
        &self.d_sources
    }

    /// Source of each original primary output, in declaration order.
    pub fn po_sources(&self) -> &[NetSource] {
        &self.po_sources
    }

    /// Index of a register by instance name.
    ///
    /// # Errors
    ///
    /// Returns [`SeqError::InvalidParameter`] naming the instance if no
    /// register has that name.
    pub fn register_index(&self, name: &str) -> Result<usize, SeqError> {
        self.registers
            .iter()
            .position(|r| r.name == name)
            .ok_or_else(|| SeqError::InvalidParameter(format!("no register named `{name}`")))
    }

    /// The comb-cone net corresponding to an original net, when the net
    /// exists in the cone (same name on both sides).
    pub fn comb_net_of(&self, orig: NetRef) -> Option<NetRef> {
        self.comb
            .as_ref()
            .and_then(|c| c.find_net(self.original.net_name(orig)).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsm_net::{pipelined_dag, s27};

    #[test]
    fn s27_partitions_into_a_14_gate_cone_with_3_registers() {
        let seq = SeqNetlist::partition(&s27()).unwrap();
        assert_eq!(seq.registers().len(), 3);
        let names: Vec<&str> = seq.registers().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["R5", "R6", "R7"]);
        let comb = seq.comb().unwrap();
        assert_eq!(comb.gate_count(), 13);
        // Cone sources: the four data PIs plus the three Q nets (the clock
        // feeds only register CLK pins and stays out of the cone).
        assert_eq!(comb.primary_inputs().len(), 7);
        assert!(comb.find_net("CK").is_err());
        let q_sources = seq
            .comb_inputs()
            .iter()
            .filter(|(_, s)| matches!(s, NetSource::RegisterQ(_)))
            .count();
        assert_eq!(q_sources, 3);
        // Cone sinks: the original PO G17 plus the three D nets.
        assert_eq!(comb.primary_outputs().len(), 4);
        for (reg, source) in seq.registers().iter().zip(seq.d_sources()) {
            assert!(matches!(source, NetSource::CombGate(_)), "{}", reg.name);
            assert!(comb.is_primary_output(seq.comb_net_of(reg.d_net).unwrap()));
        }
        assert_eq!(seq.original().net_name(seq.clock_net()), "CK");
        assert_eq!(seq.register_index("R6").unwrap(), 1);
        assert!(seq.register_index("R9").is_err());
    }

    #[test]
    fn pipelines_partition_and_degenerate_netlists_are_rejected() {
        let seq = SeqNetlist::partition(&pipelined_dag(3, 4, 7)).unwrap();
        assert_eq!(seq.registers().len(), 12);
        assert_eq!(seq.comb().unwrap().gate_count(), 12);

        // No registers → pointed at the combinational flow.
        let err = SeqNetlist::partition(&mcsm_net::c17()).unwrap_err();
        assert!(matches!(err, SeqError::ClockMismatch(_)));

        // A gated clock (comb-driven CLK net) names the offender.
        let gated = mcsm_net::NetlistBuilder::new("gated")
            .primary_input("ck")
            .primary_input("en")
            .primary_input("d")
            .gate(
                "u_gate",
                mcsm_cells::cell::CellKind::Nand2,
                &["ck", "en"],
                "gck",
            )
            .gate("r0", CellKind::Dff, &["d", "gck"], "q")
            .primary_output("q")
            .build()
            .unwrap();
        let err = SeqNetlist::partition(&gated).unwrap_err();
        assert!(matches!(err, SeqError::GatedClock { .. }));
        assert!(err.to_string().contains("gck"));

        // Latches are rejected descriptively.
        let latched = mcsm_net::NetlistBuilder::new("latched")
            .primary_input("ck")
            .primary_input("d")
            .gate("l0", CellKind::LatchD, &["d", "ck"], "q")
            .primary_output("q")
            .build()
            .unwrap();
        let err = SeqNetlist::partition(&latched).unwrap_err();
        assert!(err.to_string().contains("latch"));
    }

    #[test]
    fn registers_only_netlists_have_no_cone_and_direct_sources() {
        // A two-stage shift register with no combinational gates at all.
        let shift = mcsm_net::NetlistBuilder::new("shift2")
            .primary_input("ck")
            .primary_input("d")
            .gate("r0", CellKind::Dff, &["d", "ck"], "q0")
            .gate("r1", CellKind::Dff, &["q0", "ck"], "q1")
            .primary_output("q1")
            .build()
            .unwrap();
        let seq = SeqNetlist::partition(&shift).unwrap();
        assert!(seq.comb().is_none());
        assert!(seq.comb_inputs().is_empty());
        assert_eq!(
            seq.d_sources(),
            [
                NetSource::PrimaryInput(shift.find_net("d").unwrap()),
                NetSource::RegisterQ(0)
            ]
        );
        assert_eq!(seq.po_sources(), [NetSource::RegisterQ(1)]);
    }
}
