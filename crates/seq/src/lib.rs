//! Clocked sequential simulation and setup/hold signoff timing.
//!
//! The combinational stack (`mcsm-netsim`, `mcsm-sta`) answers questions
//! about one data wave through a register-free circuit. Real designs clock
//! that wave through register stages, and the questions change: what state
//! does the machine reach after N cycles, and does every register's D pin
//! make its setup/hold window at the chosen clock period? This crate answers
//! both on top of the same current-source models:
//!
//! * [`partition::SeqNetlist`] — partitions a register-bearing
//!   [`mcsm_net::Netlist`] at its register boundaries into a validated
//!   combinational cone plus a register list, rejecting gated/derived clocks
//!   and latches descriptively;
//! * [`epoch`] — the clocked epoch scheduler: one comb-cone transient
//!   simulation per clock cycle ([`simulate_sequential`] /
//!   [`step_cycle`]), with sampled register state carried between epochs,
//!   clk-to-q launch ramps from characterized register models, and
//!   ECO-driven incremental re-simulation of a single epoch
//!   ([`resimulate_cycle`]);
//! * [`sta`] — sequential signoff timing ([`analyze_sequential`]): waveform
//!   propagation over the same cones on the same launch timeline, checked
//!   against each register's characterized setup/hold windows into a
//!   worst-first [`mcsm_sta::slack::SlackReport`].
//!
//! Register models (clk-to-q tables, setup/hold windows, D-pin capacitance)
//! come from `mcsm_core::characterize::registers` via
//! `ModelLibrary::characterize_registers`.
//!
//! # Example: eight cycles of ISCAS-89 s27 plus a slack report
//!
//! ```no_run
//! use mcsm_cells::cell::CellKind;
//! use mcsm_cells::tech::Technology;
//! use mcsm_core::config::CharacterizationConfig;
//! use mcsm_core::characterize::RegisterCharacterizationConfig;
//! use mcsm_core::sim::CsmSimOptions;
//! use mcsm_net::s27;
//! use mcsm_netsim::NetsimOptions;
//! use mcsm_seq::{
//!     analyze_sequential, simulate_sequential, CycleInputs, SeqOptions, SeqTimingOptions,
//! };
//! use mcsm_sta::{ClockSpec, DelayBackend, DelayCalculator, ModelLibrary, TimingOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::cmos_130nm();
//! let netlist = s27();
//! let mut library = ModelLibrary::characterize(
//!     &tech,
//!     &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
//!     &CharacterizationConfig::standard(),
//! )?;
//! library.characterize_registers(
//!     &tech,
//!     &[CellKind::Dff],
//!     &RegisterCharacterizationConfig::standard(),
//! )?;
//!
//! let clock = ClockSpec::new("CK", 2e-9);
//! let calculator = DelayCalculator::new(
//!     DelayBackend::CompleteMcsm,
//!     CsmSimOptions::new(4e-9, 1e-12),
//!     tech.vdd,
//! );
//! let options = SeqOptions::new(NetsimOptions::new(calculator.clone(), 2e-15));
//! let g0 = netlist.find_net("G0")?;
//! let cycles: Vec<CycleInputs> = (0..8)
//!     .map(|i| CycleInputs::from_pairs([(g0, i % 2 == 0)]))
//!     .collect();
//! let result = simulate_sequential(&netlist, &library, &clock, &cycles, &options)?;
//! println!("final state: {:?}", result.states.last());
//!
//! let timing = SeqTimingOptions::new(TimingOptions::new(calculator, 2e-15));
//! let report = analyze_sequential(&netlist, &library, &clock, &timing)?;
//! println!("worst slack: {:?}", report.worst().map(|e| e.setup_slack));
//! # Ok(())
//! # }
//! ```

pub mod epoch;
pub mod error;
pub mod partition;
pub mod sta;

pub use epoch::{
    capture_time, epoch_t0, initial_seq_state, resimulate_cycle, simulate_sequential, step_cycle,
    CycleInputs, CycleOutcome, RegState, SeqOptions, SeqResult, SeqState, SeqStats,
};
pub use error::SeqError;
pub use partition::{NetSource, Register, SeqNetlist};
pub use sta::{analyze_sequential, SeqTimingOptions};
