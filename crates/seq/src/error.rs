//! Errors produced while partitioning or simulating a sequential netlist.

use mcsm_core::CsmError;
use mcsm_net::NetlistError;
use mcsm_netsim::NetsimError;
use mcsm_sta::StaError;
use std::fmt;

/// Error produced by the sequential-simulation and signoff-timing layer.
#[derive(Debug)]
pub enum SeqError {
    /// The netlist uses a sequential feature the epoch scheduler does not
    /// support yet (e.g. level-sensitive latch transparency).
    Unsupported(String),
    /// A register's CLK pin is not fed directly by the clock primary input —
    /// gated or derived clocks are not modeled.
    GatedClock {
        /// The offending register instance.
        gate: String,
        /// The net its CLK pin actually connects to.
        net: String,
    },
    /// The netlist's clock net does not match the [`ClockSpec`]'s, or the
    /// netlist has no registers at all.
    ///
    /// [`ClockSpec`]: mcsm_sta::slack::ClockSpec
    ClockMismatch(String),
    /// A simulation or analysis parameter is out of range.
    InvalidParameter(String),
    /// A netlist-level failure (construction of the combinational cone,
    /// lookup).
    Net(NetlistError),
    /// A failure inside one combinational epoch.
    Netsim(NetsimError),
    /// A timing-layer failure (model lookup, waveform propagation, window
    /// interpolation).
    Sta(StaError),
    /// A model-level failure (register characterization, table lookups).
    Model(CsmError),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::Unsupported(msg) => write!(f, "sequential netlist unsupported: {msg}"),
            SeqError::GatedClock { gate, net } => write!(
                f,
                "register `{gate}` is clocked by `{net}`, which is not the clock \
                 primary input — gated/derived clocks are not modeled"
            ),
            SeqError::ClockMismatch(msg) => write!(f, "clock mismatch: {msg}"),
            SeqError::InvalidParameter(msg) => write!(f, "seq: {msg}"),
            SeqError::Net(e) => write!(f, "seq netlist: {e}"),
            SeqError::Netsim(e) => write!(f, "seq epoch: {e}"),
            SeqError::Sta(e) => write!(f, "seq timing: {e}"),
            SeqError::Model(e) => write!(f, "seq model: {e}"),
        }
    }
}

impl std::error::Error for SeqError {}

impl From<NetlistError> for SeqError {
    fn from(e: NetlistError) -> Self {
        SeqError::Net(e)
    }
}

impl From<NetsimError> for SeqError {
    fn from(e: NetsimError) -> Self {
        SeqError::Netsim(e)
    }
}

impl From<StaError> for SeqError {
    fn from(e: StaError) -> Self {
        SeqError::Sta(e)
    }
}

impl From<CsmError> for SeqError {
    fn from(e: CsmError) -> Self {
        SeqError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offenders() {
        let e = SeqError::GatedClock {
            gate: "r0".into(),
            net: "ck_gated".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("r0") && msg.contains("ck_gated"));
        assert!(SeqError::Unsupported("latch transparency".into())
            .to_string()
            .contains("latch"));
        let e: SeqError = NetlistError::UnknownNet("x".into()).into();
        assert!(matches!(e, SeqError::Net(_)));
        let e: SeqError = StaError::MissingModel("DFF".into()).into();
        assert!(e.to_string().contains("DFF"));
    }
}
