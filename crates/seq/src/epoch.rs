//! The clocked epoch scheduler: one combinational netlist simulation per
//! clock cycle, with register state carried between epochs.
//!
//! Each clock cycle is simulated as one *epoch* of the partitioned comb cone
//! (see [`SeqNetlist`]): primary inputs that changed since the previous cycle
//! ramp at the epoch origin, registers that captured a new value last cycle
//! launch a clk-to-q-delayed ramp on their Q nets, and everything else sits at
//! a DC rail. At the end of the cycle each register samples its D net at the
//! capture instant (`period` after launch, shifted by that register's clock
//! insertion delay) and the sampled Boolean becomes the next cycle's launch
//! state. This epoch-carried state is exactly equivalent to flattening the
//! pipeline into one unrolled combinational netlist — a property the test
//! suite pins.
//!
//! This module is the **only** place in `mcsm-seq` that invokes the
//! combinational netlist simulator (`simulate_netlist*`); CI greps for this.

use crate::error::SeqError;
use crate::partition::{NetSource, SeqNetlist};
use mcsm_core::sim::DriveWaveform;
use mcsm_net::{GateRef, NetRef};
use mcsm_netsim::{
    effective_load, resimulate_netlist, simulate_netlist_cached, NetsimOptions, NetsimResult,
    SimCaches,
};
use mcsm_sta::{ClockSpec, DelayCache, ModelLibrary, WaveformCache};
use std::collections::HashMap;

/// One register's sampled state at the end of a cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegState {
    /// The captured Boolean (D net above `vdd/2` at the capture instant).
    pub value: bool,
    /// The analog D-net voltage actually sampled.
    pub voltage: f64,
}

/// Options for sequential simulation, wrapping the per-epoch netsim options.
#[derive(Debug, Clone)]
pub struct SeqOptions {
    /// Per-epoch combinational simulation options. The simulation window
    /// (`netsim.calculator.sim.t_stop`) must cover one full cycle: at least
    /// `2*clock.slew + period + max insertion + 4*clock.slew`.
    pub netsim: NetsimOptions,
    /// Transition time of primary-input ramps when an input toggles (seconds).
    pub pi_slew: f64,
    /// Initial register values (index-aligned with [`SeqNetlist::registers`]);
    /// `None` starts every register at logic 0.
    pub initial_state: Option<Vec<bool>>,
}

impl SeqOptions {
    /// Sequential options with a 50 ps input slew and all-zero reset state.
    pub fn new(netsim: NetsimOptions) -> Self {
        SeqOptions {
            netsim,
            pi_slew: 50e-12,
            initial_state: None,
        }
    }

    /// Sets the primary-input transition time.
    #[must_use]
    pub fn with_pi_slew(mut self, seconds: f64) -> Self {
        self.pi_slew = seconds;
        self
    }

    /// Sets the initial register values.
    #[must_use]
    pub fn with_initial_state(mut self, values: Vec<bool>) -> Self {
        self.initial_state = Some(values);
        self
    }
}

/// Primary-input values for one clock cycle, keyed by *original*-netlist net.
///
/// Inputs omitted from `values` hold their previous value; the clock net must
/// not appear (the scheduler owns the clock).
#[derive(Debug, Clone, Default)]
pub struct CycleInputs {
    /// New values for this cycle.
    pub values: HashMap<NetRef, bool>,
}

impl CycleInputs {
    /// No input changes this cycle.
    pub fn hold() -> Self {
        CycleInputs::default()
    }

    /// Builds cycle inputs from `(net, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NetRef, bool)>) -> Self {
        CycleInputs {
            values: pairs.into_iter().collect(),
        }
    }
}

/// The carried state of a sequential simulation between cycles.
#[derive(Debug, Clone)]
pub struct SeqState {
    /// Current value of every non-clock primary input.
    pub pi_values: HashMap<NetRef, bool>,
    /// Current (launched this cycle) register values, aligned with
    /// [`SeqNetlist::registers`].
    pub reg_values: Vec<bool>,
    /// Whether each register's value changed at the launch edge of the
    /// upcoming cycle (drives a clk-to-q ramp instead of a DC rail).
    pub reg_toggled: Vec<bool>,
    /// Number of cycles simulated so far.
    pub cycle: usize,
}

/// Everything produced by one simulated cycle.
#[derive(Debug)]
pub struct CycleOutcome {
    /// Sampled register state at the capture edge, aligned with
    /// [`SeqNetlist::registers`].
    pub states: Vec<RegState>,
    /// Primary-output Booleans sampled one period after the epoch origin, in
    /// original PO declaration order.
    pub po_values: Vec<bool>,
    /// The comb-cone epoch simulation (`None` for registers-only netlists).
    pub epoch: Option<NetsimResult>,
    /// The drives handed to the comb cone, keyed by comb-cone net — kept for
    /// incremental re-simulation after an ECO.
    pub comb_drives: HashMap<NetRef, DriveWaveform>,
    /// Drives of every original-netlist source net (non-clock PIs and
    /// register Q nets) over this epoch.
    pub orig_drives: HashMap<NetRef, DriveWaveform>,
    /// Register values at the launch edge of this cycle (before capture).
    pub values_before: Vec<bool>,
}

/// Aggregate result of [`simulate_sequential`].
#[derive(Debug)]
pub struct SeqResult {
    /// Register instance names, index-aligned with the per-cycle states.
    pub register_names: Vec<String>,
    /// Per-cycle sampled register states: `states[cycle][register]`.
    pub states: Vec<Vec<RegState>>,
    /// Primary-output net names.
    pub po_names: Vec<String>,
    /// Per-cycle primary-output Booleans: `po_values[cycle][output]`.
    pub po_values: Vec<Vec<bool>>,
    /// Per-cycle epoch simulations (waveforms, stats).
    pub epochs: Vec<Option<NetsimResult>>,
    /// Aggregate counters across all cycles.
    pub stats: SeqStats,
}

/// Aggregate epoch-simulation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeqStats {
    /// Cycles simulated.
    pub cycles: usize,
    /// Gate solves actually run across all epochs.
    pub gates_simulated: usize,
    /// Quiescent gates resolved without an engine run.
    pub gates_skipped: usize,
    /// Voltage events processed.
    pub events: usize,
    /// Gate solves across all epochs that failed and were committed from a
    /// degraded retry (see [`mcsm_netsim::Recovery`]). Zero on healthy runs.
    pub recoveries: usize,
}

/// The epoch time origin: input and launch ramps start at `2 * clock.slew`
/// so every waveform has a settled DC prefix.
pub fn epoch_t0(clock: &ClockSpec) -> f64 {
    2.0 * clock.slew
}

/// The capture instant of `register` within an epoch: one period after the
/// epoch origin, shifted by the register's clock insertion delay.
pub fn capture_time(clock: &ClockSpec, register: &str) -> f64 {
    epoch_t0(clock) + clock.period + clock.insertion_of(register)
}

/// Initial carried state: all non-clock primary inputs at 0, registers at
/// `options.initial_state` (or all 0), nothing toggled.
///
/// # Errors
///
/// Returns [`SeqError::InvalidParameter`] when `initial_state` is present but
/// its length differs from the register count.
pub fn initial_seq_state(seq: &SeqNetlist, options: &SeqOptions) -> Result<SeqState, SeqError> {
    let regs = seq.registers().len();
    let reg_values = match &options.initial_state {
        Some(values) if values.len() != regs => {
            return Err(SeqError::InvalidParameter(format!(
                "initial_state has {} values but the netlist has {regs} registers",
                values.len()
            )));
        }
        Some(values) => values.clone(),
        None => vec![false; regs],
    };
    let pi_values = seq
        .original()
        .primary_inputs()
        .iter()
        .filter(|&&pi| pi != seq.clock_net())
        .map(|&pi| (pi, false))
        .collect();
    Ok(SeqState {
        pi_values,
        reg_values,
        reg_toggled: vec![false; regs],
        cycle: 0,
    })
}

fn rail(vdd: f64, value: bool) -> f64 {
    if value {
        vdd
    } else {
        0.0
    }
}

fn ramp_to(vdd: f64, value: bool, t_start: f64, transition: f64) -> DriveWaveform {
    if value {
        DriveWaveform::rising_ramp(vdd, t_start, transition)
    } else {
        DriveWaveform::falling_ramp(vdd, t_start, transition)
    }
}

fn validate_cycle(
    seq: &SeqNetlist,
    clock: &ClockSpec,
    inputs: &CycleInputs,
    options: &SeqOptions,
) -> Result<(), SeqError> {
    clock.validate().map_err(SeqError::Sta)?;
    let original = seq.original();
    let clock_name = original.net_name(seq.clock_net());
    if clock.clock != clock_name {
        return Err(SeqError::ClockMismatch(format!(
            "clock spec is for `{}` but the netlist's clock net is `{clock_name}`",
            clock.clock
        )));
    }
    if !(options.pi_slew > 0.0) {
        return Err(SeqError::InvalidParameter(format!(
            "pi_slew must be positive, got {}",
            options.pi_slew
        )));
    }
    for &net in inputs.values.keys() {
        if net == seq.clock_net() {
            return Err(SeqError::InvalidParameter(format!(
                "cycle inputs must not drive the clock net `{clock_name}` — \
                 the epoch scheduler owns the clock"
            )));
        }
        if !original.is_primary_input(net) {
            return Err(SeqError::InvalidParameter(format!(
                "cycle input `{}` is not a primary input",
                original.net_name(net)
            )));
        }
    }
    let max_insertion = seq
        .registers()
        .iter()
        .map(|r| clock.insertion_of(&r.name))
        .fold(0.0, f64::max);
    let needed = epoch_t0(clock) + clock.period + max_insertion + 4.0 * clock.slew;
    let t_stop = options.netsim.calculator.sim.t_stop;
    if t_stop < needed {
        return Err(SeqError::InvalidParameter(format!(
            "epoch window t_stop = {t_stop:.3e} s is too short: one cycle needs \
             at least {needed:.3e} s (origin + period + max insertion + settle)"
        )));
    }
    Ok(())
}

/// Builds the drives for one epoch over the *original* netlist's source nets
/// (non-clock PIs and register Q nets), then translates them onto the comb
/// cone's primary inputs.
#[allow(clippy::type_complexity)]
fn build_drives(
    seq: &SeqNetlist,
    library: &ModelLibrary,
    clock: &ClockSpec,
    state: &SeqState,
    new_pi_values: &HashMap<NetRef, bool>,
    options: &SeqOptions,
    delay_cache: &DelayCache,
) -> Result<
    (
        HashMap<NetRef, DriveWaveform>,
        HashMap<NetRef, DriveWaveform>,
    ),
    SeqError,
> {
    let original = seq.original();
    let vdd = options.netsim.calculator.vdd;
    let t0 = epoch_t0(clock);
    let mut orig_drives = HashMap::new();

    for &pi in original.primary_inputs() {
        if pi == seq.clock_net() {
            continue;
        }
        let value = new_pi_values[&pi];
        let drive = if value != state.pi_values[&pi] {
            ramp_to(vdd, value, t0, options.pi_slew)
        } else {
            DriveWaveform::dc(rail(vdd, value))
        };
        orig_drives.insert(pi, drive);
    }

    for (idx, reg) in seq.registers().iter().enumerate() {
        let value = state.reg_values[idx];
        let drive = if state.reg_toggled[idx] {
            let model = library.register(reg.kind)?;
            let load = effective_load(
                original,
                library,
                delay_cache,
                reg.q_net,
                options.netsim.primary_output_load,
            )?;
            let (delay, slew) = model.clk_to_q(load, value)?;
            let t_q50 = t0 + clock.insertion_of(&reg.name) + delay;
            let t_start = (t_q50 - 0.5 * slew).max(0.0);
            ramp_to(vdd, value, t_start, slew)
        } else {
            DriveWaveform::dc(rail(vdd, value))
        };
        orig_drives.insert(reg.q_net, drive);
    }

    let mut comb_drives = HashMap::new();
    for &(comb_net, source) in seq.comb_inputs() {
        let orig_net = match source {
            NetSource::PrimaryInput(net) => net,
            NetSource::RegisterQ(idx) => seq.registers()[idx].q_net,
            NetSource::CombGate(_) => unreachable!("cone inputs are never comb-driven"),
        };
        comb_drives.insert(comb_net, orig_drives[&orig_net].clone());
    }
    Ok((orig_drives, comb_drives))
}

/// Samples the analog value of a source net at time `t`.
fn source_value(
    seq: &SeqNetlist,
    source: NetSource,
    orig_drives: &HashMap<NetRef, DriveWaveform>,
    epoch: Option<&NetsimResult>,
    t: f64,
) -> Result<f64, SeqError> {
    match source {
        NetSource::PrimaryInput(net) => Ok(orig_drives[&net].eval(t)),
        NetSource::RegisterQ(idx) => Ok(orig_drives[&seq.registers()[idx].q_net].eval(t)),
        NetSource::CombGate(orig_net) => {
            let comb_net = seq.comb_net_of(orig_net).ok_or_else(|| {
                SeqError::InvalidParameter(format!(
                    "net `{}` is not in the combinational cone",
                    seq.original().net_name(orig_net)
                ))
            })?;
            let epoch = epoch.ok_or_else(|| {
                SeqError::InvalidParameter(
                    "comb-driven endpoint without an epoch simulation".to_string(),
                )
            })?;
            let waveform = epoch.waveform(comb_net).ok_or_else(|| {
                SeqError::InvalidParameter(format!(
                    "net `{}` was not observed in the epoch — register D nets and \
                     primary outputs are always observed, so this indicates a \
                     partitioning bug",
                    seq.original().net_name(orig_net)
                ))
            })?;
            Ok(waveform.value_at(t))
        }
    }
}

/// Samples register captures and primary outputs from a finished epoch and
/// folds them into the next carried state.
fn capture(
    seq: &SeqNetlist,
    clock: &ClockSpec,
    orig_drives: &HashMap<NetRef, DriveWaveform>,
    epoch: Option<&NetsimResult>,
    vdd: f64,
) -> Result<(Vec<RegState>, Vec<bool>), SeqError> {
    let threshold = 0.5 * vdd;
    let mut states = Vec::with_capacity(seq.registers().len());
    for (idx, reg) in seq.registers().iter().enumerate() {
        let t_capture = capture_time(clock, &reg.name);
        // Active-low async reset: a low RB at the capture instant forces 0.
        let reset_active = reg
            .rb_net
            .map(|rb| orig_drives[&rb].eval(t_capture) < threshold)
            .unwrap_or(false);
        let state = if reset_active {
            RegState {
                value: false,
                voltage: 0.0,
            }
        } else {
            let voltage = source_value(seq, seq.d_sources()[idx], orig_drives, epoch, t_capture)?;
            RegState {
                value: voltage > threshold,
                voltage,
            }
        };
        states.push(state);
    }

    let t_po = epoch_t0(clock) + clock.period;
    let mut po_values = Vec::with_capacity(seq.po_sources().len());
    for &source in seq.po_sources() {
        let voltage = source_value(seq, source, orig_drives, epoch, t_po)?;
        po_values.push(voltage > threshold);
    }
    Ok((states, po_values))
}

/// Advances the sequential simulation by one clock cycle.
///
/// Builds this epoch's drives from the carried `state`, runs one comb-cone
/// simulation, samples every register's D net at its capture instant and
/// every primary output one period after the epoch origin, and updates
/// `state` in place (captured values become the next launch values; toggles
/// are recorded so the next epoch launches clk-to-q ramps).
///
/// # Errors
///
/// Propagates validation failures ([`SeqError::InvalidParameter`],
/// [`SeqError::ClockMismatch`]), missing register models
/// ([`SeqError::Sta`]), and epoch-simulation failures ([`SeqError::Netsim`]).
pub fn step_cycle(
    seq: &SeqNetlist,
    library: &ModelLibrary,
    clock: &ClockSpec,
    inputs: &CycleInputs,
    state: &mut SeqState,
    options: &SeqOptions,
    caches: SimCaches<'_>,
) -> Result<CycleOutcome, SeqError> {
    let mut cycle_span = mcsm_obs::span("seq.cycle");
    cycle_span.arg("cycle", state.cycle as f64);
    cycle_span.arg("registers", seq.registers().len() as f64);
    mcsm_obs::counter_add("seq.cycles", 1);
    validate_cycle(seq, clock, inputs, options)?;
    let mut new_pi_values = state.pi_values.clone();
    for (&net, &value) in &inputs.values {
        new_pi_values.insert(net, value);
    }

    let (orig_drives, comb_drives) = build_drives(
        seq,
        library,
        clock,
        state,
        &new_pi_values,
        options,
        caches.delay,
    )?;

    // Chaos-testing injection point: an armed plan stalls this epoch's solve,
    // exercising deadline handling in the layers above. Keyed by cycle index
    // so the same cycles stall on every replay of the same plan.
    if let Some(plan) = &options.netsim.fault {
        plan.maybe_delay(mcsm_num::fault::site::SEQ_EPOCH_LATENCY, state.cycle as u64);
    }

    let epoch = match seq.comb() {
        Some(comb) => Some(simulate_netlist_cached(
            comb,
            library,
            &comb_drives,
            &options.netsim,
            caches,
        )?),
        None => None,
    };

    let vdd = options.netsim.calculator.vdd;
    let (states, po_values) = capture(seq, clock, &orig_drives, epoch.as_ref(), vdd)?;

    let values_before = std::mem::replace(
        &mut state.reg_values,
        states.iter().map(|s| s.value).collect(),
    );
    state.reg_toggled = state
        .reg_values
        .iter()
        .zip(&values_before)
        .map(|(new, old)| new != old)
        .collect();
    state.pi_values = new_pi_values;
    state.cycle += 1;

    Ok(CycleOutcome {
        states,
        po_values,
        epoch,
        comb_drives,
        orig_drives,
        values_before,
    })
}

/// Re-runs the *same* epoch after an ECO edit to the comb cone, re-solving
/// only the cones of influence downstream of `seeds` (comb-cone gate
/// references), then re-samples captures and outputs.
///
/// `seq` must be the re-partitioned post-ECO netlist (same structure — ECO
/// retypes preserve net and gate identities) and `prev` the outcome of the
/// cycle being replayed. Both the previous epoch and this one must observe
/// all nets ([`mcsm_netsim::Observe::All`]).
///
/// # Errors
///
/// Fails when the previous cycle had no epoch simulation (registers-only
/// cone) or when the incremental re-simulation itself fails.
pub fn resimulate_cycle(
    seq: &SeqNetlist,
    library: &ModelLibrary,
    clock: &ClockSpec,
    prev: &CycleOutcome,
    seeds: &[GateRef],
    options: &SeqOptions,
    caches: SimCaches<'_>,
) -> Result<CycleOutcome, SeqError> {
    let comb = seq.comb().ok_or_else(|| {
        SeqError::InvalidParameter(
            "cannot incrementally re-simulate a registers-only netlist".to_string(),
        )
    })?;
    let prev_epoch = prev.epoch.as_ref().ok_or_else(|| {
        SeqError::InvalidParameter(
            "previous cycle has no epoch simulation to re-simulate".to_string(),
        )
    })?;
    let epoch = resimulate_netlist(
        comb,
        library,
        &prev.comb_drives,
        &options.netsim,
        caches,
        prev_epoch,
        seeds,
    )?;
    let vdd = options.netsim.calculator.vdd;
    let (states, po_values) = capture(seq, clock, &prev.orig_drives, Some(&epoch), vdd)?;
    Ok(CycleOutcome {
        states,
        po_values,
        epoch: Some(epoch),
        comb_drives: prev.comb_drives.clone(),
        orig_drives: prev.orig_drives.clone(),
        values_before: prev.values_before.clone(),
    })
}

/// Simulates `cycles` clock cycles of a sequential netlist with carried
/// register state.
///
/// Partitions `netlist` at its register boundaries, characterizes nothing
/// itself (the `library` must already hold a register model for every
/// register kind — see `ModelLibrary::characterize_registers`), and runs one
/// comb-cone epoch per cycle. Delay and waveform caches are shared across
/// cycles, so quiescent epochs are nearly free.
///
/// # Errors
///
/// Propagates partitioning failures ([`SeqError::GatedClock`],
/// [`SeqError::Unsupported`]), clock/window validation failures, missing
/// register models, and per-epoch simulation failures.
pub fn simulate_sequential(
    netlist: &mcsm_net::Netlist,
    library: &ModelLibrary,
    clock: &ClockSpec,
    cycles: &[CycleInputs],
    options: &SeqOptions,
) -> Result<SeqResult, SeqError> {
    let seq = SeqNetlist::partition(netlist)?;
    let mut state = initial_seq_state(&seq, options)?;
    let delay_cache = DelayCache::new();
    let waveform_cache = WaveformCache::new();
    let caches = SimCaches {
        delay: &delay_cache,
        waveforms: Some(&waveform_cache),
    };

    let mut states = Vec::with_capacity(cycles.len());
    let mut po_values = Vec::with_capacity(cycles.len());
    let mut epochs = Vec::with_capacity(cycles.len());
    let mut stats = SeqStats::default();
    for inputs in cycles {
        let outcome = step_cycle(&seq, library, clock, inputs, &mut state, options, caches)?;
        if let Some(epoch) = &outcome.epoch {
            let s = epoch.stats();
            stats.gates_simulated += s.gates_simulated;
            stats.gates_skipped += s.gates_skipped;
            stats.events += s.events;
            stats.recoveries += s.recoveries.len();
        }
        stats.cycles += 1;
        states.push(outcome.states);
        po_values.push(outcome.po_values);
        epochs.push(outcome.epoch);
    }

    Ok(SeqResult {
        register_names: seq.registers().iter().map(|r| r.name.clone()).collect(),
        states,
        po_names: netlist
            .primary_outputs()
            .iter()
            .map(|&po| netlist.net_name(po).to_string())
            .collect(),
        po_values,
        epochs,
        stats,
    })
}
