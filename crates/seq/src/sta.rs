//! Sequential static timing: worst-path setup/hold slack over the
//! register-bounded cones.
//!
//! Signoff timing needs the **latest** (and, for hold, the earliest) arrival
//! any input vector could produce at each register D pin — a property no
//! single functional simulation exhibits. This module therefore runs a
//! classic topological min/max arrival propagation over the comb cone of a
//! [`SeqNetlist`], with every per-pin gate delay produced by the same
//! current-source models the simulator uses: pin `p` of a gate is sensitized
//! (the other pins held at rails that make the output follow pin `p`), a
//! saturated ramp of the path's slew drives it through
//! [`DelayCalculator::gate_output_cached`], and the measured 50 % delay and
//! output transition time propagate `arrival + delay` per direction.
//! Delays are memoized per (cell, pin, direction, slew, load) bucket, so the
//! cost is a handful of single-gate solves per distinct cell shape rather
//! than per gate instance.
//!
//! Launch timeline matches the epoch scheduler ([`crate::epoch`]): primary
//! inputs switch at `t0 = 2*clock.slew` with the configured input slew;
//! register Q pins switch a characterized clk-to-q after their
//! insertion-delayed launch edge. Endpoint arithmetic (required times,
//! setup/hold windows from characterized [`RegisterModel`]s) is
//! [`mcsm_sta::slack`]; the worst setup arrival uses the latest path, the
//! hold check the earliest. A negative setup slack here is cross-checked by
//! the test suite against an epoch simulation showing the late transition at
//! the capture instant.
//!
//! [`RegisterModel`]: mcsm_core::characterize::registers::RegisterModel
//! [`DelayCalculator::gate_output_cached`]: mcsm_sta::DelayCalculator::gate_output_cached

use crate::epoch::epoch_t0;
use crate::error::SeqError;
use crate::partition::{NetSource, SeqNetlist};
use mcsm_cells::cell::CellKind;
use mcsm_core::sim::DriveWaveform;
use mcsm_net::Netlist;
use mcsm_netsim::effective_load;
use mcsm_sta::{
    output_endpoint, register_endpoint, ClockSpec, DelayCache, EndpointSlack, ModelLibrary,
    SlackReport, TimingOptions,
};
use std::collections::HashMap;

/// Options for sequential timing analysis.
#[derive(Debug, Clone)]
pub struct SeqTimingOptions {
    /// Per-pin delay solves (backend, stepping, supply). The window
    /// (`timing.calculator.sim.t_stop`) must be long enough for a single
    /// gate solve: a few input slews plus the gate delay.
    pub timing: TimingOptions,
    /// Transition time of primary-input launch ramps (seconds).
    pub pi_slew: f64,
}

impl SeqTimingOptions {
    /// Sequential timing options with a 50 ps input slew.
    pub fn new(timing: TimingOptions) -> Self {
        SeqTimingOptions {
            timing,
            pi_slew: 50e-12,
        }
    }

    /// Sets the primary-input transition time.
    #[must_use]
    pub fn with_pi_slew(mut self, seconds: f64) -> Self {
        self.pi_slew = seconds;
        self
    }
}

/// One path head: `(arrival of the 50 % crossing, transition time)`.
type Point = (f64, f64);

/// Earliest/latest path heads reaching a net with one transition direction.
#[derive(Debug, Clone, Copy, Default)]
struct DirBand {
    earliest: Option<Point>,
    latest: Option<Point>,
}

impl DirBand {
    fn seed(point: Point) -> Self {
        DirBand {
            earliest: Some(point),
            latest: Some(point),
        }
    }

    fn merge_earliest(&mut self, point: Point) {
        if self.earliest.is_none_or(|(t, _)| point.0 < t) {
            self.earliest = Some(point);
        }
    }

    fn merge_latest(&mut self, point: Point) {
        if self.latest.is_none_or(|(t, _)| point.0 > t) {
            self.latest = Some(point);
        }
    }
}

/// Rise/fall arrival bands on one net.
#[derive(Debug, Clone, Copy, Default)]
struct NetBands {
    bands: [DirBand; 2],
}

fn dir(rising: bool) -> usize {
    usize::from(!rising)
}

impl NetBands {
    fn latest(&self) -> Option<Point> {
        let mut best: Option<Point> = None;
        for band in &self.bands {
            if let Some(point) = band.latest {
                if best.is_none_or(|(t, _)| point.0 > t) {
                    best = Some(point);
                }
            }
        }
        best
    }

    fn earliest(&self) -> Option<Point> {
        let mut best: Option<Point> = None;
        for band in &self.bands {
            if let Some(point) = band.earliest {
                if best.is_none_or(|(t, _)| point.0 < t) {
                    best = Some(point);
                }
            }
        }
        best
    }
}

/// Memo key for one sensitized pin delay: cell, pin, input direction, input
/// slew (femtosecond bucket) and output load (attofarad bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PinKey {
    kind: CellKind,
    pin: usize,
    in_rising: bool,
    slew_fs: u64,
    load_af: u64,
}

/// Finds rail values for the non-switching pins that make the output follow
/// pin `pin`, plus the output direction for a rising/falling input. Returns
/// `None` if no static side-input assignment sensitizes the pin (which would
/// make the cell untimeable path-by-path).
fn sensitize(kind: CellKind, pin: usize) -> Option<(Vec<bool>, bool)> {
    let n = kind.input_count();
    let others: Vec<usize> = (0..n).filter(|&i| i != pin).collect();
    for assignment in 0..(1u32 << others.len()) {
        let mut logic = vec![false; n];
        for (bit, &other) in others.iter().enumerate() {
            logic[other] = (assignment >> bit) & 1 == 1;
        }
        logic[pin] = false;
        let out_low_pin = kind.evaluate(&logic);
        logic[pin] = true;
        let out_high_pin = kind.evaluate(&logic);
        if out_low_pin != out_high_pin {
            logic[pin] = false; // return side values only
            return Some((logic, out_high_pin));
        }
    }
    None
}

/// Computes (and memoizes) the 50 % delay and output slew of one sensitized
/// pin via a single-gate CSM solve.
#[allow(clippy::too_many_arguments)]
fn pin_delay(
    library: &ModelLibrary,
    options: &SeqTimingOptions,
    cache: &DelayCache,
    memo: &mut HashMap<PinKey, (f64, f64)>,
    kind: CellKind,
    pin: usize,
    in_rising: bool,
    in_slew: f64,
    load: f64,
) -> Result<(f64, f64, bool), SeqError> {
    let (side_values, out_rises_with_pin) = sensitize(kind, pin).ok_or_else(|| {
        SeqError::Unsupported(format!(
            "no static side-input assignment sensitizes pin {pin} of {}",
            kind.name()
        ))
    })?;
    // Output direction: the output follows (or inverts) the pin.
    let out_rising = if out_rises_with_pin {
        in_rising
    } else {
        !in_rising
    };

    let key = PinKey {
        kind,
        pin,
        in_rising,
        slew_fs: (in_slew * 1e15).round().max(0.0) as u64,
        load_af: (load * 1e18).round().max(0.0) as u64,
    };
    if let Some(&(delay, out_slew)) = memo.get(&key) {
        return Ok((delay, out_slew, out_rising));
    }

    let calculator = &options.timing.calculator;
    let vdd = calculator.vdd;
    let t_start = 4.0 * in_slew;
    let t_in50 = t_start + 0.5 * in_slew;
    let mut inputs = Vec::with_capacity(kind.input_count());
    for (i, &side) in side_values.iter().enumerate() {
        if i == pin {
            inputs.push(if in_rising {
                DriveWaveform::rising_ramp(vdd, t_start, in_slew)
            } else {
                DriveWaveform::falling_ramp(vdd, t_start, in_slew)
            });
        } else {
            inputs.push(DriveWaveform::dc(if side { vdd } else { 0.0 }));
        }
    }
    let waveform =
        calculator.gate_output_cached(library.store(kind)?, kind, &inputs, load, Some(cache))?;
    let t_out50 = waveform.crossing(0.5 * vdd, out_rising).ok_or_else(|| {
        SeqError::InvalidParameter(format!(
            "{} pin {pin} output never crossed 50% within the analysis window \
             ({:.3e} s) — raise the calculator's t_stop",
            kind.name(),
            calculator.sim.t_stop
        ))
    })?;
    let out_slew = waveform.transition_time(vdd, out_rising).unwrap_or(in_slew);
    let delay = t_out50 - t_in50;
    memo.insert(key, (delay, out_slew));
    Ok((delay, out_slew, out_rising))
}

/// Analyzes setup/hold slack of every register D pin and primary output of a
/// sequential netlist against `clock`.
///
/// The `library` must hold a register model for every register kind (see
/// `ModelLibrary::characterize_registers`) plus combinational models for the
/// cone's gates.
///
/// # Errors
///
/// Propagates partitioning failures, clock validation failures
/// ([`SeqError::ClockMismatch`], [`SeqError::Sta`]), missing models, and
/// per-pin solve failures.
pub fn analyze_sequential(
    netlist: &Netlist,
    library: &ModelLibrary,
    clock: &ClockSpec,
    options: &SeqTimingOptions,
) -> Result<SlackReport, SeqError> {
    let seq = SeqNetlist::partition(netlist)?;
    clock.validate().map_err(SeqError::Sta)?;
    let clock_name = netlist.net_name(seq.clock_net());
    if clock.clock != clock_name {
        return Err(SeqError::ClockMismatch(format!(
            "clock spec is for `{}` but the netlist's clock net is `{clock_name}`",
            clock.clock
        )));
    }
    if !(options.pi_slew > 0.0) {
        return Err(SeqError::InvalidParameter(format!(
            "pi_slew must be positive, got {}",
            options.pi_slew
        )));
    }

    let t0 = epoch_t0(clock);
    let cache = DelayCache::new();
    let mut memo: HashMap<PinKey, (f64, f64)> = HashMap::new();

    // Per-register launch points (50 % crossing of the Q ramp) per direction,
    // shared by cone seeding and direct-path endpoints.
    let mut q_launch: Vec<[Point; 2]> = Vec::with_capacity(seq.registers().len());
    for reg in seq.registers() {
        let model = library.register(reg.kind)?;
        let load = effective_load(
            netlist,
            library,
            &cache,
            reg.q_net,
            options.timing.primary_output_load,
        )?;
        let insertion = clock.insertion_of(&reg.name);
        let mut points = [(0.0, 0.0); 2];
        for rising in [true, false] {
            let (delay, slew) = model.clk_to_q(load, rising)?;
            points[dir(rising)] = (t0 + insertion + delay, slew);
        }
        q_launch.push(points);
    }

    let source_bands = |source: NetSource| -> NetBands {
        let mut bands = NetBands::default();
        match source {
            NetSource::PrimaryInput(_) => {
                let point = (t0 + 0.5 * options.pi_slew, options.pi_slew);
                bands.bands = [DirBand::seed(point), DirBand::seed(point)];
            }
            NetSource::RegisterQ(idx) => {
                for rising in [true, false] {
                    bands.bands[dir(rising)] = DirBand::seed(q_launch[idx][dir(rising)]);
                }
            }
            NetSource::CombGate(_) => unreachable!("cone inputs are never comb-driven"),
        }
        bands
    };

    // Min/max arrival propagation over the comb cone in level order.
    let comb_bands: Option<Vec<NetBands>> = match seq.comb() {
        None => None,
        Some(comb) => {
            let mut bands: Vec<NetBands> = vec![NetBands::default(); comb.net_count()];
            for &(comb_net, source) in seq.comb_inputs() {
                bands[comb_net.index()] = source_bands(source);
            }
            let schedule = comb.levels();
            for level in schedule.iter() {
                for &gate in level {
                    let kind = comb.gate_kind(gate);
                    let out = comb.output_of(gate);
                    let load = effective_load(
                        comb,
                        library,
                        &cache,
                        out,
                        options.timing.primary_output_load,
                    )?;
                    for (pin, &in_net) in comb.inputs_of(gate).iter().enumerate() {
                        for in_rising in [true, false] {
                            let band = bands[in_net.index()].bands[dir(in_rising)];
                            for (is_latest, point) in [(false, band.earliest), (true, band.latest)]
                            {
                                let Some((arrival, slew)) = point else {
                                    continue;
                                };
                                let (delay, out_slew, out_rising) = pin_delay(
                                    library, options, &cache, &mut memo, kind, pin, in_rising,
                                    slew, load,
                                )?;
                                let head = (arrival + delay, out_slew);
                                let out_band = &mut bands[out.index()].bands[dir(out_rising)];
                                if is_latest {
                                    out_band.merge_latest(head);
                                } else {
                                    out_band.merge_earliest(head);
                                }
                            }
                        }
                    }
                }
            }
            Some(bands)
        }
    };

    let bands_of = |source: NetSource| -> Result<NetBands, SeqError> {
        match source {
            NetSource::CombGate(orig_net) => {
                let comb = seq.comb().expect("comb-driven sources imply a cone");
                let net = comb.find_net(netlist.net_name(orig_net))?;
                Ok(comb_bands.as_ref().expect("cone was propagated")[net.index()])
            }
            direct => Ok(source_bands(direct)),
        }
    };

    let mut endpoints: Vec<EndpointSlack> =
        Vec::with_capacity(seq.registers().len() + seq.po_sources().len());
    for (idx, reg) in seq.registers().iter().enumerate() {
        let model = library.register(reg.kind)?;
        let bands = bands_of(seq.d_sources()[idx])?;
        let (arrival, slew) = split(bands.latest(), t0);
        let mut endpoint = register_endpoint(model, clock, &reg.name, arrival, slew)?;
        // Setup uses the latest path; hold must use the earliest one — the
        // first post-launch-edge transition is what can race the hold window.
        if let Some((t, early_slew)) = bands.earliest() {
            let hold = model.hold_time(early_slew).map_err(SeqError::Model)?;
            endpoint.hold = hold;
            endpoint.hold_slack = Some((t - t0) - (clock.insertion_of(&reg.name) + hold));
        }
        endpoints.push(endpoint);
    }
    for (&po, &source) in netlist.primary_outputs().iter().zip(seq.po_sources()) {
        let (arrival, slew) = split(bands_of(source)?.latest(), t0);
        endpoints.push(output_endpoint(clock, netlist.net_name(po), arrival, slew));
    }
    Ok(SlackReport::new(endpoints))
}

/// Converts a path head on the epoch timeline into `t0`-relative
/// `(arrival, slew)` options for the slack arithmetic.
fn split(point: Option<Point>, t0: f64) -> (Option<f64>, Option<f64>) {
    match point {
        Some((t, slew)) => (Some(t - t0), Some(slew)),
        None => (None, None),
    }
}
