//! Integration tests for the clocked epoch scheduler and sequential STA.
//!
//! The load-bearing pins:
//! * epoch-carried register state is exactly a Boolean functional simulation
//!   when the clock is generous (everything settles before capture), checked
//!   both against a direct Boolean oracle and against a flattened unrolled
//!   combinational netlist run through `mcsm-netsim`;
//! * sequential simulation is bit-identical at 1/2/8 worker threads;
//! * a deliberately under-constrained clock produces a negative-slack
//!   register endpoint whose late transition is visible in the epoch
//!   waveform at the capture instant (the ISSUE acceptance pin).

use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::characterize::RegisterCharacterizationConfig;
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform};
use mcsm_net::{pipelined_dag, s27, NetRef, Netlist, NetlistBuilder};
use mcsm_netsim::{simulate_netlist, NetsimOptions};
use mcsm_num::testrand::TestRng;
use mcsm_seq::{
    analyze_sequential, capture_time, simulate_sequential, CycleInputs, SeqNetlist, SeqOptions,
    SeqTimingOptions,
};
use mcsm_sta::{
    ClockSpec, DelayBackend, DelayCalculator, EndpointKind, ModelLibrary, TimingOptions,
};
use std::collections::HashMap;
use std::sync::OnceLock;

const PO_LOAD: f64 = 2e-15;

fn library() -> &'static (Technology, ModelLibrary) {
    static LIBRARY: OnceLock<(Technology, ModelLibrary)> = OnceLock::new();
    LIBRARY.get_or_init(|| {
        let tech = Technology::cmos_130nm();
        let mut library = ModelLibrary::characterize(
            &tech,
            &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
            &CharacterizationConfig::coarse(),
        )
        .expect("combinational characterization succeeds");
        library
            .characterize_registers(
                &tech,
                &[CellKind::Dff],
                &RegisterCharacterizationConfig::coarse(),
            )
            .expect("register characterization succeeds");
        (tech, library)
    })
}

fn netsim_options(tech: &Technology, t_stop: f64) -> NetsimOptions {
    // The complete MCSM backend: epoch captures are *functional* results, so
    // every switching input must be honored (SIS-only deliberately drops all
    // but the first switching pin — the paper's headline inaccuracy).
    let calculator = DelayCalculator::new(
        DelayBackend::CompleteMcsm,
        CsmSimOptions::new(t_stop, 2e-12),
        tech.vdd,
    );
    NetsimOptions::new(calculator, PO_LOAD)
}

/// Random per-cycle input vectors over every non-clock primary input.
fn random_cycles(netlist: &Netlist, clock: &str, cycles: usize, seed: u64) -> Vec<CycleInputs> {
    let clock = netlist.find_net(clock).unwrap();
    let mut rng = TestRng::new(seed);
    (0..cycles)
        .map(|_| {
            CycleInputs::from_pairs(
                netlist
                    .primary_inputs()
                    .iter()
                    .filter(|&&pi| pi != clock)
                    .map(|&pi| (pi, rng.index(2) == 1))
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Boolean functional oracle: evaluates the netlist cycle-by-cycle with
/// `CellKind::evaluate`, registers sampling their D at the end of each cycle.
fn boolean_oracle(
    netlist: &Netlist,
    clock: &str,
    cycles: &[CycleInputs],
) -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
    let seq = SeqNetlist::partition(netlist).unwrap();
    let clock = netlist.find_net(clock).unwrap();
    let mut pi_values: HashMap<NetRef, bool> = netlist
        .primary_inputs()
        .iter()
        .filter(|&&pi| pi != clock)
        .map(|&pi| (pi, false))
        .collect();
    let mut reg_values = vec![false; seq.registers().len()];
    let mut states = Vec::new();
    let mut po_values = Vec::new();
    for inputs in cycles {
        for (&net, &value) in &inputs.values {
            pi_values.insert(net, value);
        }
        // Settle the combinational interior by repeated sweeps (acyclic
        // through registers, so this terminates within gate_count passes).
        let mut values: HashMap<NetRef, bool> = pi_values.clone();
        for (reg, &value) in seq.registers().iter().zip(&reg_values) {
            values.insert(reg.q_net, value);
        }
        loop {
            let mut progressed = false;
            for gate in netlist.gate_refs() {
                let kind = netlist.gate_kind(gate);
                if kind.is_sequential() || values.contains_key(&netlist.output_of(gate)) {
                    continue;
                }
                let inputs: Option<Vec<bool>> = netlist
                    .inputs_of(gate)
                    .iter()
                    .map(|n| values.get(n).copied())
                    .collect();
                if let Some(inputs) = inputs {
                    values.insert(netlist.output_of(gate), kind.evaluate(&inputs));
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        reg_values = seq
            .registers()
            .iter()
            .map(|reg| values[&reg.d_net])
            .collect();
        states.push(reg_values.clone());
        po_values.push(
            netlist
                .primary_outputs()
                .iter()
                .map(|po| values[po])
                .collect(),
        );
    }
    (states, po_values)
}

#[test]
fn s27_carries_state_for_8_cycles_and_matches_the_boolean_oracle() {
    let (tech, library) = library();
    let netlist = s27();
    let clock = ClockSpec::new("CK", 3e-9);
    let options = SeqOptions::new(netsim_options(tech, 4e-9));
    let cycles = random_cycles(&netlist, "CK", 8, 41);

    let result = simulate_sequential(&netlist, library, &clock, &cycles, &options).unwrap();
    assert_eq!(result.stats.cycles, 8);
    assert_eq!(result.register_names, ["R5", "R6", "R7"]);
    assert_eq!(result.po_names, ["G17"]);

    let (oracle_states, oracle_pos) = boolean_oracle(&netlist, "CK", &cycles);
    for (cycle, (got, want)) in result.states.iter().zip(&oracle_states).enumerate() {
        let got: Vec<bool> = got.iter().map(|s| s.value).collect();
        assert_eq!(&got, want, "register state diverged at cycle {cycle}");
    }
    assert_eq!(result.po_values, oracle_pos);
    // The machine actually moved: some register toggled across the run.
    assert!(result.states.iter().any(|s| s.iter().any(|r| r.value)));
    // Captured voltages are settled rails under a generous clock.
    for states in &result.states {
        for s in states {
            let rail = if s.value { tech.vdd } else { 0.0 };
            assert!(
                (s.voltage - rail).abs() < 0.05 * tech.vdd,
                "captured voltage {} far from rail {rail}",
                s.voltage
            );
        }
    }
}

#[test]
fn generous_clock_has_positive_slack_everywhere_on_s27() {
    let (tech, library) = library();
    let netlist = s27();
    let clock = ClockSpec::new("CK", 3e-9).with_insertion_override("R6", 40e-12);
    let timing = SeqTimingOptions::new(TimingOptions::new(
        netsim_options(tech, 6e-9).calculator,
        PO_LOAD,
    ));
    let report = analyze_sequential(&netlist, library, &clock, &timing).unwrap();
    // 3 register endpoints + 1 primary output, every one constrained.
    assert_eq!(report.endpoints.len(), 4);
    assert_eq!(report.violations().count(), 0, "report: {report:#?}");
    let worst = report.worst().unwrap();
    assert!(worst.setup_slack.unwrap() > 0.0);
    assert!(report
        .endpoints
        .iter()
        .any(|e| e.kind == EndpointKind::PrimaryOutput && e.endpoint == "G17"));
    // Setup windows come from characterization, not defaults.
    for e in report
        .endpoints
        .iter()
        .filter(|e| e.kind == EndpointKind::RegisterD)
    {
        assert!(e.setup > 0.0 && e.arrival.is_some());
    }
}

#[test]
fn underconstrained_clock_reports_negative_slack_and_the_late_transition_is_in_the_waveform() {
    let (tech, library) = library();
    let netlist = s27();
    // Deliberately under-constrained: the s27 cone needs several gate delays
    // per cycle, but the clock gives it 150 ps.
    let clock = ClockSpec::new("CK", 150e-12).with_slew(30e-12);
    let timing = SeqTimingOptions::new(TimingOptions::new(
        netsim_options(tech, 4e-9).calculator,
        PO_LOAD,
    ));
    let report = analyze_sequential(&netlist, library, &clock, &timing).unwrap();
    let worst = report.worst().unwrap().clone();
    assert!(
        worst.setup_slack.unwrap() < 0.0,
        "expected a setup violation at 150 ps, got {worst:?}"
    );
    assert_eq!(worst.kind, EndpointKind::RegisterD);

    // Cross-check against the epoch simulation: a violating register's D net
    // must still be switching after its required time in some epoch. (Which
    // violating endpoint toggles depends on the stimulus, so any of the
    // STA-flagged registers showing its late transition confirms the report.)
    let violating: Vec<_> = report
        .violations()
        .filter(|e| e.kind == EndpointKind::RegisterD)
        .collect();
    assert!(!violating.is_empty());
    let options = SeqOptions::new(netsim_options(tech, 4e-9));
    let cycles = random_cycles(&netlist, "CK", 8, 97);
    let result = simulate_sequential(&netlist, library, &clock, &cycles, &options).unwrap();
    let seq = SeqNetlist::partition(&netlist).unwrap();
    let late = violating.iter().any(|endpoint| {
        let idx = seq.register_index(&endpoint.endpoint).unwrap();
        let d_comb = seq.comb_net_of(seq.registers()[idx].d_net).unwrap();
        let t_capture = capture_time(&clock, &endpoint.endpoint);
        result.epochs.iter().flatten().any(|epoch| {
            let w = epoch.waveform(d_comb).expect("D nets are always observed");
            [true, false]
                .iter()
                .filter_map(|&rising| w.crossing(0.5 * tech.vdd, rising))
                .any(|t| t > t_capture - endpoint.setup)
        })
    });
    assert!(
        late,
        "no epoch shows any violating register's D net switching inside its setup window"
    );
}

/// Net name of `net` in unrolled copy `k`: primary inputs and comb-driven
/// nets get a `__c{k}` suffix; a register Q resolves to the previous copy's
/// D net (or the initial-state input for copy 0).
fn name_in_copy(netlist: &Netlist, seq: &SeqNetlist, net: NetRef, k: usize) -> String {
    match netlist.driver_of(net) {
        None => format!("{}__c{k}", netlist.net_name(net)),
        Some(driver) if netlist.gate_kind(driver).is_sequential() => {
            let idx = seq
                .registers()
                .iter()
                .position(|r| r.gate == driver)
                .unwrap();
            if k == 0 {
                format!("init__{}", seq.registers()[idx].name)
            } else {
                name_in_copy(netlist, seq, seq.registers()[idx].d_net, k - 1)
            }
        }
        Some(_) => format!("{}__c{k}", netlist.net_name(net)),
    }
}

#[test]
fn epoch_carried_state_equals_a_flattened_unrolled_netlist() {
    let (tech, library) = library();
    let netlist = pipelined_dag(3, 3, 11);
    let cycles = random_cycles(&netlist, "clk", 4, 5);
    let clock = ClockSpec::new("clk", 3e-9);
    let options = SeqOptions::new(netsim_options(tech, 4e-9));
    let result = simulate_sequential(&netlist, library, &clock, &cycles, &options).unwrap();

    // Flatten the 4 cycles into one combinational netlist: register arcs
    // become wires into the next copy, cycle-k inputs become dedicated
    // DC-driven primary inputs.
    let seq = SeqNetlist::partition(&netlist).unwrap();
    let clk = netlist.find_net("clk").unwrap();
    let k_cycles = cycles.len();
    // Gather every copy's gates first so only *referenced* inputs become
    // primary inputs (unread nets fail netlist validation).
    let mut gates: Vec<(String, CellKind, Vec<String>, String)> = Vec::new();
    for k in 0..k_cycles {
        for gate in netlist.gate_refs() {
            let kind = netlist.gate_kind(gate);
            if kind.is_sequential() {
                continue;
            }
            let inputs: Vec<String> = netlist
                .inputs_of(gate)
                .iter()
                .map(|&n| name_in_copy(&netlist, &seq, n, k))
                .collect();
            gates.push((
                format!("{}__c{k}", netlist.gate_name(gate)),
                kind,
                inputs,
                name_in_copy(&netlist, &seq, netlist.output_of(gate), k),
            ));
        }
    }
    let used: std::collections::HashSet<&str> = gates
        .iter()
        .flat_map(|(_, _, inputs, _)| inputs.iter().map(String::as_str))
        .collect();

    let mut builder = NetlistBuilder::new("unrolled");
    let mut pi_names: Vec<(String, NetRef, usize)> = Vec::new();
    for k in 0..k_cycles {
        for &pi in netlist.primary_inputs() {
            if pi != clk {
                let name = format!("{}__c{k}", netlist.net_name(pi));
                if used.contains(name.as_str()) {
                    builder = builder.primary_input(&name);
                    pi_names.push((name, pi, k));
                }
            }
        }
    }
    let mut init_names: Vec<String> = Vec::new();
    for reg in seq.registers() {
        let name = format!("init__{}", reg.name);
        if used.contains(name.as_str()) {
            builder = builder.primary_input(&name);
            init_names.push(name);
        }
    }
    for (name, kind, inputs, out) in &gates {
        let input_refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
        builder = builder.gate(name, *kind, &input_refs, out);
    }
    // Observe every copy's register-D nets (all comb-driven in this
    // generator) as primary outputs.
    for k in 0..k_cycles {
        for reg in seq.registers() {
            builder = builder.primary_output(&name_in_copy(&netlist, &seq, reg.d_net, k));
        }
    }
    let unrolled = builder.build().unwrap();

    // DC drives: held input values per copy, initial state zero.
    let mut held: HashMap<NetRef, bool> = netlist
        .primary_inputs()
        .iter()
        .filter(|&&pi| pi != clk)
        .map(|&pi| (pi, false))
        .collect();
    let mut drives: HashMap<NetRef, DriveWaveform> = HashMap::new();
    let mut values_by_cycle: Vec<HashMap<NetRef, bool>> = Vec::new();
    for inputs in &cycles {
        for (&net, &value) in &inputs.values {
            held.insert(net, value);
        }
        values_by_cycle.push(held.clone());
    }
    for (name, orig, k) in &pi_names {
        let value = values_by_cycle[*k][orig];
        let level = if value { tech.vdd } else { 0.0 };
        drives.insert(unrolled.find_net(name).unwrap(), DriveWaveform::dc(level));
    }
    for name in &init_names {
        drives.insert(unrolled.find_net(name).unwrap(), DriveWaveform::dc(0.0));
    }

    let flat = simulate_netlist(&unrolled, library, &drives, &netsim_options(tech, 4e-9)).unwrap();
    for k in 0..k_cycles {
        for (idx, reg) in seq.registers().iter().enumerate() {
            let net = unrolled
                .find_net(&name_in_copy(&netlist, &seq, reg.d_net, k))
                .unwrap();
            let flat_value = flat.waveform(net).unwrap().final_value() > 0.5 * tech.vdd;
            assert_eq!(
                result.states[k][idx].value, flat_value,
                "cycle {k} register {} disagrees with the unrolled netlist",
                reg.name
            );
        }
    }
}

#[test]
fn sequential_simulation_is_bit_identical_across_thread_counts() {
    let (tech, library) = library();
    let netlist = s27();
    let clock = ClockSpec::new("CK", 3e-9);
    let cycles = random_cycles(&netlist, "CK", 4, 23);

    let run = |threads: usize| {
        let options = SeqOptions::new(netsim_options(tech, 4e-9).with_threads(threads));
        simulate_sequential(&netlist, library, &clock, &cycles, &options).unwrap()
    };
    let baseline = run(1);
    for threads in [2, 8] {
        let other = run(threads);
        assert_eq!(baseline.po_values, other.po_values);
        for (a, b) in baseline
            .states
            .iter()
            .flatten()
            .zip(other.states.iter().flatten())
        {
            assert_eq!(a.value, b.value);
            assert_eq!(
                a.voltage.to_bits(),
                b.voltage.to_bits(),
                "captured voltages must be bit-identical at {threads} threads"
            );
        }
    }
}

#[test]
fn cycle_validation_rejects_bad_windows_and_clock_driving() {
    let (tech, library) = library();
    let netlist = s27();
    let clock = ClockSpec::new("CK", 3e-9);

    // Window shorter than one cycle.
    let options = SeqOptions::new(netsim_options(tech, 1e-9));
    let err = simulate_sequential(&netlist, library, &clock, &[CycleInputs::hold()], &options)
        .unwrap_err();
    assert!(err.to_string().contains("too short"), "{err}");

    // Driving the clock from cycle inputs.
    let options = SeqOptions::new(netsim_options(tech, 4e-9));
    let ck = netlist.find_net("CK").unwrap();
    let err = simulate_sequential(
        &netlist,
        library,
        &clock,
        &[CycleInputs::from_pairs([(ck, true)])],
        &options,
    )
    .unwrap_err();
    assert!(err.to_string().contains("owns the clock"), "{err}");

    // A clock spec naming the wrong net.
    let wrong = ClockSpec::new("CLK2", 3e-9);
    let err = simulate_sequential(&netlist, library, &wrong, &[CycleInputs::hold()], &options)
        .unwrap_err();
    assert!(err.to_string().contains("clock net"), "{err}");

    // Initial-state length mismatch.
    let bad = SeqOptions::new(netsim_options(tech, 4e-9)).with_initial_state(vec![true; 2]);
    let err =
        simulate_sequential(&netlist, library, &clock, &[CycleInputs::hold()], &bad).unwrap_err();
    assert!(err.to_string().contains("3 registers"), "{err}");
}
