//! Damped Newton–Raphson solver for nonlinear algebraic systems.
//!
//! Both the DC operating-point analysis and every transient time step of
//! `mcsm-spice` reduce to solving `F(x) = 0` where `x` is the vector of node
//! voltages (plus branch currents for voltage sources). The solver here is a
//! textbook Newton iteration with:
//!
//! * step damping (limit the per-iteration voltage change, which is essential
//!   for the exponential subthreshold characteristics of MOSFETs),
//! * both absolute and relative convergence criteria, and
//! * a residual-based fallback check so "flat" systems still terminate.

use crate::error::NumError;
use crate::matrix::{vec_norm_inf, DenseMatrix};

/// A nonlinear system `F(x) = 0` with an explicitly assembled Jacobian.
///
/// Implementors fill the Jacobian matrix and residual vector for a given iterate.
/// The solver owns the workspace allocation; `assemble` must not resize it.
pub trait NewtonSystem {
    /// Dimension of the unknown vector.
    fn dimension(&self) -> usize;

    /// Assembles the Jacobian `J = dF/dx` and the residual `F(x)` at `x`.
    ///
    /// # Errors
    ///
    /// Implementations may fail (for example on non-finite device evaluations);
    /// such failures abort the Newton iteration.
    fn assemble(
        &mut self,
        x: &[f64],
        jacobian: &mut DenseMatrix,
        residual: &mut Vec<f64>,
    ) -> Result<(), NumError>;
}

/// Options controlling the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Absolute tolerance on the update infinity-norm (volts).
    pub tolerance_abs: f64,
    /// Relative tolerance on the update vs. the iterate magnitude.
    pub tolerance_rel: f64,
    /// Absolute tolerance on the residual infinity-norm (amps).
    pub residual_tolerance: f64,
    /// Maximum per-component update magnitude applied in one iteration (volts).
    ///
    /// Limiting the step is the standard way to keep exponential device models
    /// from overflowing during the first iterations.
    pub max_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 200,
            tolerance_abs: 1e-9,
            tolerance_rel: 1e-6,
            residual_tolerance: 1e-9,
            max_step: 0.3,
        }
    }
}

/// Convergence report returned by [`solve_newton`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOutcome {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Infinity norm of the final update.
    pub final_update: f64,
    /// Infinity norm of the final residual.
    pub final_residual: f64,
}

/// Solves `F(x) = 0` starting from `x0`, returning the solution and a report.
///
/// # Errors
///
/// * [`NumError::DidNotConverge`] if the iteration budget is exhausted.
/// * Any error surfaced by the system assembly or the linear solve
///   ([`NumError::SingularMatrix`] for a structurally broken circuit).
pub fn solve_newton<S: NewtonSystem>(
    system: &mut S,
    x0: &[f64],
    options: &NewtonOptions,
) -> Result<(Vec<f64>, NewtonOutcome), NumError> {
    let n = system.dimension();
    if x0.len() != n {
        return Err(NumError::DimensionMismatch {
            got: x0.len(),
            expected: n,
            context: "solve_newton initial guess",
        });
    }

    let mut x = x0.to_vec();
    let mut jacobian = DenseMatrix::zeros(n, n);
    let mut residual = vec![0.0; n];

    let mut last_update = f64::INFINITY;
    let mut last_residual = f64::INFINITY;

    for iteration in 1..=options.max_iterations {
        jacobian.clear();
        residual.iter_mut().for_each(|v| *v = 0.0);
        system.assemble(&x, &mut jacobian, &mut residual)?;

        last_residual = vec_norm_inf(&residual);
        if !last_residual.is_finite() {
            return Err(NumError::DidNotConverge {
                iterations: iteration,
                residual: last_residual,
            });
        }

        // Newton step: J * dx = -F(x)
        let neg_res: Vec<f64> = residual.iter().map(|v| -v).collect();
        let mut dx = jacobian.solve(&neg_res)?;

        // Damping: clamp each component to ±max_step. If any component was
        // clamped, the update norm is not a valid convergence signal (the true
        // Newton step wanted to go further), so update-based convergence is
        // suppressed for this iteration.
        let mut clamped = false;
        for d in dx.iter_mut() {
            if *d > options.max_step {
                *d = options.max_step;
                clamped = true;
            } else if *d < -options.max_step {
                *d = -options.max_step;
                clamped = true;
            }
        }

        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }

        last_update = vec_norm_inf(&dx);
        let x_norm = vec_norm_inf(&x).max(1.0);
        let converged_update =
            !clamped && last_update < options.tolerance_abs + options.tolerance_rel * x_norm;
        let converged_residual = last_residual < options.residual_tolerance;

        if converged_update || (converged_residual && iteration > 1) {
            return Ok((
                x,
                NewtonOutcome {
                    iterations: iteration,
                    final_update: last_update,
                    final_residual: last_residual,
                },
            ));
        }
    }

    Err(NumError::DidNotConverge {
        iterations: options.max_iterations,
        residual: last_residual.min(last_update),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scalar test system: x^2 - 4 = 0.
    struct Quadratic;

    impl NewtonSystem for Quadratic {
        fn dimension(&self) -> usize {
            1
        }
        fn assemble(
            &mut self,
            x: &[f64],
            jacobian: &mut DenseMatrix,
            residual: &mut Vec<f64>,
        ) -> Result<(), NumError> {
            jacobian.set(0, 0, 2.0 * x[0]);
            residual[0] = x[0] * x[0] - 4.0;
            Ok(())
        }
    }

    /// A 2-D coupled system with solution (1, 2): { x + y - 3 = 0, x * y - 2 = 0 }.
    struct Coupled;

    impl NewtonSystem for Coupled {
        fn dimension(&self) -> usize {
            2
        }
        fn assemble(
            &mut self,
            x: &[f64],
            jacobian: &mut DenseMatrix,
            residual: &mut Vec<f64>,
        ) -> Result<(), NumError> {
            jacobian.set(0, 0, 1.0);
            jacobian.set(0, 1, 1.0);
            jacobian.set(1, 0, x[1]);
            jacobian.set(1, 1, x[0]);
            residual[0] = x[0] + x[1] - 3.0;
            residual[1] = x[0] * x[1] - 2.0;
            Ok(())
        }
    }

    /// An exponential system mimicking a diode: exp(x / 0.026) - 1 - 1e6 = 0.
    struct DiodeLike;

    impl NewtonSystem for DiodeLike {
        fn dimension(&self) -> usize {
            1
        }
        fn assemble(
            &mut self,
            x: &[f64],
            jacobian: &mut DenseMatrix,
            residual: &mut Vec<f64>,
        ) -> Result<(), NumError> {
            let vt = 0.026;
            let e = (x[0] / vt).exp();
            jacobian.set(0, 0, e / vt);
            residual[0] = e - 1.0 - 1e6;
            Ok(())
        }
    }

    #[test]
    fn scalar_quadratic_converges_to_positive_root() {
        let (x, outcome) = solve_newton(&mut Quadratic, &[3.0], &NewtonOptions::default()).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-8);
        assert!(outcome.iterations < 30);
    }

    #[test]
    fn coupled_system_converges() {
        let opts = NewtonOptions {
            max_step: 1.0,
            ..NewtonOptions::default()
        };
        let (x, _) = solve_newton(&mut Coupled, &[0.4, 2.8], &opts).unwrap();
        // Roots are (1, 2) and (2, 1); from this start it lands on one of them.
        let sum = x[0] + x[1];
        let prod = x[0] * x[1];
        assert!((sum - 3.0).abs() < 1e-8);
        assert!((prod - 2.0).abs() < 1e-8);
    }

    #[test]
    fn damping_tames_exponential_system() {
        // Without the per-step clamp this overflows immediately from x0 = 0.
        let (x, _) = solve_newton(&mut DiodeLike, &[0.0], &NewtonOptions::default()).unwrap();
        let expected = 0.026 * (1.0f64 + 1e6).ln();
        assert!((x[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn wrong_initial_guess_length_is_rejected() {
        let err = solve_newton(&mut Quadratic, &[1.0, 2.0], &NewtonOptions::default());
        assert!(matches!(err, Err(NumError::DimensionMismatch { .. })));
    }

    #[test]
    fn iteration_budget_is_honoured() {
        let opts = NewtonOptions {
            max_iterations: 2,
            max_step: 1e-6, // absurdly small steps cannot reach the root
            ..NewtonOptions::default()
        };
        let err = solve_newton(&mut Quadratic, &[10.0], &opts);
        assert!(matches!(err, Err(NumError::DidNotConverge { .. })));
    }
}
