//! Canonical-bytes hashing for numerical data.
//!
//! The waveform memoization layer of the query server keys cached gate solves
//! by the *exact bit patterns* of their input waveforms. That needs a hash
//! that is (a) a pure function of the IEEE-754 bits — two `f64` sequences hash
//! equal iff they are bit-for-bit equal, preserving the workspace determinism
//! contract through the cache; (b) stable across runs, platforms and thread
//! counts — so `std::collections::hash_map::RandomState` (per-process seeded)
//! is out; and (c) dependency-free. [`ByteHasher`] is a 64-bit FNV-1a over a
//! canonical little-endian byte stream, with length-prefixed slice writes so
//! adjacent fields cannot alias (`[a, b] ++ [c]` never hashes like
//! `[a] ++ [b, c]`).
//!
//! Hash equality is used as cache-key equality, so a collision between two
//! *different* inputs would silently return the wrong cached value. At 64 bits
//! over full sample data the probability is negligible for any realistic
//! cache population (birthday bound ≈ `n²/2⁶⁵`), which is the standard
//! trade-off content-addressed caches make.

/// An incremental 64-bit FNV-1a hasher over a canonical byte stream.
///
/// ```
/// use mcsm_num::hash::ByteHasher;
///
/// let mut h = ByteHasher::new();
/// h.write_f64_slice(&[1.0, 2.0]);
/// let a = h.finish();
/// let mut h = ByteHasher::new();
/// h.write_f64_slice(&[1.0, 2.0]);
/// assert_eq!(a, h.finish());
/// ```
#[derive(Debug, Clone)]
pub struct ByteHasher {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ByteHasher {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        ByteHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds one byte — handy for enum discriminants / domain tags.
    pub fn write_u8(&mut self, value: u8) {
        self.write_bytes(&[value]);
    }

    /// Feeds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Feeds an `f64` by its exact IEEE-754 bit pattern. `0.0` and `-0.0`
    /// (and distinct NaN payloads) hash differently — bit-for-bit equality is
    /// the contract, not numerical equality.
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// Feeds an `f64` slice, length-prefixed so adjacent slices cannot alias.
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        self.write_u64(values.len() as u64);
        for &v in values {
            self.write_f64(v);
        }
    }

    /// The accumulated 64-bit hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for ByteHasher {
    fn default() -> Self {
        ByteHasher::new()
    }
}

/// One-shot hash of an `f64` slice (length-prefixed, bit-pattern canonical).
pub fn hash_f64_slice(values: &[f64]) -> u64 {
    let mut hasher = ByteHasher::new();
    hasher.write_f64_slice(values);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv1a_vectors() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(ByteHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = ByteHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn hash_is_a_pure_function_of_the_bits() {
        assert_eq!(hash_f64_slice(&[1.0, 2.0]), hash_f64_slice(&[1.0, 2.0]));
        assert_ne!(hash_f64_slice(&[1.0, 2.0]), hash_f64_slice(&[2.0, 1.0]));
        // Bit-pattern canonical: -0.0 and 0.0 are different keys.
        assert_ne!(hash_f64_slice(&[0.0]), hash_f64_slice(&[-0.0]));
    }

    #[test]
    fn length_prefix_prevents_slice_aliasing() {
        let mut split = ByteHasher::new();
        split.write_f64_slice(&[1.0, 2.0]);
        split.write_f64_slice(&[3.0]);
        let mut shifted = ByteHasher::new();
        shifted.write_f64_slice(&[1.0]);
        shifted.write_f64_slice(&[2.0, 3.0]);
        assert_ne!(split.finish(), shifted.finish());
        assert_ne!(hash_f64_slice(&[]), hash_f64_slice(&[0.0]));
    }

    #[test]
    fn tags_and_integers_mix_in() {
        let mut a = ByteHasher::new();
        a.write_u8(0);
        a.write_u64(7);
        let mut b = ByteHasher::new();
        b.write_u8(1);
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }
}
