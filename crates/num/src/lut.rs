//! N-dimensional lookup tables with multilinear interpolation.
//!
//! The heart of a current-source model is a set of pre-characterized tables:
//! the paper stores `I_o`, `I_N`, `C_mA`, `C_mB`, `C_o` and `C_N` as
//! **4-dimensional** tables over `(V_A, V_B, V_N, V_o)` and evaluates them by
//! interpolation at simulation time (Section 3.3). [`LutNd`] is that container,
//! generic over the number of axes so the same type also serves the 2-D tables
//! of the single-input-switching model and the 1-D input-capacitance tables.

use crate::error::NumError;
use crate::grid::Axis;
use crate::json::{FromJson, JsonError, JsonValue, ToJson};

/// An N-dimensional lookup table evaluated by multilinear interpolation.
///
/// Data is stored in row-major order over the axes: the index of the sample at
/// grid coordinates `(i_0, i_1, …, i_{d-1})` is
/// `((i_0 * n_1 + i_1) * n_2 + i_2) * … + i_{d-1}`.
///
/// Queries outside the grid range are clamped to the boundary (flat
/// extrapolation), which is the conservative behaviour expected from
/// characterized device tables: beyond the characterized voltage range the
/// table holds its boundary value rather than extrapolating a slope that was
/// never measured.
///
/// # Example
///
/// ```
/// use mcsm_num::{grid::Axis, lut::LutNd};
///
/// # fn main() -> Result<(), mcsm_num::NumError> {
/// let axes = vec![
///     Axis::uniform(0.0, 1.0, 5)?,
///     Axis::uniform(0.0, 2.0, 5)?,
/// ];
/// // f(x, y) = 3 x - y is affine, so multilinear interpolation is exact.
/// let lut = LutNd::from_fn(axes, |v| 3.0 * v[0] - v[1])?;
/// assert!((lut.eval(&[0.3, 1.1])? - (0.9 - 1.1)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LutNd {
    axes: Vec<Axis>,
    values: Vec<f64>,
}

impl LutNd {
    /// Creates a table from axes and a flat row-major value vector.
    ///
    /// # Errors
    ///
    /// * [`NumError::InvalidGrid`] if no axes are given.
    /// * [`NumError::DimensionMismatch`] if `values.len()` does not equal the
    ///   product of axis lengths.
    pub fn new(axes: Vec<Axis>, values: Vec<f64>) -> Result<Self, NumError> {
        if axes.is_empty() {
            return Err(NumError::InvalidGrid("lut needs at least one axis".into()));
        }
        let expected: usize = axes.iter().map(Axis::len).product();
        if values.len() != expected {
            return Err(NumError::DimensionMismatch {
                got: values.len(),
                expected,
                context: "LutNd::new values length",
            });
        }
        if let Some(bad) = values.iter().position(|v| !v.is_finite()) {
            return Err(NumError::InvalidGrid(format!(
                "lut sample {bad} is not finite ({})",
                values[bad]
            )));
        }
        Ok(LutNd { axes, values })
    }

    /// Creates a table by evaluating `f` at every grid point.
    ///
    /// The closure receives the coordinates of the grid point, one per axis.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidGrid`] if no axes are given.
    pub fn from_fn<F>(axes: Vec<Axis>, mut f: F) -> Result<Self, NumError>
    where
        F: FnMut(&[f64]) -> f64,
    {
        if axes.is_empty() {
            return Err(NumError::InvalidGrid("lut needs at least one axis".into()));
        }
        let total: usize = axes.iter().map(Axis::len).product();
        let dims: Vec<usize> = axes.iter().map(Axis::len).collect();
        let mut values = Vec::with_capacity(total);
        let mut coord = vec![0.0; axes.len()];
        let mut idx = vec![0usize; axes.len()];
        for flat in 0..total {
            // Decode the flat index into per-axis indices (row-major).
            let mut rem = flat;
            for d in (0..dims.len()).rev() {
                idx[d] = rem % dims[d];
                rem /= dims[d];
            }
            for d in 0..dims.len() {
                coord[d] = axes[d].points()[idx[d]];
            }
            values.push(f(&coord));
        }
        LutNd::new(axes, values)
    }

    /// Creates a fallible variant of [`LutNd::from_fn`], aborting on the first error.
    ///
    /// This is used by characterization, where each grid point requires a SPICE
    /// analysis that can fail.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`, or [`NumError::InvalidGrid`]
    /// if no axes are given.
    pub fn try_from_fn<F, E>(axes: Vec<Axis>, mut f: F) -> Result<Result<Self, E>, NumError>
    where
        F: FnMut(&[f64]) -> Result<f64, E>,
    {
        if axes.is_empty() {
            return Err(NumError::InvalidGrid("lut needs at least one axis".into()));
        }
        let total: usize = axes.iter().map(Axis::len).product();
        let dims: Vec<usize> = axes.iter().map(Axis::len).collect();
        let mut values = Vec::with_capacity(total);
        let mut coord = vec![0.0; axes.len()];
        let mut idx = vec![0usize; axes.len()];
        for flat in 0..total {
            let mut rem = flat;
            for d in (0..dims.len()).rev() {
                idx[d] = rem % dims[d];
                rem /= dims[d];
            }
            for d in 0..dims.len() {
                coord[d] = axes[d].points()[idx[d]];
            }
            match f(&coord) {
                Ok(v) => values.push(v),
                Err(e) => return Ok(Err(e)),
            }
        }
        Ok(Ok(LutNd::new(axes, values)?))
    }

    /// Number of dimensions (axes).
    pub fn dimensions(&self) -> usize {
        self.axes.len()
    }

    /// The sampling axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The raw sample values in row-major order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total number of stored samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds no samples (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the stored sample at the given per-axis indices.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if the number of indices is wrong or
    /// any index is out of bounds.
    pub fn at(&self, indices: &[usize]) -> Result<f64, NumError> {
        if indices.len() != self.axes.len() {
            return Err(NumError::InvalidQuery(format!(
                "expected {} indices, got {}",
                self.axes.len(),
                indices.len()
            )));
        }
        let mut flat = 0usize;
        for (d, (&i, axis)) in indices.iter().zip(&self.axes).enumerate() {
            if i >= axis.len() {
                return Err(NumError::InvalidQuery(format!(
                    "index {i} out of bounds for axis {d} of length {}",
                    axis.len()
                )));
            }
            flat = flat * axis.len() + i;
        }
        Ok(self.values[flat])
    }

    /// Evaluates the table at `coords` by multilinear interpolation.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if the number of coordinates differs
    /// from the number of axes.
    pub fn eval(&self, coords: &[f64]) -> Result<f64, NumError> {
        if coords.len() != self.axes.len() {
            return Err(NumError::InvalidQuery(format!(
                "expected {} coordinates, got {}",
                self.axes.len(),
                coords.len()
            )));
        }
        let d = self.axes.len();
        // Locate every coordinate on its axis.
        let mut base = vec![0usize; d];
        let mut frac = vec![0.0; d];
        for k in 0..d {
            let (i, t) = self.axes[k].locate(coords[k]);
            base[k] = i;
            frac[k] = t;
        }
        // Sum over the 2^d corners of the containing cell.
        let corners = 1usize << d;
        let mut acc = 0.0;
        for corner in 0..corners {
            let mut weight = 1.0;
            let mut flat = 0usize;
            for k in 0..d {
                let high = (corner >> k) & 1 == 1;
                let idx = base[k] + usize::from(high);
                weight *= if high { frac[k] } else { 1.0 - frac[k] };
                flat = flat * self.axes[k].len() + idx;
            }
            if weight != 0.0 {
                acc += weight * self.values[flat];
            }
        }
        Ok(acc)
    }

    /// Evaluates the partial derivative of the interpolant along `axis` at `coords`
    /// using the slope of the containing cell.
    ///
    /// The CSM simulation engine uses these derivatives when running its implicit
    /// (Newton) integrator, where `dI_o/dV_o` acts as a conductance.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if `axis` is out of range or the number
    /// of coordinates differs from the number of axes.
    pub fn eval_partial(&self, coords: &[f64], axis: usize) -> Result<f64, NumError> {
        if axis >= self.axes.len() {
            return Err(NumError::InvalidQuery(format!(
                "axis {axis} out of range for a {}-dimensional table",
                self.axes.len()
            )));
        }
        let pts = self.axes[axis].points();
        let (cell, _) = self.axes[axis].locate(coords[axis]);
        let h = pts[cell + 1] - pts[cell];
        let mut lo = coords.to_vec();
        let mut hi = coords.to_vec();
        lo[axis] = pts[cell];
        hi[axis] = pts[cell + 1];
        let f_lo = self.eval(&lo)?;
        let f_hi = self.eval(&hi)?;
        Ok((f_hi - f_lo) / h)
    }

    /// Applies a function to every stored value, returning a new table with the
    /// same axes (used e.g. to average capacitance tables over several slews).
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> LutNd {
        LutNd {
            axes: self.axes.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two tables sample-by-sample (they must share identical axes).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if the axes differ.
    pub fn zip_with<F: FnMut(f64, f64) -> f64>(
        &self,
        other: &LutNd,
        mut f: F,
    ) -> Result<LutNd, NumError> {
        if self.axes != other.axes {
            return Err(NumError::InvalidQuery(
                "zip_with requires identical axes".into(),
            ));
        }
        Ok(LutNd {
            axes: self.axes.clone(),
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Minimum stored sample value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum stored sample value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl ToJson for LutNd {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "axes".into(),
                JsonValue::Array(self.axes.iter().map(ToJson::to_json).collect()),
            ),
            ("values".into(), JsonValue::from_f64_slice(&self.values)),
        ])
    }
}

impl FromJson for LutNd {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let axes = value
            .require("axes")?
            .as_array()
            .ok_or_else(|| JsonError("lut `axes` must be an array".into()))?
            .iter()
            .map(Axis::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let values = value.require("values")?.to_f64_vec()?;
        LutNd::new(axes, values).map_err(|e| JsonError(format!("invalid lut: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis(n: usize) -> Axis {
        Axis::uniform(0.0, 1.0, n).unwrap()
    }

    #[test]
    fn one_dimensional_table_matches_interp() {
        let lut = LutNd::from_fn(vec![axis(5)], |v| v[0] * v[0]).unwrap();
        // At grid points the value is exact.
        assert!((lut.eval(&[0.5]).unwrap() - 0.25).abs() < 1e-12);
        // Between grid points it is the chord of x^2.
        let v = lut.eval(&[0.375]).unwrap();
        let expected = 0.5 * (0.0625 + 0.25);
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn affine_functions_are_exact_in_4d() {
        let axes = vec![axis(3), axis(4), axis(5), axis(3)];
        let f = |v: &[f64]| 1.0 + 2.0 * v[0] - 3.0 * v[1] + 0.5 * v[2] + 4.0 * v[3];
        let lut = LutNd::from_fn(axes, f).unwrap();
        let q = [0.21, 0.68, 0.43, 0.9];
        assert!((lut.eval(&q).unwrap() - f(&q)).abs() < 1e-12);
    }

    #[test]
    fn clamped_extrapolation_beyond_range() {
        let lut = LutNd::from_fn(vec![axis(3)], |v| v[0]).unwrap();
        assert!((lut.eval(&[-5.0]).unwrap() - 0.0).abs() < 1e-12);
        assert!((lut.eval(&[5.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn at_retrieves_exact_samples() {
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0] + 10.0 * v[1]).unwrap();
        assert!((lut.at(&[1, 2]).unwrap() - (0.5 + 10.0)).abs() < 1e-12);
        assert!(lut.at(&[3, 0]).is_err());
        assert!(lut.at(&[0]).is_err());
    }

    #[test]
    fn eval_rejects_wrong_arity() {
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0]).unwrap();
        assert!(lut.eval(&[0.5]).is_err());
        assert!(lut.eval(&[0.5, 0.5, 0.5]).is_err());
    }

    #[test]
    fn new_validates_value_count() {
        let err = LutNd::new(vec![axis(3), axis(3)], vec![0.0; 8]);
        assert!(matches!(err, Err(NumError::DimensionMismatch { .. })));
    }

    #[test]
    fn non_finite_samples_rejected() {
        let err = LutNd::new(vec![axis(3)], vec![0.0, f64::NAN, 1.0]);
        assert!(matches!(err, Err(NumError::InvalidGrid(_))));
        let err = LutNd::new(vec![axis(3)], vec![0.0, f64::INFINITY, 1.0]);
        assert!(matches!(err, Err(NumError::InvalidGrid(_))));
    }

    #[test]
    fn empty_axes_rejected() {
        assert!(LutNd::new(vec![], vec![]).is_err());
        assert!(LutNd::from_fn(vec![], |_| 0.0).is_err());
    }

    #[test]
    fn partial_derivative_of_affine_function() {
        let axes = vec![axis(4), axis(4)];
        let lut = LutNd::from_fn(axes, |v| 2.0 * v[0] - 7.0 * v[1]).unwrap();
        assert!((lut.eval_partial(&[0.4, 0.6], 0).unwrap() - 2.0).abs() < 1e-10);
        assert!((lut.eval_partial(&[0.4, 0.6], 1).unwrap() + 7.0).abs() < 1e-10);
        assert!(lut.eval_partial(&[0.4, 0.6], 2).is_err());
    }

    #[test]
    fn map_and_zip_with() {
        let a = LutNd::from_fn(vec![axis(3)], |v| v[0]).unwrap();
        let b = a.map(|v| 2.0 * v);
        assert!((b.eval(&[1.0]).unwrap() - 2.0).abs() < 1e-12);
        let c = a.zip_with(&b, |x, y| x + y).unwrap();
        assert!((c.eval(&[1.0]).unwrap() - 3.0).abs() < 1e-12);
        let other_axes = LutNd::from_fn(vec![axis(4)], |v| v[0]).unwrap();
        assert!(a.zip_with(&other_axes, |x, _| x).is_err());
    }

    #[test]
    fn try_from_fn_propagates_errors() {
        let result: Result<Result<LutNd, &str>, NumError> =
            LutNd::try_from_fn(vec![axis(3)], |v| {
                if v[0] > 0.6 {
                    Err("boom")
                } else {
                    Ok(v[0])
                }
            });
        assert_eq!(result.unwrap().unwrap_err(), "boom");
    }

    #[test]
    fn min_max_values() {
        let lut = LutNd::from_fn(vec![axis(5)], |v| v[0] - 0.5).unwrap();
        assert!((lut.min_value() + 0.5).abs() < 1e-12);
        assert!((lut.max_value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0] * v[1]).unwrap();
        let doc = lut.to_json();
        let back = LutNd::from_json(&JsonValue::parse(&doc.to_string_pretty()).unwrap()).unwrap();
        assert_eq!(lut, back);
        // A corrupt document (wrong value count) is rejected.
        let bad = JsonValue::Object(vec![
            ("axes".into(), JsonValue::Array(vec![axis(3).to_json()])),
            ("values".into(), JsonValue::from_f64_slice(&[1.0, 2.0])),
        ]);
        assert!(LutNd::from_json(&bad).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn interpolation_stays_within_sample_bounds() {
        let mut rng = TestRng::new(0x1a2b3c);
        for _ in 0..200 {
            let values: Vec<f64> = (0..16).map(|_| rng.in_range(-10.0, 10.0)).collect();
            let qx = rng.in_range(-0.5, 1.5);
            let qy = rng.in_range(-0.5, 1.5);
            let axes = vec![
                Axis::uniform(0.0, 1.0, 4).unwrap(),
                Axis::uniform(0.0, 1.0, 4).unwrap(),
            ];
            let lut = LutNd::new(axes, values.clone()).unwrap();
            let v = lut.eval(&[qx, qy]).unwrap();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }

    #[test]
    fn grid_points_are_reproduced_exactly() {
        let mut rng = TestRng::new(0x7fe1);
        for _ in 0..200 {
            let values: Vec<f64> = (0..27).map(|_| rng.in_range(-10.0, 10.0)).collect();
            let (ix, iy, iz) = (rng.index(3), rng.index(3), rng.index(3));
            let axes = vec![
                Axis::uniform(0.0, 1.0, 3).unwrap(),
                Axis::uniform(-1.0, 1.0, 3).unwrap(),
                Axis::uniform(0.0, 2.0, 3).unwrap(),
            ];
            let lut = LutNd::new(axes.clone(), values).unwrap();
            let q = [
                axes[0].points()[ix],
                axes[1].points()[iy],
                axes[2].points()[iz],
            ];
            let direct = lut.at(&[ix, iy, iz]).unwrap();
            let interp = lut.eval(&q).unwrap();
            assert!((direct - interp).abs() < 1e-9);
        }
    }
}
