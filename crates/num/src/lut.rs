//! N-dimensional lookup tables with multilinear interpolation.
//!
//! The heart of a current-source model is a set of pre-characterized tables:
//! the paper stores `I_o`, `I_N`, `C_mA`, `C_mB`, `C_o` and `C_N` as
//! **4-dimensional** tables over `(V_A, V_B, V_N, V_o)` and evaluates them by
//! interpolation at simulation time (Section 3.3). [`LutNd`] is that container,
//! generic over the number of axes so the same type also serves the 2-D tables
//! of the single-input-switching model and the 1-D input-capacitance tables.
//!
//! # The allocation-free fast path
//!
//! [`LutNd::eval`] is the *reference* evaluator: it heap-allocates its locate
//! buffers and binary-searches every axis on every call. Table evaluation sits
//! under every explicit/predictor–corrector sub-step of the simulation engine
//! (paper Eqs. (4)–(5)), so hot code uses the allocation-free family instead,
//! all of which are **bit-identical** to `eval` (same containing cells, same
//! corner order, same arithmetic):
//!
//! * [`LutNd::eval_with_cursor`] — the cursor fast path (below), what the
//!   simulation engine's per-run scratch rides on;
//! * [`LutNd::eval_fixed`] — fixed-arity, stack-only evaluation with
//!   precomputed axis strides; the typed voltage tables in `mcsm-core`
//!   evaluate through it. [`LutNd::eval1`] … [`LutNd::eval4`] are arity-named
//!   conveniences over it;
//! * [`LutNd::eval_into`] — generic arity with small fixed buffers, for
//!   callers whose dimensionality is only known at run time.
//!
//! # Lookup cursors and the coherence assumption
//!
//! A [`LutCursor`] remembers the last containing cell per axis. Consecutive
//! simulation sub-steps move node voltages by at most a fraction of a grid
//! cell, so the next query almost always lands in the **same or an adjacent
//! cell**: the cursor re-locates by a bounded neighbor walk (O(1) amortized)
//! and only falls back to a full locate — analytic for uniform axes, binary
//! search otherwise — when the query jumps more than two cells at once (e.g.
//! a fresh transition re-starting from a rail, or one cursor shared between
//! unrelated query streams). The fallback is the only cost of a cold or
//! wrongly-hinted cursor; results never depend on the hint.

use crate::error::NumError;
use crate::grid::Axis;
use crate::json::{FromJson, JsonError, JsonValue, ToJson};

/// Largest dimensionality served by the stack-only fast paths; higher-arity
/// tables transparently fall back to the allocating reference evaluator.
pub const MAX_FAST_DIMS: usize = 8;

/// A per-table lookup cursor: the last containing cell on every axis.
///
/// Feed it to [`LutNd::eval_with_cursor`] to make repeated, temporally
/// coherent queries O(1) amortized instead of O(log n) per axis. A cursor
/// holds no reference to its table — it is a plain hint, cheap to create and
/// `Copy` — and a stale or wrong hint only costs a fallback locate, never a
/// wrong result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LutCursor {
    cells: [usize; MAX_FAST_DIMS],
}

impl LutCursor {
    /// A cold cursor (hints at the first cell of every axis).
    pub fn new() -> Self {
        LutCursor::default()
    }
}

/// An N-dimensional lookup table evaluated by multilinear interpolation.
///
/// Data is stored in row-major order over the axes: the index of the sample at
/// grid coordinates `(i_0, i_1, …, i_{d-1})` is
/// `((i_0 * n_1 + i_1) * n_2 + i_2) * … + i_{d-1}`.
///
/// Queries outside the grid range are clamped to the boundary (flat
/// extrapolation), which is the conservative behaviour expected from
/// characterized device tables: beyond the characterized voltage range the
/// table holds its boundary value rather than extrapolating a slope that was
/// never measured.
///
/// # Example
///
/// ```
/// use mcsm_num::{grid::Axis, lut::LutNd};
///
/// # fn main() -> Result<(), mcsm_num::NumError> {
/// let axes = vec![
///     Axis::uniform(0.0, 1.0, 5)?,
///     Axis::uniform(0.0, 2.0, 5)?,
/// ];
/// // f(x, y) = 3 x - y is affine, so multilinear interpolation is exact.
/// let lut = LutNd::from_fn(axes, |v| 3.0 * v[0] - v[1])?;
/// assert!((lut.eval(&[0.3, 1.1])? - (0.9 - 1.1)).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LutNd {
    axes: Vec<Axis>,
    values: Vec<f64>,
    /// Row-major strides per axis, precomputed at construction for the
    /// allocation-free evaluators (`strides[k]` = product of the axis lengths
    /// after `k`). Deterministic from `axes`, so derived equality is unaffected.
    strides: Vec<usize>,
}

fn compute_strides(axes: &[Axis]) -> Vec<usize> {
    let mut strides = vec![1usize; axes.len()];
    for k in (0..axes.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * axes[k + 1].len();
    }
    strides
}

fn nan_query_error(axis: usize) -> NumError {
    NumError::InvalidQuery(format!("lut query coordinate for axis {axis} is NaN"))
}

impl LutNd {
    /// Wraps already-validated parts, computing the cached strides.
    fn from_parts(axes: Vec<Axis>, values: Vec<f64>) -> Self {
        let strides = compute_strides(&axes);
        LutNd {
            axes,
            values,
            strides,
        }
    }

    fn check_arity(&self, got: usize) -> Result<(), NumError> {
        if got != self.axes.len() {
            return Err(NumError::InvalidQuery(format!(
                "expected {} coordinates, got {got}",
                self.axes.len()
            )));
        }
        Ok(())
    }

    /// Sum over the `2^d` corners of the located cell, `base`/`frac` holding
    /// the containing cell and in-cell offset per axis. Same corner order,
    /// weight-product order and skip rule as the reference [`LutNd::eval`]
    /// loop, so every caller is bit-identical to it.
    fn corner_sum(&self, base: &[usize], frac: &[f64]) -> f64 {
        let d = base.len();
        let corners = 1usize << d;
        let mut acc = 0.0;
        for corner in 0..corners {
            let mut weight = 1.0;
            let mut flat = 0usize;
            for k in 0..d {
                let high = (corner >> k) & 1 == 1;
                weight *= if high { frac[k] } else { 1.0 - frac[k] };
                flat += (base[k] + usize::from(high)) * self.strides[k];
            }
            if weight != 0.0 {
                acc += weight * self.values[flat];
            }
        }
        acc
    }

    /// [`LutNd::corner_sum`] specialized on a compile-time dimensionality so
    /// the corner loop fully unrolls with stack-array indexing (no slice
    /// bounds checks in the inner loop). Bit-identical to the generic loop:
    /// the per-axis weight factors are the same values (`1 - t` computed once
    /// instead of per corner), multiplied in the same ascending-axis order,
    /// and the corners accumulate in the same order under the same skip rule.
    fn corner_sum_fixed<const D: usize>(&self, base: &[usize; D], frac: &[f64; D]) -> f64 {
        let mut strides = [0usize; D];
        strides.copy_from_slice(&self.strides);
        let mut w = [[0.0f64; 2]; D];
        for k in 0..D {
            w[k] = [1.0 - frac[k], frac[k]];
        }
        let corners = 1usize << D;
        let mut acc = 0.0;
        for corner in 0..corners {
            let mut weight = 1.0;
            let mut flat = 0usize;
            for k in 0..D {
                let high = (corner >> k) & 1;
                weight *= w[k][high];
                flat += (base[k] + high) * strides[k];
            }
            if weight != 0.0 {
                acc += weight * self.values[flat];
            }
        }
        acc
    }

    /// Cursor-hinted locate plus specialized corner sum for a compile-time
    /// dimensionality — the monomorphized core behind [`LutNd::eval_with_cursor`].
    fn eval_hinted_fixed<const D: usize>(
        &self,
        cursor: &mut LutCursor,
        coords: &[f64],
    ) -> Result<f64, NumError> {
        let mut base = [0usize; D];
        let mut frac = [0.0; D];
        for k in 0..D {
            let (i, t) = self.axes[k]
                .try_locate_hinted(coords[k], cursor.cells[k])
                .map_err(|_| nan_query_error(k))?;
            cursor.cells[k] = i;
            base[k] = i;
            frac[k] = t;
        }
        Ok(self.corner_sum_fixed(&base, &frac))
    }
    /// Creates a table from axes and a flat row-major value vector.
    ///
    /// # Errors
    ///
    /// * [`NumError::InvalidGrid`] if no axes are given.
    /// * [`NumError::DimensionMismatch`] if `values.len()` does not equal the
    ///   product of axis lengths.
    pub fn new(axes: Vec<Axis>, values: Vec<f64>) -> Result<Self, NumError> {
        if axes.is_empty() {
            return Err(NumError::InvalidGrid("lut needs at least one axis".into()));
        }
        let expected: usize = axes.iter().map(Axis::len).product();
        if values.len() != expected {
            return Err(NumError::DimensionMismatch {
                got: values.len(),
                expected,
                context: "LutNd::new values length",
            });
        }
        if let Some(bad) = values.iter().position(|v| !v.is_finite()) {
            return Err(NumError::InvalidGrid(format!(
                "lut sample {bad} is not finite ({})",
                values[bad]
            )));
        }
        Ok(LutNd::from_parts(axes, values))
    }

    /// Creates a table by evaluating `f` at every grid point.
    ///
    /// The closure receives the coordinates of the grid point, one per axis.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidGrid`] if no axes are given.
    pub fn from_fn<F>(axes: Vec<Axis>, mut f: F) -> Result<Self, NumError>
    where
        F: FnMut(&[f64]) -> f64,
    {
        if axes.is_empty() {
            return Err(NumError::InvalidGrid("lut needs at least one axis".into()));
        }
        let total: usize = axes.iter().map(Axis::len).product();
        let dims: Vec<usize> = axes.iter().map(Axis::len).collect();
        let mut values = Vec::with_capacity(total);
        let mut coord = vec![0.0; axes.len()];
        let mut idx = vec![0usize; axes.len()];
        for flat in 0..total {
            // Decode the flat index into per-axis indices (row-major).
            let mut rem = flat;
            for d in (0..dims.len()).rev() {
                idx[d] = rem % dims[d];
                rem /= dims[d];
            }
            for d in 0..dims.len() {
                coord[d] = axes[d].points()[idx[d]];
            }
            values.push(f(&coord));
        }
        LutNd::new(axes, values)
    }

    /// Creates a fallible variant of [`LutNd::from_fn`], aborting on the first error.
    ///
    /// This is used by characterization, where each grid point requires a SPICE
    /// analysis that can fail.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by `f`, or [`NumError::InvalidGrid`]
    /// if no axes are given.
    pub fn try_from_fn<F, E>(axes: Vec<Axis>, mut f: F) -> Result<Result<Self, E>, NumError>
    where
        F: FnMut(&[f64]) -> Result<f64, E>,
    {
        if axes.is_empty() {
            return Err(NumError::InvalidGrid("lut needs at least one axis".into()));
        }
        let total: usize = axes.iter().map(Axis::len).product();
        let dims: Vec<usize> = axes.iter().map(Axis::len).collect();
        let mut values = Vec::with_capacity(total);
        let mut coord = vec![0.0; axes.len()];
        let mut idx = vec![0usize; axes.len()];
        for flat in 0..total {
            let mut rem = flat;
            for d in (0..dims.len()).rev() {
                idx[d] = rem % dims[d];
                rem /= dims[d];
            }
            for d in 0..dims.len() {
                coord[d] = axes[d].points()[idx[d]];
            }
            match f(&coord) {
                Ok(v) => values.push(v),
                Err(e) => return Ok(Err(e)),
            }
        }
        Ok(Ok(LutNd::new(axes, values)?))
    }

    /// Number of dimensions (axes).
    pub fn dimensions(&self) -> usize {
        self.axes.len()
    }

    /// The sampling axes.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The raw sample values in row-major order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total number of stored samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds no samples (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the stored sample at the given per-axis indices.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if the number of indices is wrong or
    /// any index is out of bounds.
    pub fn at(&self, indices: &[usize]) -> Result<f64, NumError> {
        if indices.len() != self.axes.len() {
            return Err(NumError::InvalidQuery(format!(
                "expected {} indices, got {}",
                self.axes.len(),
                indices.len()
            )));
        }
        let mut flat = 0usize;
        for (d, (&i, axis)) in indices.iter().zip(&self.axes).enumerate() {
            if i >= axis.len() {
                return Err(NumError::InvalidQuery(format!(
                    "index {i} out of bounds for axis {d} of length {}",
                    axis.len()
                )));
            }
            flat = flat * axis.len() + i;
        }
        Ok(self.values[flat])
    }

    /// Evaluates the table at `coords` by multilinear interpolation.
    ///
    /// This is the **reference path**: it allocates its locate buffers and
    /// binary-searches every axis on every call. Hot loops should prefer the
    /// bit-identical allocation-free family ([`LutNd::eval1`]…[`LutNd::eval4`],
    /// [`LutNd::eval_into`], [`LutNd::eval_with_cursor`]); this entry point is
    /// retained as the cold-path evaluator and as the baseline the `sim_hotpath`
    /// benchmark gates the fast paths against.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if the number of coordinates differs
    /// from the number of axes or any coordinate is NaN.
    pub fn eval(&self, coords: &[f64]) -> Result<f64, NumError> {
        self.check_arity(coords.len())?;
        let d = self.axes.len();
        // Locate every coordinate on its axis.
        let mut base = vec![0usize; d];
        let mut frac = vec![0.0; d];
        for k in 0..d {
            if coords[k].is_nan() {
                return Err(nan_query_error(k));
            }
            let (i, t) = self.axes[k].locate(coords[k]);
            base[k] = i;
            frac[k] = t;
        }
        // Sum over the 2^d corners of the containing cell.
        let corners = 1usize << d;
        let mut acc = 0.0;
        for corner in 0..corners {
            let mut weight = 1.0;
            let mut flat = 0usize;
            for k in 0..d {
                let high = (corner >> k) & 1 == 1;
                let idx = base[k] + usize::from(high);
                weight *= if high { frac[k] } else { 1.0 - frac[k] };
                flat = flat * self.axes[k].len() + idx;
            }
            if weight != 0.0 {
                acc += weight * self.values[flat];
            }
        }
        Ok(acc)
    }

    /// Fixed-arity, stack-only evaluation — bit-identical to [`LutNd::eval`]
    /// with zero heap allocations (the arity is a compile-time constant, so the
    /// locate buffers live on the stack).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if `D` differs from the table
    /// dimensionality or any coordinate is NaN.
    pub fn eval_fixed<const D: usize>(&self, coords: &[f64; D]) -> Result<f64, NumError> {
        self.check_arity(D)?;
        let mut base = [0usize; D];
        let mut frac = [0.0; D];
        for k in 0..D {
            let (i, t) = self.axes[k]
                .try_locate(coords[k])
                .map_err(|_| nan_query_error(k))?;
            base[k] = i;
            frac[k] = t;
        }
        Ok(self.corner_sum_fixed(&base, &frac))
    }

    /// Stack-only evaluation of a 1-D table (see [`LutNd::eval_fixed`]).
    ///
    /// # Errors
    ///
    /// As for [`LutNd::eval_fixed`].
    pub fn eval1(&self, x: f64) -> Result<f64, NumError> {
        self.eval_fixed(&[x])
    }

    /// Stack-only evaluation of a 2-D table (see [`LutNd::eval_fixed`]).
    ///
    /// # Errors
    ///
    /// As for [`LutNd::eval_fixed`].
    pub fn eval2(&self, x: f64, y: f64) -> Result<f64, NumError> {
        self.eval_fixed(&[x, y])
    }

    /// Stack-only evaluation of a 3-D table (see [`LutNd::eval_fixed`]).
    ///
    /// # Errors
    ///
    /// As for [`LutNd::eval_fixed`].
    pub fn eval3(&self, x: f64, y: f64, z: f64) -> Result<f64, NumError> {
        self.eval_fixed(&[x, y, z])
    }

    /// Stack-only evaluation of a 4-D table — the paper's
    /// `(V_A, V_B, V_N, V_o)` shape (see [`LutNd::eval_fixed`]).
    ///
    /// # Errors
    ///
    /// As for [`LutNd::eval_fixed`].
    pub fn eval4(&self, x: f64, y: f64, z: f64, w: f64) -> Result<f64, NumError> {
        self.eval_fixed(&[x, y, z, w])
    }

    /// Generic-arity, allocation-free evaluation into `out` using small fixed
    /// buffers and the precomputed strides; bit-identical to [`LutNd::eval`].
    /// Tables wider than [`MAX_FAST_DIMS`] fall back to the allocating path.
    ///
    /// # Errors
    ///
    /// As for [`LutNd::eval`].
    pub fn eval_into(&self, coords: &[f64], out: &mut f64) -> Result<(), NumError> {
        self.check_arity(coords.len())?;
        let d = coords.len();
        // Common arities dispatch to the fully unrolled fixed-arity path.
        match d {
            1 => *out = self.eval_fixed::<1>(coords.try_into().expect("arity checked"))?,
            2 => *out = self.eval_fixed::<2>(coords.try_into().expect("arity checked"))?,
            3 => *out = self.eval_fixed::<3>(coords.try_into().expect("arity checked"))?,
            4 => *out = self.eval_fixed::<4>(coords.try_into().expect("arity checked"))?,
            d if d <= MAX_FAST_DIMS => {
                let mut base = [0usize; MAX_FAST_DIMS];
                let mut frac = [0.0; MAX_FAST_DIMS];
                for k in 0..d {
                    let (i, t) = self.axes[k]
                        .try_locate(coords[k])
                        .map_err(|_| nan_query_error(k))?;
                    base[k] = i;
                    frac[k] = t;
                }
                *out = self.corner_sum(&base[..d], &frac[..d]);
            }
            _ => *out = self.eval(coords)?,
        }
        Ok(())
    }

    /// Cursor-accelerated evaluation: re-locates each axis from the cursor's
    /// remembered cell by a bounded neighbor walk (O(1) amortized on
    /// temporally coherent query streams) and updates the cursor. Bit-identical
    /// to [`LutNd::eval`] for every query — the cursor only changes how fast
    /// the containing cell is found, never which cell it is. Tables wider than
    /// [`MAX_FAST_DIMS`] fall back to the allocating path (cursor unused).
    ///
    /// # Errors
    ///
    /// As for [`LutNd::eval`].
    pub fn eval_with_cursor(
        &self,
        cursor: &mut LutCursor,
        coords: &[f64],
    ) -> Result<f64, NumError> {
        self.check_arity(coords.len())?;
        // The table shapes in this workspace (1-D input caps through the 4-D
        // MCSM components) dispatch to fully unrolled monomorphizations.
        match coords.len() {
            1 => self.eval_hinted_fixed::<1>(cursor, coords),
            2 => self.eval_hinted_fixed::<2>(cursor, coords),
            3 => self.eval_hinted_fixed::<3>(cursor, coords),
            4 => self.eval_hinted_fixed::<4>(cursor, coords),
            d if d <= MAX_FAST_DIMS => {
                let mut base = [0usize; MAX_FAST_DIMS];
                let mut frac = [0.0; MAX_FAST_DIMS];
                for k in 0..d {
                    let (i, t) = self.axes[k]
                        .try_locate_hinted(coords[k], cursor.cells[k])
                        .map_err(|_| nan_query_error(k))?;
                    cursor.cells[k] = i;
                    base[k] = i;
                    frac[k] = t;
                }
                Ok(self.corner_sum(&base[..d], &frac[..d]))
            }
            _ => self.eval(coords),
        }
    }

    /// Evaluates the partial derivative of the interpolant along `axis` at `coords`
    /// using the slope of the containing cell.
    ///
    /// The CSM simulation engine uses these derivatives when running its implicit
    /// (Newton) integrator, where `dI_o/dV_o` acts as a conductance.
    ///
    /// Computed analytically from the located cell's corner values — one locate
    /// per axis, zero allocations — and bit-identical to the historical
    /// formulation that evaluated the full table twice at the cell's `axis`
    /// endpoints (the endpoint evaluations reduce to the same corner sums with
    /// an exact weight factor of one).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if `axis` is out of range, the number
    /// of coordinates differs from the number of axes, or any coordinate is NaN.
    pub fn eval_partial(&self, coords: &[f64], axis: usize) -> Result<f64, NumError> {
        if axis >= self.axes.len() {
            return Err(NumError::InvalidQuery(format!(
                "axis {axis} out of range for a {}-dimensional table",
                self.axes.len()
            )));
        }
        self.check_arity(coords.len())?;
        let d = coords.len();
        if d > MAX_FAST_DIMS {
            // Allocating fallback: the historical two-eval formulation.
            let pts = self.axes[axis].points();
            let (cell, _) = self.axes[axis]
                .try_locate(coords[axis])
                .map_err(|_| nan_query_error(axis))?;
            let h = pts[cell + 1] - pts[cell];
            let mut lo = coords.to_vec();
            let mut hi = coords.to_vec();
            lo[axis] = pts[cell];
            hi[axis] = pts[cell + 1];
            let f_lo = self.eval(&lo)?;
            let f_hi = self.eval(&hi)?;
            return Ok((f_hi - f_lo) / h);
        }
        let mut base = [0usize; MAX_FAST_DIMS];
        let mut frac = [0.0; MAX_FAST_DIMS];
        for k in 0..d {
            let (i, t) = self.axes[k]
                .try_locate(coords[k])
                .map_err(|_| nan_query_error(k))?;
            base[k] = i;
            frac[k] = t;
        }
        let pts = self.axes[axis].points();
        let cell = base[axis];
        let h = pts[cell + 1] - pts[cell];
        // The slope of the cell's interpolant: the difference of the corner
        // sums on the cell's two `axis` faces over the cell width.
        frac[axis] = 0.0;
        let f_lo = self.corner_sum(&base[..d], &frac[..d]);
        frac[axis] = 1.0;
        let f_hi = self.corner_sum(&base[..d], &frac[..d]);
        Ok((f_hi - f_lo) / h)
    }

    /// Applies a function to every stored value, returning a new table with the
    /// same axes (used e.g. to average capacitance tables over several slews).
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> LutNd {
        LutNd::from_parts(
            self.axes.clone(),
            self.values.iter().map(|&v| f(v)).collect(),
        )
    }

    /// Combines two tables sample-by-sample (they must share identical axes).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if the axes differ.
    pub fn zip_with<F: FnMut(f64, f64) -> f64>(
        &self,
        other: &LutNd,
        mut f: F,
    ) -> Result<LutNd, NumError> {
        if self.axes != other.axes {
            return Err(NumError::InvalidQuery(
                "zip_with requires identical axes".into(),
            ));
        }
        Ok(LutNd::from_parts(
            self.axes.clone(),
            self.values
                .iter()
                .zip(&other.values)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        ))
    }

    /// Minimum stored sample value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum stored sample value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl ToJson for LutNd {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "axes".into(),
                JsonValue::Array(self.axes.iter().map(ToJson::to_json).collect()),
            ),
            ("values".into(), JsonValue::from_f64_slice(&self.values)),
        ])
    }
}

impl FromJson for LutNd {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let axes = value
            .require("axes")?
            .as_array()
            .ok_or_else(|| JsonError("lut `axes` must be an array".into()))?
            .iter()
            .map(Axis::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let values = value.require("values")?.to_f64_vec()?;
        LutNd::new(axes, values).map_err(|e| JsonError(format!("invalid lut: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis(n: usize) -> Axis {
        Axis::uniform(0.0, 1.0, n).unwrap()
    }

    #[test]
    fn one_dimensional_table_matches_interp() {
        let lut = LutNd::from_fn(vec![axis(5)], |v| v[0] * v[0]).unwrap();
        // At grid points the value is exact.
        assert!((lut.eval(&[0.5]).unwrap() - 0.25).abs() < 1e-12);
        // Between grid points it is the chord of x^2.
        let v = lut.eval(&[0.375]).unwrap();
        let expected = 0.5 * (0.0625 + 0.25);
        assert!((v - expected).abs() < 1e-12);
    }

    #[test]
    fn affine_functions_are_exact_in_4d() {
        let axes = vec![axis(3), axis(4), axis(5), axis(3)];
        let f = |v: &[f64]| 1.0 + 2.0 * v[0] - 3.0 * v[1] + 0.5 * v[2] + 4.0 * v[3];
        let lut = LutNd::from_fn(axes, f).unwrap();
        let q = [0.21, 0.68, 0.43, 0.9];
        assert!((lut.eval(&q).unwrap() - f(&q)).abs() < 1e-12);
    }

    #[test]
    fn clamped_extrapolation_beyond_range() {
        let lut = LutNd::from_fn(vec![axis(3)], |v| v[0]).unwrap();
        assert!((lut.eval(&[-5.0]).unwrap() - 0.0).abs() < 1e-12);
        assert!((lut.eval(&[5.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn at_retrieves_exact_samples() {
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0] + 10.0 * v[1]).unwrap();
        assert!((lut.at(&[1, 2]).unwrap() - (0.5 + 10.0)).abs() < 1e-12);
        assert!(lut.at(&[3, 0]).is_err());
        assert!(lut.at(&[0]).is_err());
    }

    #[test]
    fn eval_rejects_wrong_arity() {
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0]).unwrap();
        assert!(lut.eval(&[0.5]).is_err());
        assert!(lut.eval(&[0.5, 0.5, 0.5]).is_err());
    }

    #[test]
    fn new_validates_value_count() {
        let err = LutNd::new(vec![axis(3), axis(3)], vec![0.0; 8]);
        assert!(matches!(err, Err(NumError::DimensionMismatch { .. })));
    }

    #[test]
    fn non_finite_samples_rejected() {
        let err = LutNd::new(vec![axis(3)], vec![0.0, f64::NAN, 1.0]);
        assert!(matches!(err, Err(NumError::InvalidGrid(_))));
        let err = LutNd::new(vec![axis(3)], vec![0.0, f64::INFINITY, 1.0]);
        assert!(matches!(err, Err(NumError::InvalidGrid(_))));
    }

    #[test]
    fn empty_axes_rejected() {
        assert!(LutNd::new(vec![], vec![]).is_err());
        assert!(LutNd::from_fn(vec![], |_| 0.0).is_err());
    }

    #[test]
    fn partial_derivative_of_affine_function() {
        let axes = vec![axis(4), axis(4)];
        let lut = LutNd::from_fn(axes, |v| 2.0 * v[0] - 7.0 * v[1]).unwrap();
        assert!((lut.eval_partial(&[0.4, 0.6], 0).unwrap() - 2.0).abs() < 1e-10);
        assert!((lut.eval_partial(&[0.4, 0.6], 1).unwrap() + 7.0).abs() < 1e-10);
        assert!(lut.eval_partial(&[0.4, 0.6], 2).is_err());
        assert!(lut.eval_partial(&[0.4], 0).is_err());
    }

    #[test]
    fn nan_queries_are_rejected_with_a_descriptive_error() {
        // Regression for the NaN-unsafe locate fallback: every evaluator must
        // report the NaN instead of silently interpolating in cell 0.
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0] + v[1]).unwrap();
        let is_nan_err = |r: Result<f64, NumError>| matches!(r, Err(NumError::InvalidQuery(msg)) if msg.contains("NaN"));
        assert!(is_nan_err(lut.eval(&[0.5, f64::NAN])));
        assert!(is_nan_err(lut.eval2(f64::NAN, 0.5)));
        assert!(is_nan_err(lut.eval_fixed(&[0.5, f64::NAN])));
        assert!(is_nan_err(
            lut.eval_with_cursor(&mut LutCursor::new(), &[f64::NAN, 0.5])
        ));
        assert!(is_nan_err(lut.eval_partial(&[f64::NAN, 0.5], 0)));
        let mut out = 0.0;
        assert!(matches!(
            lut.eval_into(&[0.5, f64::NAN], &mut out),
            Err(NumError::InvalidQuery(msg)) if msg.contains("NaN")
        ));
    }

    #[test]
    fn fast_paths_reject_wrong_arity_like_eval() {
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0]).unwrap();
        assert!(lut.eval1(0.5).is_err());
        assert!(lut.eval3(0.5, 0.5, 0.5).is_err());
        assert!(lut.eval4(0.5, 0.5, 0.5, 0.5).is_err());
        let mut out = 0.0;
        assert!(lut.eval_into(&[0.5], &mut out).is_err());
        assert!(lut
            .eval_with_cursor(&mut LutCursor::new(), &[0.5, 0.5, 0.5])
            .is_err());
    }

    #[test]
    fn map_and_zip_with() {
        let a = LutNd::from_fn(vec![axis(3)], |v| v[0]).unwrap();
        let b = a.map(|v| 2.0 * v);
        assert!((b.eval(&[1.0]).unwrap() - 2.0).abs() < 1e-12);
        let c = a.zip_with(&b, |x, y| x + y).unwrap();
        assert!((c.eval(&[1.0]).unwrap() - 3.0).abs() < 1e-12);
        let other_axes = LutNd::from_fn(vec![axis(4)], |v| v[0]).unwrap();
        assert!(a.zip_with(&other_axes, |x, _| x).is_err());
    }

    #[test]
    fn try_from_fn_propagates_errors() {
        let result: Result<Result<LutNd, &str>, NumError> =
            LutNd::try_from_fn(vec![axis(3)], |v| {
                if v[0] > 0.6 {
                    Err("boom")
                } else {
                    Ok(v[0])
                }
            });
        assert_eq!(result.unwrap().unwrap_err(), "boom");
    }

    #[test]
    fn min_max_values() {
        let lut = LutNd::from_fn(vec![axis(5)], |v| v[0] - 0.5).unwrap();
        assert!((lut.min_value() + 0.5).abs() < 1e-12);
        assert!((lut.max_value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let lut = LutNd::from_fn(vec![axis(3), axis(3)], |v| v[0] * v[1]).unwrap();
        let doc = lut.to_json();
        let back = LutNd::from_json(&JsonValue::parse(&doc.to_string_pretty()).unwrap()).unwrap();
        assert_eq!(lut, back);
        // A corrupt document (wrong value count) is rejected.
        let bad = JsonValue::Object(vec![
            ("axes".into(), JsonValue::Array(vec![axis(3).to_json()])),
            ("values".into(), JsonValue::from_f64_slice(&[1.0, 2.0])),
        ]);
        assert!(LutNd::from_json(&bad).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn interpolation_stays_within_sample_bounds() {
        let mut rng = TestRng::new(0x1a2b3c);
        for _ in 0..200 {
            let values: Vec<f64> = (0..16).map(|_| rng.in_range(-10.0, 10.0)).collect();
            let qx = rng.in_range(-0.5, 1.5);
            let qy = rng.in_range(-0.5, 1.5);
            let axes = vec![
                Axis::uniform(0.0, 1.0, 4).unwrap(),
                Axis::uniform(0.0, 1.0, 4).unwrap(),
            ];
            let lut = LutNd::new(axes, values.clone()).unwrap();
            let v = lut.eval(&[qx, qy]).unwrap();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }

    /// Builds a random table of `dims` axes: uniform or explicitly non-uniform
    /// (random strictly increasing points), random lengths, random samples.
    fn random_table(rng: &mut TestRng, dims: usize) -> LutNd {
        let axes: Vec<Axis> = (0..dims)
            .map(|_| {
                let count = 2 + rng.index(5);
                if rng.index(2) == 0 {
                    let start = rng.in_range(-2.0, 0.0);
                    Axis::uniform(start, start + rng.in_range(0.5, 3.0), count).unwrap()
                } else {
                    let mut p = rng.in_range(-2.0, 0.0);
                    let points = (0..count)
                        .map(|_| {
                            p += rng.in_range(0.05, 1.0);
                            p
                        })
                        .collect();
                    Axis::new(points).unwrap()
                }
            })
            .collect();
        let total: usize = axes.iter().map(Axis::len).product();
        let values: Vec<f64> = (0..total).map(|_| rng.in_range(-10.0, 10.0)).collect();
        LutNd::new(axes, values).unwrap()
    }

    /// One query per axis, randomly interior, at-a-grid-point, or out of range.
    fn random_query(rng: &mut TestRng, lut: &LutNd) -> Vec<f64> {
        lut.axes()
            .iter()
            .map(|axis| match rng.index(4) {
                0 => axis.points()[rng.index(axis.len())],
                1 => axis.min() - rng.in_range(0.0, 1.0),
                2 => axis.max() + rng.in_range(0.0, 1.0),
                _ => rng.in_range(axis.min(), axis.max()),
            })
            .collect()
    }

    fn assert_all_paths_match(lut: &LutNd, cursor: &mut LutCursor, q: &[f64]) {
        let reference = lut.eval(q).unwrap();
        let fixed = match q.len() {
            1 => lut.eval1(q[0]),
            2 => lut.eval2(q[0], q[1]),
            3 => lut.eval3(q[0], q[1], q[2]),
            4 => lut.eval4(q[0], q[1], q[2], q[3]),
            _ => unreachable!("random tables are 1-4 dimensional"),
        }
        .unwrap();
        let mut into = 0.0;
        lut.eval_into(q, &mut into).unwrap();
        let cursored = lut.eval_with_cursor(cursor, q).unwrap();
        assert_eq!(reference.to_bits(), fixed.to_bits(), "eval1-4 at {q:?}");
        assert_eq!(reference.to_bits(), into.to_bits(), "eval_into at {q:?}");
        assert_eq!(reference.to_bits(), cursored.to_bits(), "cursor at {q:?}");
    }

    #[test]
    fn all_fast_paths_are_bit_identical_to_eval_on_random_sequences() {
        // The satellite property test: `eval` == `eval1/2/3(/4)` == `eval_into`
        // == cursor-based eval, bit for bit, over random tables and random
        // query sequences including axis edges and out-of-range coordinates.
        // The cursor persists across the whole sequence, so stale hints from
        // arbitrary jumps are exercised too.
        let mut rng = TestRng::new(0xFA57);
        for _ in 0..60 {
            let dims = 1 + rng.index(4);
            let lut = random_table(&mut rng, dims);
            let mut cursor = LutCursor::new();
            for _ in 0..40 {
                let q = random_query(&mut rng, &lut);
                assert_all_paths_match(&lut, &mut cursor, &q);
            }
        }
    }

    #[test]
    fn all_fast_paths_are_bit_identical_to_eval_on_monotone_sweeps() {
        // Monotone ramps are the coherent access pattern the cursor is built
        // for: every step lands in the same or an adjacent cell.
        let mut rng = TestRng::new(0x510);
        for _ in 0..30 {
            let dims = 1 + rng.index(4);
            let lut = random_table(&mut rng, dims);
            let mut cursor = LutCursor::new();
            let spans: Vec<(f64, f64)> = lut
                .axes()
                .iter()
                .map(|a| {
                    let lo = a.min() - 0.2;
                    (lo, a.max() + 0.2 - lo)
                })
                .collect();
            let steps = 64;
            for s in 0..=steps {
                let f = s as f64 / steps as f64;
                let rising: Vec<f64> = spans.iter().map(|&(lo, w)| lo + w * f).collect();
                assert_all_paths_match(&lut, &mut cursor, &rising);
            }
            for s in (0..=steps).rev() {
                let f = s as f64 / steps as f64;
                let falling: Vec<f64> = spans.iter().map(|&(lo, w)| lo + w * f).collect();
                assert_all_paths_match(&lut, &mut cursor, &falling);
            }
        }
    }

    #[test]
    fn analytic_eval_partial_matches_the_two_eval_formula_exactly() {
        // Pin the analytic derivative against the historical formulation:
        // evaluate the full table at the containing cell's two endpoints along
        // the requested axis. The corner sums reduce to the same terms, so the
        // match is to the bit.
        let mut rng = TestRng::new(0x9A27);
        for _ in 0..60 {
            let dims = 1 + rng.index(4);
            let lut = random_table(&mut rng, dims);
            for _ in 0..20 {
                let q = random_query(&mut rng, &lut);
                let axis = rng.index(dims);
                let analytic = lut.eval_partial(&q, axis).unwrap();
                let pts = lut.axes()[axis].points();
                let (cell, _) = lut.axes()[axis].locate(q[axis]);
                let h = pts[cell + 1] - pts[cell];
                let mut lo = q.clone();
                let mut hi = q.clone();
                lo[axis] = pts[cell];
                hi[axis] = pts[cell + 1];
                let two_eval = (lut.eval(&hi).unwrap() - lut.eval(&lo).unwrap()) / h;
                assert_eq!(
                    analytic.to_bits(),
                    two_eval.to_bits(),
                    "axis {axis} at {q:?}"
                );
            }
        }
    }

    #[test]
    fn grid_points_are_reproduced_exactly() {
        let mut rng = TestRng::new(0x7fe1);
        for _ in 0..200 {
            let values: Vec<f64> = (0..27).map(|_| rng.in_range(-10.0, 10.0)).collect();
            let (ix, iy, iz) = (rng.index(3), rng.index(3), rng.index(3));
            let axes = vec![
                Axis::uniform(0.0, 1.0, 3).unwrap(),
                Axis::uniform(-1.0, 1.0, 3).unwrap(),
                Axis::uniform(0.0, 2.0, 3).unwrap(),
            ];
            let lut = LutNd::new(axes.clone(), values).unwrap();
            let q = [
                axes[0].points()[ix],
                axes[1].points()[iy],
                axes[2].points()[iz],
            ];
            let direct = lut.at(&[ix, iy, iz]).unwrap();
            let interp = lut.eval(&q).unwrap();
            assert!((direct - interp).abs() < 1e-9);
        }
    }
}
