//! Sampling axes for lookup tables and characterization sweeps.
//!
//! An [`Axis`] is a strictly increasing list of sample points along one voltage
//! dimension. The paper characterizes its tables on voltages swept from
//! `-Δv` to `Vdd + Δv` (Section 3.3); [`Axis::uniform`] with a margin is the
//! direct counterpart.

use crate::error::NumError;
use crate::json::{FromJson, JsonError, JsonValue, ToJson};

/// A strictly increasing 1-D sampling axis.
///
/// # Example
///
/// ```
/// use mcsm_num::grid::Axis;
///
/// # fn main() -> Result<(), mcsm_num::NumError> {
/// let axis = Axis::uniform(0.0, 1.2, 7)?;
/// assert_eq!(axis.len(), 7);
/// assert_eq!(axis.points()[0], 0.0);
/// assert!((axis.points()[6] - 1.2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    points: Vec<f64>,
    /// Cached spacing when the axis is (numerically) uniform, detected once at
    /// construction. Enables the O(1) analytic cell locate used by the lookup
    /// fast paths; `None` falls back to binary search. Deterministic from
    /// `points`, so derived equality and JSON round-trips stay consistent.
    uniform_step: Option<f64>,
}

impl Axis {
    /// Creates an axis from explicit sample points.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidGrid`] if fewer than two points are provided,
    /// any point is not finite, or the points are not strictly increasing.
    pub fn new(points: Vec<f64>) -> Result<Self, NumError> {
        if points.len() < 2 {
            return Err(NumError::InvalidGrid(format!(
                "axis needs at least 2 points, got {}",
                points.len()
            )));
        }
        for w in points.windows(2) {
            if !w[0].is_finite() || !w[1].is_finite() {
                return Err(NumError::InvalidGrid("axis points must be finite".into()));
            }
            if w[1] <= w[0] {
                return Err(NumError::InvalidGrid(format!(
                    "axis points must be strictly increasing ({} then {})",
                    w[0], w[1]
                )));
            }
        }
        let uniform_step = detect_uniform_step(&points);
        Ok(Axis {
            points,
            uniform_step,
        })
    }

    /// Creates a uniformly spaced axis with `count` points over `[start, stop]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidGrid`] if `count < 2` or `stop <= start`.
    pub fn uniform(start: f64, stop: f64, count: usize) -> Result<Self, NumError> {
        if count < 2 {
            return Err(NumError::InvalidGrid(format!(
                "uniform axis needs at least 2 points, got {count}"
            )));
        }
        if !(stop > start) {
            return Err(NumError::InvalidGrid(format!(
                "uniform axis needs stop > start (got [{start}, {stop}])"
            )));
        }
        let step = (stop - start) / (count - 1) as f64;
        let points = (0..count).map(|i| start + step * i as f64).collect();
        Axis::new(points)
    }

    /// Creates a uniform voltage axis covering `[-margin, vdd + margin]`, the
    /// sweep range the paper uses for current-source characterization.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidGrid`] on an empty range or too few points.
    pub fn voltage_with_margin(vdd: f64, margin: f64, count: usize) -> Result<Self, NumError> {
        Axis::uniform(-margin, vdd + margin, count)
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the axis is empty (never true for a constructed axis).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sample points.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Lowest sample point.
    pub fn min(&self) -> f64 {
        self.points[0]
    }

    /// Highest sample point.
    pub fn max(&self) -> f64 {
        *self.points.last().expect("axis is never empty")
    }

    /// The cached uniform spacing, when the axis was detected as uniformly
    /// sampled at construction.
    pub fn uniform_step(&self) -> Option<f64> {
        self.uniform_step
    }

    /// Locates `x` on the axis: returns the index `i` of the cell `[p[i], p[i+1]]`
    /// containing `x` and the normalized position `t ∈ [0, 1]` within that cell.
    ///
    /// Queries outside the axis range are clamped to the first/last cell, which
    /// makes table evaluation a flat extrapolation — the standard, safe choice for
    /// characterized device tables.
    ///
    /// A NaN query is *not* defended here (the comparisons all fail and the
    /// result is the first cell with a NaN offset); use [`Axis::try_locate`]
    /// wherever the coordinate is not already known to be a number.
    pub fn locate(&self, x: f64) -> (usize, f64) {
        let pts = &self.points;
        let n = pts.len();
        if x <= pts[0] {
            return (0, 0.0);
        }
        if x >= pts[n - 1] {
            return (n - 2, 1.0);
        }
        // Binary search for the containing cell.
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - pts[lo]) / (pts[lo + 1] - pts[lo]);
        (lo, t)
    }

    /// NaN-safe [`Axis::locate`]: returns a descriptive error for a NaN query
    /// instead of silently treating it as the first cell, and uses the O(1)
    /// analytic locate on uniform axes.
    ///
    /// For every finite `x` the result is identical (to the bit) to
    /// [`Axis::locate`]: the containing cell of a strictly increasing axis is
    /// unique, and the in-cell offset is computed by the same expression.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if `x` is NaN.
    pub fn try_locate(&self, x: f64) -> Result<(usize, f64), NumError> {
        if x.is_nan() {
            return Err(NumError::InvalidQuery(
                "axis locate called with a NaN coordinate".into(),
            ));
        }
        let pts = &self.points;
        let n = pts.len();
        if x <= pts[0] {
            return Ok((0, 0.0));
        }
        if x >= pts[n - 1] {
            return Ok((n - 2, 1.0));
        }
        let cell = self.find_cell_interior(x);
        let t = (x - pts[cell]) / (pts[cell + 1] - pts[cell]);
        Ok((cell, t))
    }

    /// NaN-safe locate with a cursor hint: tries the hinted cell first, walks
    /// to an immediate neighbor if the query moved one cell, and only then
    /// falls back to the analytic/binary locate. Bit-identical to
    /// [`Axis::locate`] for every finite `x` (same unique cell, same offset
    /// arithmetic); the hint only changes how fast the cell is found.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidQuery`] if `x` is NaN.
    pub fn try_locate_hinted(&self, x: f64, hint: usize) -> Result<(usize, f64), NumError> {
        if x.is_nan() {
            return Err(NumError::InvalidQuery(
                "axis locate called with a NaN coordinate".into(),
            ));
        }
        let pts = &self.points;
        let n = pts.len();
        if x <= pts[0] {
            return Ok((0, 0.0));
        }
        if x >= pts[n - 1] {
            return Ok((n - 2, 1.0));
        }
        // Temporal coherence: consecutive queries land in the same or an
        // adjacent cell, so check the hint and its neighbors before paying for
        // a full locate. `x` is strictly interior here, so the walk below
        // cannot leave `[0, n - 2]`.
        let mut cell = hint.min(n - 2);
        const MAX_WALK: usize = 2;
        let mut walked = 0usize;
        loop {
            if pts[cell] > x {
                cell -= 1;
            } else if x >= pts[cell + 1] {
                cell += 1;
            } else {
                break;
            }
            walked += 1;
            if walked > MAX_WALK {
                cell = self.find_cell_interior(x);
                break;
            }
        }
        let t = (x - pts[cell]) / (pts[cell + 1] - pts[cell]);
        Ok((cell, t))
    }

    /// Containing cell for a strictly interior `x` (`pts[0] < x < pts[n-1]`):
    /// analytic guess plus fix-up walk on uniform axes, binary search otherwise.
    fn find_cell_interior(&self, x: f64) -> usize {
        let pts = &self.points;
        let n = pts.len();
        if let Some(step) = self.uniform_step {
            let mut cell = (((x - pts[0]) / step) as usize).min(n - 2);
            // The analytic guess can be off by one ulp-rounding cell; fix up
            // against the actual points so the result is exact.
            while pts[cell] > x {
                cell -= 1;
            }
            while x >= pts[cell + 1] {
                cell += 1;
            }
            return cell;
        }
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Detects a (numerically) uniform spacing: every gap must agree with the mean
/// gap to within a tight relative tolerance. Correctness never depends on this —
/// the analytic locate verifies its guess against the actual points — so the
/// tolerance only trades O(1) locates against fix-up walk length.
fn detect_uniform_step(points: &[f64]) -> Option<f64> {
    let n = points.len();
    let step = (points[n - 1] - points[0]) / (n - 1) as f64;
    let uniform = points
        .windows(2)
        .all(|w| ((w[1] - w[0]) - step).abs() <= step * 1e-9);
    uniform.then_some(step)
}

impl ToJson for Axis {
    fn to_json(&self) -> JsonValue {
        JsonValue::from_f64_slice(&self.points)
    }
}

impl FromJson for Axis {
    fn from_json(value: &JsonValue) -> Result<Self, JsonError> {
        let points = value.to_f64_vec()?;
        Axis::new(points).map_err(|e| JsonError(format!("invalid axis: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_axis_endpoints() {
        let a = Axis::uniform(-0.1, 1.3, 15).unwrap();
        assert_eq!(a.len(), 15);
        assert!((a.min() + 0.1).abs() < 1e-12);
        assert!((a.max() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn voltage_margin_axis_matches_paper_sweep() {
        let a = Axis::voltage_with_margin(1.2, 0.1, 10).unwrap();
        assert!((a.min() + 0.1).abs() < 1e-12);
        assert!((a.max() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn rejects_too_few_points() {
        assert!(Axis::new(vec![1.0]).is_err());
        assert!(Axis::uniform(0.0, 1.0, 1).is_err());
    }

    #[test]
    fn rejects_non_monotonic() {
        assert!(Axis::new(vec![0.0, 1.0, 0.5]).is_err());
        assert!(Axis::new(vec![0.0, 0.0, 1.0]).is_err());
    }

    #[test]
    fn rejects_nan() {
        assert!(Axis::new(vec![0.0, f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn rejects_reversed_uniform_range() {
        assert!(Axis::uniform(1.0, 0.0, 5).is_err());
    }

    #[test]
    fn locate_interior_point() {
        let a = Axis::uniform(0.0, 1.0, 5).unwrap(); // points at 0, .25, .5, .75, 1
        let (i, t) = a.locate(0.6);
        assert_eq!(i, 2);
        assert!((t - 0.4).abs() < 1e-12);
    }

    #[test]
    fn locate_exact_grid_point() {
        let a = Axis::uniform(0.0, 1.0, 5).unwrap();
        let (i, t) = a.locate(0.5);
        assert_eq!(i, 2);
        assert!(t.abs() < 1e-12);
    }

    #[test]
    fn locate_clamps_out_of_range() {
        let a = Axis::uniform(0.0, 1.0, 5).unwrap();
        assert_eq!(a.locate(-2.0), (0, 0.0));
        let (i, t) = a.locate(7.0);
        assert_eq!(i, 3);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn non_uniform_axis_locate() {
        let a = Axis::new(vec![0.0, 0.1, 0.5, 1.2]).unwrap();
        let (i, t) = a.locate(0.3);
        assert_eq!(i, 1);
        assert!((t - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uniform_step_detection() {
        assert!(Axis::uniform(0.0, 1.0, 5).unwrap().uniform_step().is_some());
        assert!(Axis::voltage_with_margin(1.2, 0.1, 15)
            .unwrap()
            .uniform_step()
            .is_some());
        assert!(Axis::new(vec![0.0, 0.1, 0.5, 1.2])
            .unwrap()
            .uniform_step()
            .is_none());
    }

    #[test]
    fn try_locate_rejects_nan_instead_of_clamping_to_cell_zero() {
        // Regression: `locate` silently lands a NaN in cell 0 with a NaN
        // offset; the checked variants must report it.
        let a = Axis::uniform(0.0, 1.0, 5).unwrap();
        let err = a.try_locate(f64::NAN).unwrap_err();
        assert!(
            matches!(&err, NumError::InvalidQuery(msg) if msg.contains("NaN")),
            "{err}"
        );
        let err = a.try_locate_hinted(f64::NAN, 2).unwrap_err();
        assert!(
            matches!(&err, NumError::InvalidQuery(msg) if msg.contains("NaN")),
            "{err}"
        );
    }

    #[test]
    fn try_locate_matches_locate_bit_for_bit() {
        for axis in [
            Axis::uniform(-0.1, 1.3, 9).unwrap(),
            Axis::new(vec![0.0, 0.1, 0.5, 1.2, 3.0]).unwrap(),
        ] {
            let mut x = -0.5;
            while x < 3.5 {
                let (i, t) = axis.locate(x);
                assert_eq!(axis.try_locate(x).unwrap(), (i, t), "x = {x}");
                for hint in 0..axis.len() + 1 {
                    let (ih, th) = axis.try_locate_hinted(x, hint).unwrap();
                    assert_eq!(
                        (ih, th.to_bits()),
                        (i, t.to_bits()),
                        "x = {x}, hint = {hint}"
                    );
                }
                x += 0.0173;
            }
            // Every grid point lands exactly where `locate` puts it.
            for &p in axis.points() {
                assert_eq!(axis.try_locate(p).unwrap(), axis.locate(p));
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn locate_is_consistent_with_points() {
        let mut rng = TestRng::new(0x10ca7e);
        for _ in 0..300 {
            let count = 2 + rng.index(18);
            let start = rng.in_range(-5.0, 0.0);
            let span = rng.in_range(0.1, 10.0);
            let q = rng.in_range(-10.0, 10.0);
            let a = Axis::uniform(start, start + span, count).unwrap();
            let (i, t) = a.locate(q);
            assert!(i + 1 < a.len());
            assert!((0.0..=1.0).contains(&t));
            let reconstructed = a.points()[i] * (1.0 - t) + a.points()[i + 1] * t;
            // Inside the range, locate followed by interpolation reproduces q.
            if q >= a.min() && q <= a.max() {
                assert!((reconstructed - q).abs() < 1e-9);
            }
        }
    }
}
