//! Minimal JSON tree, parser and writer.
//!
//! The workspace builds in environments without access to crates.io, so model
//! persistence cannot rely on `serde_json`. This module provides the small JSON
//! subset the model store needs: a [`JsonValue`] tree, a strict recursive-descent
//! parser, and a writer whose `f64` formatting round-trips exactly (Rust's
//! shortest-representation float printing).
//!
//! Object key order is preserved, which keeps serialized models diffable.

use std::fmt;

/// Error produced while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers survive up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with preserved key order.
    Object(Vec<(String, JsonValue)>),
}

/// Converts a value into its JSON representation.
pub trait ToJson {
    /// The JSON tree for this value.
    fn to_json(&self) -> JsonValue;
}

/// Reconstructs a value from its JSON representation.
pub trait FromJson: Sized {
    /// Parses the value out of a JSON tree.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the tree has the wrong shape.
    fn from_json(value: &JsonValue) -> Result<Self, JsonError>;
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError(format!(
                "trailing characters at byte {pos} of {}",
                bytes.len()
            )));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, true, &mut out);
        out
    }

    /// Serializes without whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_value(self, 0, false, &mut out);
        out
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that fails with a descriptive error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if `self` is not an object or lacks the key.
    pub fn require(&self, key: &str) -> Result<&JsonValue, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing object member `{key}`")))
    }

    /// The numeric value, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer index.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The boolean value, if this node is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string contents, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this node is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Builds an array node from a slice of `f64` samples.
    pub fn from_f64_slice(values: &[f64]) -> JsonValue {
        JsonValue::Array(values.iter().map(|&v| JsonValue::Number(v)).collect())
    }

    /// Reads a flat `f64` array node back into a vector.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the node is not an array of numbers.
    pub fn to_f64_vec(&self) -> Result<Vec<f64>, JsonError> {
        let items = self
            .as_array()
            .ok_or_else(|| JsonError("expected an array of numbers".into()))?;
        items
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| JsonError("expected a number in array".into()))
            })
            .collect()
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

/// Nesting bound for the recursive-descent parser: deep enough for any model
/// document (stores nest ~4 levels), small enough that adversarial input
/// returns an error instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError(format!(
            "nesting deeper than {MAX_DEPTH} levels at byte {}",
            *pos
        )));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError("unexpected end of input".into())),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(JsonError(format!(
            "expected `{keyword}` at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError("invalid utf-8 in number".into()))?;
    let value: f64 = text
        .parse()
        .map_err(|_| JsonError(format!("invalid number `{text}` at byte {start}")))?;
    if !value.is_finite() {
        return Err(JsonError(format!("non-finite number `{text}`")));
    }
    Ok(JsonValue::Number(value))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| JsonError("unterminated string".into()))?;
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let esc = *bytes
                    .get(*pos)
                    .ok_or_else(|| JsonError("unterminated escape".into()))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError("invalid \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError(format!("invalid \\u escape `{hex}`")))?;
                        *pos += 4;
                        // Surrogate pairs are not needed by model data; reject them
                        // rather than silently mangling.
                        let c = char::from_u32(code).ok_or_else(|| {
                            JsonError(format!("unsupported code point {code:#x}"))
                        })?;
                        out.push(c);
                    }
                    other => {
                        return Err(JsonError(format!("invalid escape `\\{}`", other as char)))
                    }
                }
            }
            b if b < 0x80 => {
                // ASCII fast path — the overwhelmingly common case for model data.
                out.push(b as char);
                *pos += 1;
            }
            _ => {
                // Decode one multi-byte UTF-8 code point (at most 4 bytes), not
                // the whole remaining buffer.
                let end = (*pos + 4).min(bytes.len());
                let chunk = &bytes[*pos..end];
                let c = match std::str::from_utf8(chunk) {
                    Ok(valid) => valid.chars().next(),
                    Err(e) if e.valid_up_to() > 0 => std::str::from_utf8(&chunk[..e.valid_up_to()])
                        .expect("validated prefix")
                        .chars()
                        .next(),
                    Err(_) => None,
                }
                .ok_or_else(|| JsonError("invalid utf-8 in string".into()))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(JsonError(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError(format!("expected object key at byte {}", *pos)));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError(format!("expected `:` at byte {}", *pos)));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(JsonError(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    // Non-finite values have no JSON representation; follow JSON.stringify and
    // emit null so the output always parses. Model tables never contain them —
    // LutNd::new rejects non-finite samples at construction time.
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's shortest round-trip float formatting; integers print without a
    // fractional part, which `parse::<f64>` reads back exactly.
    if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{:.1}", v));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_value(value: &JsonValue, depth: usize, pretty: bool, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::Number(v) => write_number(*v, out),
        JsonValue::String(s) => write_string(s, out),
        JsonValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            // Flat numeric arrays stay on one line even in pretty mode: model
            // tables are long and one-number-per-line output is unreadable.
            let scalar_only = items.iter().all(|v| {
                matches!(
                    v,
                    JsonValue::Number(_) | JsonValue::Bool(_) | JsonValue::Null
                )
            });
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if pretty && scalar_only {
                        out.push(' ');
                    }
                }
                if pretty && !scalar_only {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                write_value(item, depth + 1, pretty, out);
            }
            if pretty && !scalar_only {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push(']');
        }
        JsonValue::Object(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                }
                write_string(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, depth + 1, pretty, out);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(
            JsonValue::parse("-1.5e-3").unwrap(),
            JsonValue::Number(-1.5e-3)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = JsonValue::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(doc.require("c").unwrap().as_str(), Some("x"));
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
        assert!(doc.require("missing").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "[1 2]",
            "nan",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        let values = [
            0.0,
            1.2,
            -0.3,
            1e-15,
            2.5e-15,
            f64::MIN_POSITIVE,
            1.0 / 3.0,
            123_456_789.123_456_78,
            -9.881312916824931e-5,
        ];
        let doc = JsonValue::from_f64_slice(&values);
        for pretty in [true, false] {
            let text = if pretty {
                doc.to_string_pretty()
            } else {
                doc.to_string_compact()
            };
            let back = JsonValue::parse(&text).unwrap().to_f64_vec().unwrap();
            assert_eq!(back, values.to_vec(), "through {text}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let doc = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("NOR2".into())),
            ("values".into(), JsonValue::from_f64_slice(&[1.0, 2.5])),
            (
                "nested".into(),
                JsonValue::Array(vec![JsonValue::Object(vec![(
                    "k".into(),
                    JsonValue::Bool(false),
                )])]),
            ),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        let compact = doc.to_string_compact();
        assert_eq!(JsonValue::parse(&compact).unwrap(), doc);
        assert!(compact.len() < text.len());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // An adversarial document must produce JsonError, not a stack overflow.
        let bomb = "[".repeat(200_000);
        let err = JsonValue::parse(&bomb).unwrap_err();
        assert!(err.0.contains("nesting"), "{err}");
        // A document at reasonable depth still parses.
        let ok = format!("{}1.0{}", "[".repeat(64), "]".repeat(64));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        // JSON has no NaN/inf; the writer follows JSON.stringify and emits
        // null, so the output always parses.
        let doc = JsonValue::Array(vec![
            JsonValue::Number(f64::NAN),
            JsonValue::Number(f64::INFINITY),
            JsonValue::Number(1.5),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(text, "[null,null,1.5]");
        assert!(JsonValue::parse(&text).is_ok());
    }

    #[test]
    fn multibyte_strings_round_trip() {
        let doc = JsonValue::String("naïve — ßim μΩ 日本語".into());
        for text in [doc.to_string_pretty(), doc.to_string_compact()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn usize_conversion_guards() {
        assert_eq!(JsonValue::Number(5.0).as_usize(), Some(5));
        assert_eq!(JsonValue::Number(-1.0).as_usize(), None);
        assert_eq!(JsonValue::Number(1.5).as_usize(), None);
    }
}
