//! A dependency-free shared-memory parallel-execution substrate.
//!
//! The build environment has no crates.io access, so `rayon` &co. are off the
//! table; everything here is `std::thread` + channels + atomics. Two layers:
//!
//! * [`ThreadPool`] — a channel-based pool for `'static` fire-and-forget jobs
//!   (workers pop jobs off one shared queue, which is work stealing in its
//!   simplest form: an idle worker takes the next job whoever submitted it).
//! * [`par_map`] / [`par_map_result`] / [`par_for_each`] — scoped data-parallel
//!   primitives over borrowed slices, built on [`std::thread::scope`] plus an
//!   atomic work-stealing index. Results are written into pre-allocated
//!   per-item slots, so the **reduction order is deterministic**: the output
//!   `Vec` is ordered by item index regardless of which worker computed what,
//!   and every entry is bit-identical to what a sequential `map` produces.
//!
//! Determinism contract: `par_map(n, items, f)` equals
//! `items.iter().enumerate().map(f).collect()` for every `n`, as long as `f`
//! itself is a pure function of its arguments. [`par_map_result`] additionally
//! guarantees a deterministic error: all tasks run to completion and the error
//! with the **lowest item index** is returned, exactly as a sequential
//! short-circuiting loop would have reported (errors past the first sequential
//! failure are discarded either way).
//!
//! Thread-count policy lives in [`resolve_threads`]: `0` means "auto", which
//! honors the `MCSM_THREADS` environment variable and falls back to
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

/// An observation hook for the parallel substrate.
///
/// `mcsm-num` sits below the observability crate in the dependency order, so
/// it cannot record spans itself; instead an observer installs a sink here
/// (once per process) and [`par_map`] / [`ThreadPool::execute`] report one
/// [`hook::JobTiming`] per job — the instant it was handed to the substrate,
/// the instant a worker picked it up (queue wait), and the instant it
/// finished (execution). When no sink is installed the only cost on the job
/// path is one relaxed atomic load per `par_map` call.
pub mod hook {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::OnceLock;
    use std::time::Instant;

    /// Wall-clock timeline of one job: queued → picked up → finished.
    #[derive(Debug, Clone, Copy)]
    pub struct JobTiming {
        /// Item index within its `par_map` batch (submission order for
        /// [`super::ThreadPool::execute`]).
        pub index: usize,
        /// When the batch (or job) was handed to the substrate.
        pub queued: Instant,
        /// When a worker started executing the job.
        pub started: Instant,
        /// When the job finished.
        pub finished: Instant,
    }

    /// The sink signature: called on the worker thread right after each job.
    pub type Sink = Box<dyn Fn(&JobTiming) + Send + Sync>;

    static ARMED: AtomicBool = AtomicBool::new(false);
    static SINK: OnceLock<Sink> = OnceLock::new();

    /// Installs the process-wide job sink. The first installation wins;
    /// returns whether this call installed its sink. The sink is invoked on
    /// the worker thread that ran the job, right after the job returns.
    pub fn install(sink: Sink) -> bool {
        let installed = SINK.set(sink).is_ok();
        if installed {
            ARMED.store(true, Ordering::Release);
        }
        installed
    }

    /// Whether a sink is installed — the single relaxed-load branch the job
    /// path checks before paying for any `Instant::now()` calls.
    #[inline]
    pub fn armed() -> bool {
        ARMED.load(Ordering::Relaxed)
    }

    /// Reports one job timing to the installed sink, if any.
    #[inline]
    pub fn emit(timing: &JobTiming) {
        if let Some(sink) = SINK.get() {
            sink(timing);
        }
    }
}

/// The number of worker threads "auto" resolves to: the `MCSM_THREADS`
/// environment variable if set to a positive integer, otherwise
/// [`std::thread::available_parallelism`], otherwise 1.
pub fn available_threads() -> usize {
    if let Ok(value) = std::env::var("MCSM_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolves a requested thread count: `0` means "auto" (see
/// [`available_threads`]), anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// Parses a boolean environment flag: set and neither empty nor `"0"` means
/// on. The single source of truth for switches like `MCSM_BENCH_FAST`, so
/// every crate agrees on the parsing rule.
pub fn env_flag(name: &str) -> bool {
    parse_flag(std::env::var(name).ok().as_deref())
}

/// The parsing rule behind [`env_flag`], split out so it is testable without
/// mutating the process environment (concurrent `setenv`/`getenv` from
/// parallel tests is undefined behavior on glibc).
fn parse_flag(value: Option<&str>) -> bool {
    match value {
        Some(value) => !value.is_empty() && value != "0",
        None => false,
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

type PendingCounter = Arc<(Mutex<usize>, std::sync::Condvar)>;

/// Decrements the pending-job counter when dropped — including during a
/// worker's unwind after a panicking job, so [`ThreadPool::join`] can never
/// deadlock on a job that died.
struct PendingGuard<'a>(&'a PendingCounter);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        let (count, signal) = &**self.0;
        if let Ok(mut guard) = count.lock() {
            *guard -= 1;
        }
        signal.notify_all();
    }
}

/// A channel-based thread pool for `'static` jobs.
///
/// Workers share one receiving end of an [`mpsc`] channel behind a mutex and
/// pop jobs as they become free. Dropping the pool closes the channel and joins
/// every worker, so queued jobs always finish before the pool goes away.
///
/// Panics: a panicking job is caught ([`std::panic::catch_unwind`]) and its
/// panic payload discarded — the worker survives, queued jobs keep draining,
/// and [`ThreadPool::join`] cannot deadlock. Jobs that must report failure
/// should communicate through their own channel rather than panicking.
///
/// For data-parallel work over borrowed slices prefer [`par_map`], which needs
/// no `'static` bound and returns results in deterministic order.
#[derive(Debug)]
pub struct ThreadPool {
    workers: Vec<thread::JoinHandle<()>>,
    sender: Option<mpsc::Sender<Job>>,
    pending: PendingCounter,
    submitted: AtomicUsize,
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let pending = Arc::new((Mutex::new(0usize), std::sync::Condvar::new()));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let pending = Arc::clone(&pending);
                thread::spawn(move || loop {
                    let job = {
                        let guard = receiver.lock().expect("pool receiver poisoned");
                        guard.recv()
                    };
                    match job {
                        Ok(job) => {
                            // The guard decrements the counter even if `job`
                            // panics, and the panic itself is caught so the
                            // worker survives to drain the rest of the queue:
                            // `join` can never be left waiting on jobs that
                            // have no worker to run them.
                            let _guard = PendingGuard(&pending);
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Err(_) => break, // channel closed: pool is shutting down
                    }
                })
            })
            .collect();
        ThreadPool {
            workers,
            sender: Some(sender),
            pending,
            submitted: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job to the pool.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let (count, _) = &*self.pending;
        *count.lock().expect("pending counter poisoned") += 1;
        let job: Job = if hook::armed() {
            let index = self.submitted.fetch_add(1, Ordering::Relaxed);
            let queued = Instant::now();
            Box::new(move || {
                let started = Instant::now();
                job();
                hook::emit(&hook::JobTiming {
                    index,
                    queued,
                    started,
                    finished: Instant::now(),
                });
            })
        } else {
            Box::new(job)
        };
        self.sender
            .as_ref()
            .expect("pool sender alive while pool exists")
            .send(job)
            .expect("pool workers alive while pool exists");
    }

    /// Blocks until every job submitted so far has finished.
    pub fn join(&self) {
        let (count, signal) = &*self.pending;
        let mut guard = count.lock().expect("pending counter poisoned");
        while *guard > 0 {
            guard = signal.wait(guard).expect("pending counter poisoned");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.sender.take(); // close the channel so workers exit their loop
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Maps `f` over `items` on up to `threads` worker threads.
///
/// `f` receives the item index and the item. The output is ordered by item
/// index and bit-identical to the sequential map for pure `f` — see the module
/// docs for the determinism contract. `threads <= 1` (or fewer than two items)
/// runs sequentially on the calling thread with no pool overhead.
///
/// # Panics
///
/// A panic inside `f` is propagated to the caller once all workers have
/// stopped, matching [`std::thread::scope`] semantics.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    // When the hook is armed, every job reports queue-wait and execution
    // timestamps; the batch handoff instant doubles as the queue timestamp.
    let queued_at = if hook::armed() {
        Some(Instant::now())
    } else {
        None
    };
    let run_one = |index: usize, item: &T| -> R {
        match queued_at {
            Some(queued) => {
                let started = Instant::now();
                let result = f(index, item);
                hook::emit(&hook::JobTiming {
                    index,
                    queued,
                    started,
                    finished: Instant::now(),
                });
                result
            }
            None => f(index, item),
        }
    };
    if threads <= 1 || items.len() < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| run_one(i, t))
            .collect();
    }

    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = run_one(index, &items[index]);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index visited exactly once")
        })
        .collect()
}

/// Fallible [`par_map`]: maps `f` over `items` and returns either every result
/// (ordered by item index) or the error of the **lowest-index** failing item,
/// which is exactly the error a sequential short-circuiting loop reports.
///
/// All tasks run to completion even when one fails; there is deliberately no
/// early cancellation, because skipping not-yet-started tasks would make the
/// reported error depend on scheduling.
pub fn par_map_result<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let results = par_map(threads, items, f);
    let mut out = Vec::with_capacity(results.len());
    for result in results {
        out.push(result?);
    }
    Ok(out)
}

/// Runs `f` for every item on up to `threads` worker threads, ignoring results.
pub fn par_for_each<T, F>(threads: usize, items: &[T], f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    par_map(threads, items, |i, t| f(i, t));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn par_map_matches_sequential_map_at_every_thread_count() {
        let mut rng = TestRng::new(42);
        let items: Vec<f64> = (0..257).map(|_| rng.in_range(-5.0, 5.0)).collect();
        let f = |i: usize, x: &f64| (x * 1.5 + i as f64).sin();
        let sequential: Vec<f64> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let parallel = par_map(threads, &items, f);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single_item_slices() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(4, &[7u32], |_, x| x * 2), vec![14]);
    }

    #[test]
    fn par_map_result_reports_the_lowest_index_error() {
        let items: Vec<usize> = (0..100).collect();
        let result = par_map_result(8, &items, |_, &x| {
            if x % 7 == 3 {
                Err(format!("item {x} failed"))
            } else {
                Ok(x * 2)
            }
        });
        // Failing items are 3, 10, 17, …; the sequential loop reports 3.
        assert_eq!(result.unwrap_err(), "item 3 failed");

        let ok = par_map_result(8, &items, |_, &x| Ok::<_, String>(x + 1)).unwrap();
        assert_eq!(ok, (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn par_for_each_visits_every_item_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        par_for_each(4, &counters, |_, c| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn thread_pool_runs_static_jobs_and_joins() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.threads(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
        // Dropping the pool joins workers; jobs submitted before the drop ran.
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panicking_job_does_not_deadlock_join() {
        // One worker and an early panicking job: if the panic killed the
        // worker, every later job would sit in the queue and join() would
        // hang. The catch_unwind in the worker loop must prevent that.
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                if i == 3 {
                    panic!("job {i} dies");
                }
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn env_flag_parses_like_the_bench_switches() {
        // The parsing rule is tested on the pure helper; mutating the real
        // environment from a parallel test binary would be UB on glibc.
        assert!(!parse_flag(None));
        assert!(!parse_flag(Some("")));
        assert!(!parse_flag(Some("0")));
        assert!(parse_flag(Some("1")));
        assert!(parse_flag(Some("true")));
        // An unset name resolves through the env path to off.
        assert!(!env_flag("MCSM_FLAG_THAT_IS_NEVER_SET"));
    }

    #[test]
    fn zero_threads_resolves_to_a_positive_count() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }
}
