//! Error metrics used to compare model waveforms against reference waveforms.
//!
//! The paper's accuracy metric (Eq. 6) is the root-mean-squared error between
//! the SPICE waveform and the MCSM waveform over the switching window,
//! normalized to Vdd. The helpers here implement that plus the usual maximum /
//! mean absolute error summaries used in EXPERIMENTS.md.

use crate::error::NumError;

/// Root-mean-squared difference between two equally sampled sequences
/// (the paper's Eq. 6 before normalization).
///
/// # Errors
///
/// Returns [`NumError::DimensionMismatch`] if the slices differ in length or
/// [`NumError::InvalidArgument`] if they are empty.
pub fn rmse(reference: &[f64], candidate: &[f64]) -> Result<f64, NumError> {
    if reference.len() != candidate.len() {
        return Err(NumError::DimensionMismatch {
            got: candidate.len(),
            expected: reference.len(),
            context: "rmse",
        });
    }
    if reference.is_empty() {
        return Err(NumError::InvalidArgument("rmse of empty sequences".into()));
    }
    let sum: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    Ok((sum / reference.len() as f64).sqrt())
}

/// RMSE normalized to a scale (the paper normalizes to Vdd).
///
/// # Errors
///
/// Propagates [`rmse`] errors and rejects a non-positive scale.
pub fn normalized_rmse(reference: &[f64], candidate: &[f64], scale: f64) -> Result<f64, NumError> {
    if scale <= 0.0 {
        return Err(NumError::InvalidArgument(format!(
            "normalization scale must be positive, got {scale}"
        )));
    }
    Ok(rmse(reference, candidate)? / scale)
}

/// Maximum absolute difference between two equally sampled sequences.
///
/// # Errors
///
/// Returns [`NumError::DimensionMismatch`] on length mismatch.
pub fn max_abs_error(reference: &[f64], candidate: &[f64]) -> Result<f64, NumError> {
    if reference.len() != candidate.len() {
        return Err(NumError::DimensionMismatch {
            got: candidate.len(),
            expected: reference.len(),
            context: "max_abs_error",
        });
    }
    Ok(reference
        .iter()
        .zip(candidate)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max))
}

/// Mean absolute difference between two equally sampled sequences.
///
/// # Errors
///
/// Returns [`NumError::DimensionMismatch`] on length mismatch or
/// [`NumError::InvalidArgument`] for empty input.
pub fn mean_abs_error(reference: &[f64], candidate: &[f64]) -> Result<f64, NumError> {
    if reference.len() != candidate.len() {
        return Err(NumError::DimensionMismatch {
            got: candidate.len(),
            expected: reference.len(),
            context: "mean_abs_error",
        });
    }
    if reference.is_empty() {
        return Err(NumError::InvalidArgument(
            "mean_abs_error of empty sequences".into(),
        ));
    }
    let sum: f64 = reference
        .iter()
        .zip(candidate)
        .map(|(a, b)| (a - b).abs())
        .sum();
    Ok(sum / reference.len() as f64)
}

/// Relative error `|candidate - reference| / |reference|` expressed in percent.
///
/// A zero reference with a zero candidate gives 0 %; a zero reference with a
/// non-zero candidate gives infinity, which callers should treat as "undefined".
pub fn percent_error(reference: f64, candidate: f64) -> f64 {
    if reference == 0.0 {
        if candidate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * (candidate - reference).abs() / reference.abs()
    }
}

/// Arithmetic mean of a sequence; returns `None` for empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation of a sequence; returns `None` for fewer than two samples.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_identical_sequences_is_zero() {
        let a = [0.0, 0.5, 1.2];
        assert_eq!(rmse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn rmse_of_constant_offset() {
        let a = [0.0, 1.0, 2.0];
        let b = [0.5, 1.5, 2.5];
        assert!((rmse(&a, &b).unwrap() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn normalized_rmse_matches_paper_definition() {
        let vdd = 1.2;
        let spice = [0.0, 0.6, 1.2];
        let model = [0.0, 0.72, 1.2];
        let expected = ((0.12f64 * 0.12) / 3.0).sqrt() / vdd;
        assert!((normalized_rmse(&spice, &model, vdd).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn normalized_rmse_rejects_bad_scale() {
        assert!(normalized_rmse(&[1.0], &[1.0], 0.0).is_err());
        assert!(normalized_rmse(&[1.0], &[1.0], -1.0).is_err());
    }

    #[test]
    fn max_and_mean_abs_error() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 1.5, 1.0, 3.0];
        assert!((max_abs_error(&a, &b).unwrap() - 1.0).abs() < 1e-15);
        assert!((mean_abs_error(&a, &b).unwrap() - 0.375).abs() < 1e-15);
    }

    #[test]
    fn errors_on_length_mismatch_and_empty() {
        assert!(rmse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[], &[]).is_err());
        assert!(max_abs_error(&[1.0], &[]).is_err());
        assert!(mean_abs_error(&[], &[]).is_err());
    }

    #[test]
    fn percent_error_cases() {
        assert!((percent_error(2.0, 2.2) - 10.0).abs() < 1e-10);
        assert_eq!(percent_error(0.0, 0.0), 0.0);
        assert!(percent_error(0.0, 1.0).is_infinite());
        // Symmetric in magnitude of deviation, relative to reference.
        assert!((percent_error(-2.0, -1.0) - 50.0).abs() < 1e-10);
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[1.0]), None);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((sd - 2.138089935299395).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn rmse_bounded_by_max_error() {
        let mut rng = TestRng::new(0x57a7);
        for _ in 0..200 {
            let n = 1 + rng.index(39);
            let a: Vec<f64> = (0..n).map(|_| rng.in_range(-5.0, 5.0)).collect();
            let b: Vec<f64> = a.iter().map(|x| x + rng.in_range(-1.0, 1.0)).collect();
            let r = rmse(&a, &b).unwrap();
            let m = max_abs_error(&a, &b).unwrap();
            let mae = mean_abs_error(&a, &b).unwrap();
            assert!(r <= m + 1e-12);
            assert!(mae <= r + 1e-12);
        }
    }

    #[test]
    fn rmse_is_symmetric() {
        let mut rng = TestRng::new(0x3e5);
        for _ in 0..200 {
            let n = 1 + rng.index(19);
            let a: Vec<f64> = (0..n).map(|_| rng.in_range(-5.0, 5.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.in_range(-5.0, 5.0)).collect();
            assert!((rmse(&a, &b).unwrap() - rmse(&b, &a).unwrap()).abs() < 1e-12);
        }
    }
}
