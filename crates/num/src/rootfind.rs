//! Bracketing root finders.
//!
//! Threshold-crossing extraction (50 % delay points, 10 %/90 % slew points) on
//! analytic or interpolated waveforms is a scalar root-finding problem; the
//! robust bracketing methods here never diverge as long as the bracket is valid.

use crate::error::NumError;

/// Options for the scalar root finders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootOptions {
    /// Absolute tolerance on the abscissa.
    pub x_tolerance: f64,
    /// Absolute tolerance on the function value.
    pub f_tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
}

impl Default for RootOptions {
    fn default() -> Self {
        RootOptions {
            x_tolerance: 1e-15,
            f_tolerance: 1e-12,
            max_iterations: 200,
        }
    }
}

/// Finds a root of `f` in `[lo, hi]` by bisection.
///
/// # Errors
///
/// * [`NumError::InvalidBracket`] if `f(lo)` and `f(hi)` have the same sign.
/// * [`NumError::DidNotConverge`] if the iteration budget is exhausted.
pub fn bisect<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    options: &RootOptions,
) -> Result<f64, NumError> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    for _ in 0..options.max_iterations {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm.abs() < options.f_tolerance || (b - a).abs() < options.x_tolerance {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(NumError::DidNotConverge {
        iterations: options.max_iterations,
        residual: (b - a).abs(),
    })
}

/// Finds a root of `f` in `[lo, hi]` using Brent's method (inverse quadratic
/// interpolation with bisection fallback).
///
/// # Errors
///
/// * [`NumError::InvalidBracket`] if `f(lo)` and `f(hi)` have the same sign.
/// * [`NumError::DidNotConverge`] if the iteration budget is exhausted.
pub fn brent<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    options: &RootOptions,
) -> Result<f64, NumError> {
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::InvalidBracket { f_lo: fa, f_hi: fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = a;

    for _ in 0..options.max_iterations {
        if fb.abs() < options.f_tolerance || (b - a).abs() < options.x_tolerance {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };

        let cond_range = {
            let low = (3.0 * a + b) / 4.0;
            let (lo_r, hi_r) = if low < b { (low, b) } else { (b, low) };
            s < lo_r || s > hi_r
        };
        let cond_mflag = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond_nflag = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond_small_m = mflag && (b - c).abs() < options.x_tolerance;
        let cond_small_n = !mflag && (c - d).abs() < options.x_tolerance;

        if cond_range || cond_mflag || cond_nflag || cond_small_m || cond_small_n {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(NumError::DidNotConverge {
        iterations: options.max_iterations,
        residual: fb.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt_two() {
        let root = bisect(|x| x * x - 2.0, 0.0, 2.0, &RootOptions::default()).unwrap();
        assert!((root - 2.0f64.sqrt()).abs() < 1e-7);
    }

    #[test]
    fn brent_finds_sqrt_two_quickly() {
        let mut calls = 0usize;
        let root = brent(
            |x| {
                calls += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            &RootOptions::default(),
        )
        .unwrap();
        assert!((root - 2.0f64.sqrt()).abs() < 1e-10);
        assert!(calls < 60, "brent used {calls} evaluations");
    }

    #[test]
    fn invalid_bracket_is_reported() {
        let err = bisect(|x| x * x + 1.0, -1.0, 1.0, &RootOptions::default());
        assert!(matches!(err, Err(NumError::InvalidBracket { .. })));
        let err = brent(|x| x * x + 1.0, -1.0, 1.0, &RootOptions::default());
        assert!(matches!(err, Err(NumError::InvalidBracket { .. })));
    }

    #[test]
    fn exact_endpoint_roots_are_returned() {
        let root = bisect(|x| x, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert_eq!(root, 0.0);
        let root = brent(|x| x - 1.0, 0.0, 1.0, &RootOptions::default()).unwrap();
        assert_eq!(root, 1.0);
    }

    #[test]
    fn brent_handles_steep_functions() {
        // Models a sharp CMOS transition: tanh with a large slope.
        let root = brent(
            |x| ((x - 0.6312) * 200.0).tanh(),
            0.0,
            1.2,
            &RootOptions::default(),
        )
        .unwrap();
        assert!((root - 0.6312).abs() < 1e-8);
    }

    #[test]
    fn iteration_budget_respected() {
        let opts = RootOptions {
            max_iterations: 3,
            x_tolerance: 1e-300,
            f_tolerance: 1e-300,
        };
        let err = bisect(|x| x * x - 2.0, 0.0, 2.0, &opts);
        assert!(matches!(err, Err(NumError::DidNotConverge { .. })));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn both_methods_agree_on_cubic_roots() {
        let mut rng = TestRng::new(0xb00f);
        for _ in 0..200 {
            let shift = rng.in_range(-0.9, 0.9);
            // f(x) = x^3 - shift has a single real root at cbrt(shift).
            let f = |x: f64| x * x * x - shift;
            let opts = RootOptions::default();
            let b = bisect(f, -2.0, 2.0, &opts).unwrap();
            let r = brent(f, -2.0, 2.0, &opts).unwrap();
            assert!((b - r).abs() < 1e-6);
            assert!((r - shift.cbrt()).abs() < 1e-6);
        }
    }
}
