//! Time-integration helpers.
//!
//! Two integration styles appear in the workspace:
//!
//! * The SPICE transient engine replaces each capacitor with a *companion model*
//!   (a conductance in parallel with a current source) derived from backward
//!   Euler or the trapezoidal rule — [`CompanionMethod`] and [`CapacitorCompanion`].
//! * The CSM waveform engine advances the paper's Eqs. (4)–(5) explicitly;
//!   [`explicit_step`] is that one-liner given a name so it can be documented and
//!   tested once.

/// Integration method used to build capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompanionMethod {
    /// First-order backward Euler: robust, strongly damped.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule: more accurate, may ring on stiff steps.
    Trapezoidal,
}

/// Companion-model coefficients for a linear capacitor over one time step.
///
/// The capacitor branch current is represented as
/// `i = g_eq * v(t_{n+1}) + i_eq`
/// where `g_eq` and `i_eq` depend on the method, the step size and the state at
/// the previous time point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacitorCompanion {
    /// Equivalent conductance (siemens).
    pub g_eq: f64,
    /// Equivalent history current source (amps).
    pub i_eq: f64,
}

impl CapacitorCompanion {
    /// Builds the companion model of a capacitor `c` for a step of `dt` seconds,
    /// given the capacitor voltage and current at the previous time point.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive (a zero step is a programming error
    /// in the time-stepping loop, not a recoverable condition).
    pub fn new(
        method: CompanionMethod,
        c: f64,
        dt: f64,
        v_prev: f64,
        i_prev: f64,
    ) -> CapacitorCompanion {
        assert!(dt > 0.0, "companion model requires dt > 0, got {dt}");
        match method {
            CompanionMethod::BackwardEuler => {
                let g_eq = c / dt;
                CapacitorCompanion {
                    g_eq,
                    i_eq: -g_eq * v_prev,
                }
            }
            CompanionMethod::Trapezoidal => {
                let g_eq = 2.0 * c / dt;
                CapacitorCompanion {
                    g_eq,
                    i_eq: -g_eq * v_prev - i_prev,
                }
            }
        }
    }

    /// Branch current through the capacitor at the new voltage `v_new`.
    pub fn current(&self, v_new: f64) -> f64 {
        self.g_eq * v_new + self.i_eq
    }
}

/// One explicit (forward-Euler) update `x_{k+1} = x_k + dt * dxdt`.
///
/// This is the update rule of the paper's Eqs. (4) and (5): the new output (or
/// internal-node) voltage is the previous one plus the net capacitor-charging
/// current divided by the effective capacitance, times the step.
#[inline]
pub fn explicit_step(x_prev: f64, dxdt: f64, dt: f64) -> f64 {
    x_prev + dt * dxdt
}

/// Richardson-style local truncation error estimate between a full step and two
/// half steps; used by the adaptive transient stepping to decide refinement.
#[inline]
pub fn truncation_error(full_step: f64, two_half_steps: f64) -> f64 {
    (full_step - two_half_steps).abs()
}

/// Suggests the next time step given the current step, an error estimate and a
/// tolerance, bounded to `[shrink_limit, grow_limit]` times the current step.
pub fn suggest_step(
    dt: f64,
    error: f64,
    tolerance: f64,
    shrink_limit: f64,
    grow_limit: f64,
) -> f64 {
    if error <= 0.0 || !error.is_finite() {
        return dt * grow_limit;
    }
    let factor = (tolerance / error).sqrt().clamp(shrink_limit, grow_limit);
    dt * factor
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates an RC discharge (R to ground) with companion models and checks
    /// the result against the analytic exponential.
    fn simulate_rc(method: CompanionMethod, steps: usize) -> f64 {
        let r = 1_000.0;
        let c = 1e-12;
        let t_end = 5e-9;
        let dt = t_end / steps as f64;
        let mut v = 1.0;
        let mut i_cap = -v / r; // capacitor current (discharging into R)
        for _ in 0..steps {
            let comp = CapacitorCompanion::new(method, c, dt, v, i_cap);
            // KCL at the single node: v/R + g_eq v + i_eq = 0
            let v_new = -comp.i_eq / (1.0 / r + comp.g_eq);
            i_cap = comp.current(v_new);
            v = v_new;
        }
        v
    }

    #[test]
    fn backward_euler_tracks_rc_discharge() {
        let v = simulate_rc(CompanionMethod::BackwardEuler, 2_000);
        let expected = (-5e-9_f64 / (1_000.0 * 1e-12)).exp();
        assert!((v - expected).abs() < 5e-3, "v = {v}, expected {expected}");
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler() {
        let steps = 100;
        let expected = (-5e-9_f64 / (1_000.0 * 1e-12)).exp();
        let be = (simulate_rc(CompanionMethod::BackwardEuler, steps) - expected).abs();
        let trap = (simulate_rc(CompanionMethod::Trapezoidal, steps) - expected).abs();
        assert!(
            trap < be,
            "trapezoidal ({trap}) should beat backward Euler ({be})"
        );
    }

    #[test]
    fn companion_conductance_scales_with_c_over_dt() {
        let comp = CapacitorCompanion::new(CompanionMethod::BackwardEuler, 2e-15, 1e-12, 0.0, 0.0);
        assert!((comp.g_eq - 2e-3).abs() < 1e-15);
        let comp_trap =
            CapacitorCompanion::new(CompanionMethod::Trapezoidal, 2e-15, 1e-12, 0.0, 0.0);
        assert!((comp_trap.g_eq - 4e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "dt > 0")]
    fn zero_step_panics() {
        let _ = CapacitorCompanion::new(CompanionMethod::BackwardEuler, 1e-15, 0.0, 0.0, 0.0);
    }

    #[test]
    fn explicit_step_is_forward_euler() {
        assert!((explicit_step(1.0, -2.0, 0.25) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn step_suggestion_grows_and_shrinks() {
        let grown = suggest_step(1e-12, 1e-9, 1e-6, 0.2, 4.0);
        assert!(grown > 1e-12);
        let shrunk = suggest_step(1e-12, 1e-3, 1e-6, 0.2, 4.0);
        assert!(shrunk < 1e-12);
        assert!(shrunk >= 0.2e-12 * 0.999);
        // Zero error means "grow as much as allowed".
        assert!((suggest_step(1e-12, 0.0, 1e-6, 0.2, 4.0) - 4e-12).abs() < 1e-24);
    }

    #[test]
    fn truncation_error_is_absolute_difference() {
        assert!((truncation_error(1.0, 0.75) - 0.25).abs() < 1e-15);
        assert!((truncation_error(-1.0, 1.0) - 2.0).abs() < 1e-15);
    }
}
