//! Numerical substrate for the MCSM reproduction.
//!
//! This crate collects the small, dependency-free numerical building blocks the
//! rest of the workspace relies on:
//!
//! * [`matrix`] — dense matrices and LU factorization used by the modified nodal
//!   analysis (MNA) solver of `mcsm-spice`.
//! * [`newton`] — a damped Newton–Raphson driver shared by DC and transient
//!   analyses.
//! * [`grid`] / [`lut`] — N-dimensional grids and multilinear-interpolated lookup
//!   tables; the paper's 4-dimensional `I_o(V_A, V_B, V_N, V_o)` tables are built
//!   on these. Hot loops use the allocation-free fast paths and [`lut::LutCursor`]
//!   lookup cursors (bit-identical to the reference `eval`).
//! * [`interp`] — 1-D interpolation helpers.
//! * [`integrate`] — companion-model coefficients for backward-Euler and
//!   trapezoidal integration plus the explicit update used by the CSM engine.
//! * [`rootfind`] — bracketing root finders for threshold-crossing extraction.
//! * [`stats`] — RMSE / error metrics (paper Eq. 6).
//! * [`units`] — light newtypes for electrical quantities.
//! * [`json`] — a dependency-free JSON tree, parser and writer used for model
//!   persistence (the build environment has no crates.io access).
//! * [`hash`] — a seed-free canonical-bytes FNV-1a hasher for content-keyed
//!   caches (waveform memoization), stable across runs and thread counts.
//! * [`par`] — a `std::thread`-only thread pool and deterministic `par_map`
//!   primitives used to fan characterization grids and STA levels across cores.
//! * [`fault`] — a seeded, deterministic fault-injection plan (chaos testing)
//!   and cooperative request deadlines, carried as `Option`s so production
//!   runs pay nothing.
//!
//! # Example
//!
//! ```
//! use mcsm_num::lut::LutNd;
//! use mcsm_num::grid::Axis;
//!
//! # fn main() -> Result<(), mcsm_num::NumError> {
//! // A 2-D table of f(x, y) = x + 2 y sampled on a coarse grid.
//! let axes = vec![Axis::uniform(0.0, 1.0, 3)?, Axis::uniform(0.0, 1.0, 3)?];
//! let lut = LutNd::from_fn(axes, |v| v[0] + 2.0 * v[1])?;
//! let value = lut.eval(&[0.25, 0.75])?;
//! assert!((value - 1.75).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod fault;
pub mod grid;
pub mod hash;
pub mod integrate;
pub mod interp;
pub mod json;
pub mod lut;
pub mod matrix;
pub mod newton;
pub mod par;
pub mod rootfind;
pub mod stats;
pub mod testrand;
pub mod units;

pub use error::NumError;
pub use fault::{Deadline, FaultPlan};
pub use grid::Axis;
pub use hash::ByteHasher;
pub use json::{FromJson, JsonError, JsonValue, ToJson};
pub use lut::{LutCursor, LutNd};
pub use matrix::DenseMatrix;
pub use newton::{NewtonOptions, NewtonOutcome, NewtonSystem};
pub use par::{par_map, par_map_result, resolve_threads, ThreadPool};
pub use units::{Amps, Farads, Seconds, Volts};
