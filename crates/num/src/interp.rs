//! One-dimensional interpolation helpers.
//!
//! These are used for waveform resampling (comparing an MCSM waveform against a
//! SPICE reference requires evaluating both on a common time base) and for the
//! per-axis steps of multilinear table evaluation.

use crate::error::NumError;

/// Linear interpolation between two samples: `a + t (b - a)`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + t * (b - a)
}

/// Evaluates a piecewise-linear function defined by `(xs, ys)` at `x`.
///
/// Queries outside the sampled range are clamped to the end values (flat
/// extrapolation), matching the behaviour of the table lookups.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if `xs` and `ys` have different lengths.
/// * [`NumError::InvalidGrid`] if fewer than one sample is provided or `xs` is
///   not strictly increasing.
pub fn interp1(xs: &[f64], ys: &[f64], x: f64) -> Result<f64, NumError> {
    if xs.len() != ys.len() {
        return Err(NumError::DimensionMismatch {
            got: ys.len(),
            expected: xs.len(),
            context: "interp1",
        });
    }
    if xs.is_empty() {
        return Err(NumError::InvalidGrid(
            "interp1 needs at least one sample".into(),
        ));
    }
    if xs.len() == 1 {
        return Ok(ys[0]);
    }
    for w in xs.windows(2) {
        if w[1] <= w[0] {
            return Err(NumError::InvalidGrid(
                "interp1 abscissae must be strictly increasing".into(),
            ));
        }
    }
    if x <= xs[0] {
        return Ok(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Ok(ys[ys.len() - 1]);
    }
    // Binary search for the containing interval.
    let mut lo = 0usize;
    let mut hi = xs.len() - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = (x - xs[lo]) / (xs[lo + 1] - xs[lo]);
    Ok(lerp(ys[lo], ys[lo + 1], t))
}

/// Resamples a piecewise-linear signal `(xs, ys)` onto the abscissae `new_xs`.
///
/// # Errors
///
/// Propagates the validation errors of [`interp1`].
pub fn resample(xs: &[f64], ys: &[f64], new_xs: &[f64]) -> Result<Vec<f64>, NumError> {
    new_xs.iter().map(|&x| interp1(xs, ys, x)).collect()
}

/// Finds the first time at which a piecewise-linear signal crosses `level`,
/// searching from the beginning, with the requested direction.
///
/// Returns `None` if the signal never crosses the level in that direction.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if the slices differ in length.
pub fn first_crossing(
    xs: &[f64],
    ys: &[f64],
    level: f64,
    rising: bool,
) -> Result<Option<f64>, NumError> {
    if xs.len() != ys.len() {
        return Err(NumError::DimensionMismatch {
            got: ys.len(),
            expected: xs.len(),
            context: "first_crossing",
        });
    }
    for i in 1..xs.len() {
        let (y0, y1) = (ys[i - 1], ys[i]);
        let crosses = if rising {
            y0 < level && y1 >= level
        } else {
            y0 > level && y1 <= level
        };
        if crosses {
            if (y1 - y0).abs() < f64::EPSILON {
                return Ok(Some(xs[i]));
            }
            let t = (level - y0) / (y1 - y0);
            return Ok(Some(lerp(xs[i - 1], xs[i], t)));
        }
    }
    Ok(None)
}

/// Finds the last time at which a piecewise-linear signal crosses `level` in the
/// requested direction.
///
/// # Errors
///
/// * [`NumError::DimensionMismatch`] if the slices differ in length.
pub fn last_crossing(
    xs: &[f64],
    ys: &[f64],
    level: f64,
    rising: bool,
) -> Result<Option<f64>, NumError> {
    if xs.len() != ys.len() {
        return Err(NumError::DimensionMismatch {
            got: ys.len(),
            expected: xs.len(),
            context: "last_crossing",
        });
    }
    let mut found = None;
    for i in 1..xs.len() {
        let (y0, y1) = (ys[i - 1], ys[i]);
        let crosses = if rising {
            y0 < level && y1 >= level
        } else {
            y0 > level && y1 <= level
        };
        if crosses {
            let t = if (y1 - y0).abs() < f64::EPSILON {
                1.0
            } else {
                (level - y0) / (y1 - y0)
            };
            found = Some(lerp(xs[i - 1], xs[i], t));
        }
    }
    Ok(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_endpoints_and_midpoint() {
        assert_eq!(lerp(1.0, 3.0, 0.0), 1.0);
        assert_eq!(lerp(1.0, 3.0, 1.0), 3.0);
        assert_eq!(lerp(1.0, 3.0, 0.5), 2.0);
    }

    #[test]
    fn interp1_reproduces_samples() {
        let xs = [0.0, 1.0, 2.0, 4.0];
        let ys = [0.0, 2.0, 1.0, 5.0];
        for (x, y) in xs.iter().zip(&ys) {
            assert!((interp1(&xs, &ys, *x).unwrap() - y).abs() < 1e-14);
        }
    }

    #[test]
    fn interp1_interpolates_between_samples() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [0.0, 10.0, 30.0];
        assert!((interp1(&xs, &ys, 0.5).unwrap() - 5.0).abs() < 1e-12);
        assert!((interp1(&xs, &ys, 2.0).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn interp1_clamps_outside_range() {
        let xs = [0.0, 1.0];
        let ys = [2.0, 4.0];
        assert_eq!(interp1(&xs, &ys, -10.0).unwrap(), 2.0);
        assert_eq!(interp1(&xs, &ys, 10.0).unwrap(), 4.0);
    }

    #[test]
    fn interp1_single_sample_is_constant() {
        assert_eq!(interp1(&[1.0], &[7.0], 100.0).unwrap(), 7.0);
    }

    #[test]
    fn interp1_validates_inputs() {
        assert!(interp1(&[0.0, 1.0], &[0.0], 0.5).is_err());
        assert!(interp1(&[1.0, 0.5], &[0.0, 1.0], 0.7).is_err());
        assert!(interp1(&[], &[], 0.0).is_err());
    }

    #[test]
    fn resample_onto_denser_grid() {
        let xs = [0.0, 2.0];
        let ys = [0.0, 4.0];
        let out = resample(&xs, &ys, &[0.0, 0.5, 1.0, 1.5, 2.0]).unwrap();
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn first_crossing_rising_edge() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 0.4, 0.8, 1.2];
        let t = first_crossing(&xs, &ys, 0.6, true).unwrap().unwrap();
        assert!((t - 1.5).abs() < 1e-12);
    }

    #[test]
    fn first_crossing_falling_edge() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [1.2, 0.6, 0.0];
        let t = first_crossing(&xs, &ys, 0.6, false).unwrap().unwrap();
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_absent_returns_none() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 0.2];
        assert!(first_crossing(&xs, &ys, 0.6, true).unwrap().is_none());
        assert!(first_crossing(&xs, &ys, 0.6, false).unwrap().is_none());
    }

    #[test]
    fn last_crossing_of_glitch() {
        // A pulse that rises above and falls back below 0.5: two falling crossings? No —
        // one rising (index 1) and one falling (index 3); last falling is the tail.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys = [0.0, 1.0, 1.0, 0.0, 0.0];
        let rising = last_crossing(&xs, &ys, 0.5, true).unwrap().unwrap();
        let falling = last_crossing(&xs, &ys, 0.5, false).unwrap().unwrap();
        assert!((rising - 0.5).abs() < 1e-12);
        assert!((falling - 2.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    #[test]
    fn interp1_is_bounded_by_neighbour_samples() {
        let mut rng = TestRng::new(0x5eed);
        for _ in 0..300 {
            let n = 2 + rng.index(10);
            let ys: Vec<f64> = (0..n).map(|_| rng.in_range(-5.0, 5.0)).collect();
            let q = rng.unit();
            let xs: Vec<f64> = (0..n).map(|i| i as f64 / (n - 1) as f64).collect();
            let v = interp1(&xs, &ys, q).unwrap();
            let min = ys.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(v >= min - 1e-12 && v <= max + 1e-12);
        }
    }
}
