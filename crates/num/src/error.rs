//! Error type shared by the numerical routines.

use std::fmt;

/// Errors produced by the numerical substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A matrix or vector had an unexpected shape.
    DimensionMismatch {
        /// What the caller supplied.
        got: usize,
        /// What the routine required.
        expected: usize,
        /// Human-readable context (routine name / argument).
        context: &'static str,
    },
    /// LU factorization hit a (numerically) singular pivot.
    SingularMatrix {
        /// Column at which elimination broke down.
        column: usize,
    },
    /// An iterative method exhausted its iteration budget.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the final iterate.
        residual: f64,
    },
    /// An axis or grid definition was invalid (too few points, non-monotonic, NaN…).
    InvalidGrid(String),
    /// A lookup-table query used the wrong number of coordinates.
    InvalidQuery(String),
    /// A root-finding bracket did not actually bracket a sign change.
    InvalidBracket {
        /// Function value at the lower end of the bracket.
        f_lo: f64,
        /// Function value at the upper end of the bracket.
        f_hi: f64,
    },
    /// A scalar argument was out of the allowed range (step sizes, tolerances…).
    InvalidArgument(String),
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::DimensionMismatch {
                got,
                expected,
                context,
            } => write!(
                f,
                "dimension mismatch in {context}: got {got}, expected {expected}"
            ),
            NumError::SingularMatrix { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            NumError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumError::InvalidGrid(msg) => write!(f, "invalid grid: {msg}"),
            NumError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            NumError::InvalidBracket { f_lo, f_hi } => write!(
                f,
                "bracket does not contain a sign change (f_lo = {f_lo:.3e}, f_hi = {f_hi:.3e})"
            ),
            NumError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = NumError::DimensionMismatch {
            got: 3,
            expected: 4,
            context: "solve",
        };
        let msg = e.to_string();
        assert!(msg.contains("solve"));
        assert!(msg.contains('3'));
        assert!(msg.contains('4'));
    }

    #[test]
    fn display_singular() {
        let e = NumError::SingularMatrix { column: 2 };
        assert!(e.to_string().contains("column 2"));
    }

    #[test]
    fn display_not_converged() {
        let e = NumError::DidNotConverge {
            iterations: 50,
            residual: 1e-3,
        };
        let msg = e.to_string();
        assert!(msg.contains("50"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<NumError>();
    }

    #[test]
    fn display_invalid_bracket() {
        let e = NumError::InvalidBracket {
            f_lo: 1.0,
            f_hi: 2.0,
        };
        assert!(e.to_string().contains("sign change"));
    }
}
