//! Deterministic fault injection and cooperative deadlines.
//!
//! Production robustness cannot be tested by waiting for production failures:
//! the chaos tests inject them. A [`FaultPlan`] is a seeded, thread-safe
//! description of *which* failures fire *where* — injection points scattered
//! through the stack (the netsim gate-solve loop, the seq epoch driver, JSON
//! parsing, the server I/O path) query it by **site name**, and the decision
//! is a pure function of `(seed, site, key)` drawn through [`TestRng`]. That
//! purity is what makes chaos runs reproducible: the same plan fires the same
//! faults at every thread count and on every platform, so a fault-injected
//! run can be pinned bit-identical to a clean run on everything the faults
//! did not touch.
//!
//! The plan is carried as an `Option<Arc<FaultPlan>>` everywhere, so the
//! disabled path compiles to a no-op `Option` check — production runs pay
//! nothing.
//!
//! [`Deadline`] is the cooperative-cancellation half: a wall-clock budget
//! plus a manual cancel flag, polled by long-running loops (the netsim level
//! sweep checks it per gate) so a hung or oversized request can be abandoned
//! without killing the engine that runs it.
//!
//! [`TestRng`]: crate::testrand::TestRng

use crate::hash::ByteHasher;
use crate::testrand::TestRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The catalog of injection sites wired through the workspace. Site names are
/// dotted `layer.place.effect` strings; a plan can arm any subset.
pub mod site {
    /// Panics one gate solve inside the netsim level sweep (caught and
    /// recovered by the degraded-mode retry chain).
    pub const NETSIM_GATE_PANIC: &str = "netsim.gate.panic";
    /// Poisons one solved gate waveform with NaN samples, simulating solver
    /// divergence (recovered by the degraded-mode retry chain).
    pub const NETSIM_GATE_DIVERGE: &str = "netsim.gate.diverge";
    /// Sleeps before one clocked epoch solve in the seq driver.
    pub const SEQ_EPOCH_LATENCY: &str = "seq.epoch.latency";
    /// Forces one request line to fail JSON parsing (answered `-32700`).
    pub const SERVER_PARSE_FAIL: &str = "server.parse.fail";
    /// Panics inside one request handler while the session lock is held —
    /// the full mutex-poison recovery path (answered `-32000`,
    /// `recovered: true`).
    pub const SERVER_REQUEST_PANIC: &str = "server.request.panic";
    /// Sleeps before handling one request on the transport.
    pub const SERVER_IO_LATENCY: &str = "server.io.latency";
    /// Truncates one request line mid-byte before parsing.
    pub const SERVER_IO_TRUNCATE: &str = "server.io.truncate";
    /// Treats one request line as if it exceeded the transport's size limit
    /// (answered `-32600`).
    pub const SERVER_IO_OVERSIZE: &str = "server.io.oversize";
}

/// Every known injection site, for `MCSM_FAULT_SITES`-less plans and for the
/// chaos matrix to sweep.
pub const ALL_SITES: &[&str] = &[
    site::NETSIM_GATE_PANIC,
    site::NETSIM_GATE_DIVERGE,
    site::SEQ_EPOCH_LATENCY,
    site::SERVER_PARSE_FAIL,
    site::SERVER_REQUEST_PANIC,
    site::SERVER_IO_LATENCY,
    site::SERVER_IO_TRUNCATE,
    site::SERVER_IO_OVERSIZE,
];

/// A seeded, thread-safe fault-injection plan.
///
/// Each injection point asks [`FaultPlan::fires`] with its site name and a
/// stable per-occurrence key (a gate's output-net index, a request counter).
/// The yes/no answer is a pure function of `(seed, site, key)` — no shared
/// mutable state feeds the decision, so concurrent queries from a thread pool
/// fire the exact same faults as a sequential sweep. Fired counts are tracked
/// separately (behind a mutex) for reporting only.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    latency: Duration,
    /// Armed sites; `None` arms every site.
    sites: Option<Vec<String>>,
    fired: Mutex<HashMap<String, usize>>,
}

impl FaultPlan {
    /// A plan firing each armed site with probability `rate` (clamped to
    /// `[0, 1]`) per queried key. All sites are armed until
    /// [`FaultPlan::with_sites`] narrows the set.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            rate: rate.clamp(0.0, 1.0),
            latency: Duration::from_millis(10),
            sites: None,
            fired: Mutex::new(HashMap::new()),
        }
    }

    /// Arms only the listed sites (see [`site`] for the catalog). Unknown
    /// names are kept verbatim — they simply never match a real query.
    #[must_use]
    pub fn with_sites<I, S>(mut self, sites: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.sites = Some(sites.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the artificial latency injected by the `*.latency` sites.
    #[must_use]
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Builds a plan from the environment, or `None` when fault injection is
    /// off (the production default):
    ///
    /// * `MCSM_FAULT_SEED` — required; the plan seed (a `u64`).
    /// * `MCSM_FAULT_RATE` — per-key firing probability (default `0.05`).
    /// * `MCSM_FAULT_SITES` — comma-separated site names (default: all).
    /// * `MCSM_FAULT_LATENCY_MS` — `*.latency` sleep (default 10 ms).
    pub fn from_env() -> Option<Arc<FaultPlan>> {
        let seed: u64 = std::env::var("MCSM_FAULT_SEED").ok()?.trim().parse().ok()?;
        let rate = std::env::var("MCSM_FAULT_RATE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0.05);
        let mut plan = FaultPlan::new(seed, rate);
        if let Ok(list) = std::env::var("MCSM_FAULT_SITES") {
            let sites: Vec<String> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if !sites.is_empty() {
                plan = plan.with_sites(sites);
            }
        }
        if let Some(ms) = std::env::var("MCSM_FAULT_LATENCY_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
        {
            plan = plan.with_latency(Duration::from_millis(ms));
        }
        Some(Arc::new(plan))
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-key firing probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The sleep injected by `*.latency` sites.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    fn armed(&self, site: &str) -> bool {
        match &self.sites {
            None => true,
            Some(sites) => sites.iter().any(|s| s == site),
        }
    }

    /// Whether the fault at `site` fires for this `key`.
    ///
    /// The decision is a pure function of `(seed, site, key)`: a fresh
    /// [`TestRng`] is seeded from the three and a single uniform draw is
    /// compared against the rate. Calling twice with the same arguments gives
    /// the same answer — callers that must not re-fire on a retry simply use
    /// a different site (the degraded-mode retry paths have no injection
    /// points at all).
    pub fn fires(&self, site: &str, key: u64) -> bool {
        if self.rate <= 0.0 || !self.armed(site) {
            return false;
        }
        let mut hasher = ByteHasher::new();
        hasher.write_u64(self.seed);
        hasher.write_bytes(site.as_bytes());
        hasher.write_u64(key);
        let mut rng = TestRng::new(hasher.finish());
        let fired = rng.unit() < self.rate;
        if fired {
            if let Ok(mut counts) = self.fired.lock() {
                *counts.entry(site.to_string()).or_insert(0) += 1;
            }
        }
        fired
    }

    /// Fires the `site` for `key` and, when it fires, additionally sleeps for
    /// the plan's latency — the shape every `*.latency` site uses.
    pub fn maybe_delay(&self, site: &str, key: u64) -> bool {
        if self.fires(site, key) {
            std::thread::sleep(self.latency);
            true
        } else {
            false
        }
    }

    /// How many times `site` has fired through this plan so far.
    pub fn fired(&self, site: &str) -> usize {
        self.fired
            .lock()
            .map(|counts| counts.get(site).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Total fires across every site so far.
    pub fn total_fired(&self) -> usize {
        self.fired
            .lock()
            .map(|counts| counts.values().sum())
            .unwrap_or(0)
    }
}

/// A cooperative cancellation token: a wall-clock budget, a manual cancel
/// flag, or both.
///
/// Long-running loops poll [`Deadline::expired`] at natural checkpoints (the
/// netsim level sweep checks before each gate solve) and bail out with a
/// descriptive error. Nothing is preempted — the contract is that every hot
/// loop polls often enough for the engine to stay responsive.
#[derive(Debug)]
pub struct Deadline {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Arc<Self> {
        Arc::new(Deadline {
            deadline: Instant::now().checked_add(budget),
            cancelled: AtomicBool::new(false),
        })
    }

    /// A deadline `ms` milliseconds from now (convenience for the protocol's
    /// `deadline_ms` request option). Non-finite or negative budgets expire
    /// immediately.
    pub fn after_ms(ms: f64) -> Arc<Self> {
        if ms.is_finite() && ms >= 0.0 {
            Deadline::after(Duration::from_secs_f64(ms / 1e3))
        } else {
            let deadline = Deadline::manual();
            deadline.cancel();
            deadline
        }
    }

    /// A token with no wall-clock budget — expires only when
    /// [`Deadline::cancel`] is called.
    pub fn manual() -> Arc<Self> {
        Arc::new(Deadline {
            deadline: None,
            cancelled: AtomicBool::new(false),
        })
    }

    /// Cancels the work guarded by this token.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the budget is exhausted or the token was cancelled.
    pub fn expired(&self) -> bool {
        if self.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        match self.deadline {
            Some(at) => Instant::now() >= at,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_site_and_key() {
        let plan = FaultPlan::new(42, 0.5);
        let replay = FaultPlan::new(42, 0.5);
        let mut fired = 0;
        for key in 0..256 {
            let a = plan.fires(site::NETSIM_GATE_PANIC, key);
            // Same (seed, site, key) on a fresh plan and on re-query: same
            // answer, regardless of query history.
            assert_eq!(a, replay.fires(site::NETSIM_GATE_PANIC, key));
            assert_eq!(a, plan.fires(site::NETSIM_GATE_PANIC, key));
            fired += usize::from(a);
        }
        // Rate 0.5 over 256 keys: comfortably away from 0 and 256.
        assert!((64..=192).contains(&fired), "fired {fired}/256");
        assert_eq!(plan.fired(site::NETSIM_GATE_DIVERGE), 0);
        assert!(plan.total_fired() >= fired);
    }

    #[test]
    fn sites_and_seeds_decorrelate() {
        let plan = FaultPlan::new(7, 0.5);
        let other_seed = FaultPlan::new(8, 0.5);
        let mut site_diff = 0;
        let mut seed_diff = 0;
        for key in 0..256 {
            if plan.fires(site::NETSIM_GATE_PANIC, key)
                != plan.fires(site::NETSIM_GATE_DIVERGE, key)
            {
                site_diff += 1;
            }
            if plan.fires(site::NETSIM_GATE_PANIC, key)
                != other_seed.fires(site::NETSIM_GATE_PANIC, key)
            {
                seed_diff += 1;
            }
        }
        assert!(site_diff > 32, "sites too correlated: {site_diff}");
        assert!(seed_diff > 32, "seeds too correlated: {seed_diff}");
    }

    #[test]
    fn disarmed_sites_and_zero_rate_never_fire() {
        let plan = FaultPlan::new(1, 1.0).with_sites([site::SERVER_PARSE_FAIL]);
        for key in 0..64 {
            assert!(plan.fires(site::SERVER_PARSE_FAIL, key));
            assert!(!plan.fires(site::NETSIM_GATE_PANIC, key));
        }
        let off = FaultPlan::new(1, 0.0);
        assert!((0..64).all(|key| !off.fires(site::SERVER_PARSE_FAIL, key)));
        assert_eq!(off.total_fired(), 0);
    }

    #[test]
    fn deadlines_expire_by_budget_and_by_cancel() {
        let expired = Deadline::after(Duration::from_secs(0));
        assert!(expired.expired());
        let generous = Deadline::after(Duration::from_secs(3600));
        assert!(!generous.expired());
        generous.cancel();
        assert!(generous.expired());
        let manual = Deadline::manual();
        assert!(!manual.expired());
        manual.cancel();
        assert!(manual.expired());
        // Degenerate budgets expire immediately instead of panicking.
        assert!(Deadline::after_ms(f64::NAN).expired());
        assert!(Deadline::after_ms(-5.0).expired());
    }
}
