//! Dense matrices and LU factorization.
//!
//! Circuits in this workspace are tiny (a handful of nodes for a logic cell plus
//! its load), so a dense, row-major matrix with partial-pivoting LU is the right
//! tool: simple, robust and cache-friendly at these sizes. The MNA assembly in
//! `mcsm-spice` stamps directly into a [`DenseMatrix`].

use crate::error::NumError;

/// A dense, row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use mcsm_num::matrix::DenseMatrix;
///
/// # fn main() -> Result<(), mcsm_num::NumError> {
/// let mut a = DenseMatrix::zeros(2, 2);
/// a.set(0, 0, 2.0);
/// a.set(0, 1, 1.0);
/// a.set(1, 0, 1.0);
/// a.set(1, 1, 3.0);
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a nested slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if the rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, NumError> {
        let nrows = rows.len();
        let ncols = rows.first().map(|r| r.len()).unwrap_or(0);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(NumError::DimensionMismatch {
                    got: row.len(),
                    expected: ncols,
                    context: "DenseMatrix::from_rows",
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to the element at `(row, col)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] += value;
    }

    /// Resets every element to zero while keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, NumError> {
        if x.len() != self.cols {
            return Err(NumError::DimensionMismatch {
                got: x.len(),
                expected: self.cols,
                context: "DenseMatrix::mul_vec",
            });
        }
        let y = (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect();
        Ok(y)
    }

    /// Solves `A x = b` by LU factorization with partial pivoting.
    ///
    /// The matrix is left untouched; a factored copy is used internally.
    ///
    /// # Errors
    ///
    /// * [`NumError::DimensionMismatch`] if the matrix is not square or `b` has
    ///   the wrong length.
    /// * [`NumError::SingularMatrix`] if a pivot is numerically zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        let lu = LuFactors::factor(self)?;
        lu.solve(b)
    }

    /// Computes the infinity norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|v| v.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }
}

/// An LU factorization (with partial pivoting) of a square [`DenseMatrix`].
///
/// Factoring once and solving repeatedly is useful when several right-hand sides
/// share the same Jacobian (for example sensitivity sweeps).
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    pivots: Vec<usize>,
}

impl LuFactors {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::DimensionMismatch`] if the matrix is not square.
    /// * [`NumError::SingularMatrix`] if elimination encounters a zero pivot.
    pub fn factor(matrix: &DenseMatrix) -> Result<Self, NumError> {
        if matrix.rows != matrix.cols {
            return Err(NumError::DimensionMismatch {
                got: matrix.cols,
                expected: matrix.rows,
                context: "LuFactors::factor (matrix must be square)",
            });
        }
        let n = matrix.rows;
        let mut lu = matrix.data.clone();
        let mut pivots = vec![0usize; n];

        for k in 0..n {
            // Find the pivot row.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < f64::MIN_POSITIVE * 1e4 || !max.is_finite() {
                return Err(NumError::SingularMatrix { column: k });
            }
            pivots[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }

        Ok(LuFactors { n, lu, pivots })
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if `b.len()` differs from the
    /// matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumError> {
        if b.len() != self.n {
            return Err(NumError::DimensionMismatch {
                got: b.len(),
                expected: self.n,
                context: "LuFactors::solve",
            });
        }
        let n = self.n;
        let mut x = b.to_vec();

        // Apply the row permutation.
        for k in 0..n {
            let p = self.pivots[k];
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward substitution (L has unit diagonal).
        for i in 1..n {
            let mut sum = x[i];
            for (j, xj) in x.iter().enumerate().take(i) {
                sum -= self.lu[i * n + j] * xj;
            }
            x[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.lu[i * n + j] * xj;
            }
            x[i] = sum / self.lu[i * n + i];
        }
        Ok(x)
    }
}

/// Computes the infinity norm of a vector.
pub fn vec_norm_inf(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).fold(0.0, f64::max)
}

/// Computes the Euclidean (L2) norm of a vector.
pub fn vec_norm_2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        let x = a.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi - bi).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 2.0],
        ])
        .unwrap();
        let x_true = vec![1.0, 2.0, -1.0];
        let b = a.mul_vec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        match a.solve(&[1.0, 2.0]) {
            Err(NumError::SingularMatrix { .. }) => {}
            other => panic!("expected SingularMatrix, got {other:?}"),
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rhs_length_checked() {
        let a = DenseMatrix::identity(3);
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(NumError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(matches!(err, Err(NumError::DimensionMismatch { .. })));
    }

    #[test]
    fn add_accumulates() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.add(0, 0, 1.5);
        a.add(0, 0, 2.5);
        assert!((a.get(0, 0) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn clear_preserves_shape() {
        let mut a = DenseMatrix::identity(3);
        a.clear();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 3);
        assert_eq!(a.norm_inf(), 0.0);
    }

    #[test]
    fn lu_factor_reuse_for_multiple_rhs() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let lu = LuFactors::factor(&a).unwrap();
        for rhs in [[1.0, 0.0], [0.0, 1.0], [2.0, -3.0]] {
            let x = lu.solve(&rhs).unwrap();
            let back = a.mul_vec(&x).unwrap();
            assert!((back[0] - rhs[0]).abs() < 1e-12);
            assert!((back[1] - rhs[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn vector_norms() {
        assert!((vec_norm_inf(&[1.0, -3.0, 2.0]) - 3.0).abs() < 1e-15);
        assert!((vec_norm_2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm_inf_of_matrix() {
        let a = DenseMatrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 0.25]]).unwrap();
        assert!((a.norm_inf() - 3.0).abs() < 1e-15);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::testrand::TestRng;

    /// Diagonally dominant matrices are always solvable.
    fn well_conditioned_matrix(n: usize, rng: &mut TestRng) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let mut diag = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rng.in_range(-1.0, 1.0);
                    m.set(i, j, v);
                    diag += v.abs();
                }
            }
            m.set(i, i, diag + 1.0);
        }
        m
    }

    #[test]
    fn solve_then_multiply_recovers_rhs() {
        let mut rng = TestRng::new(0xdeca);
        for _ in 0..100 {
            let a = well_conditioned_matrix(5, &mut rng);
            let b: Vec<f64> = (0..5).map(|_| rng.in_range(-10.0, 10.0)).collect();
            let x = a.solve(&b).unwrap();
            let back = a.mul_vec(&x).unwrap();
            for (bi, ri) in b.iter().zip(&back) {
                assert!((bi - ri).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let b: Vec<f64> = (0..6).map(|_| rng.in_range(-100.0, 100.0)).collect();
            let a = DenseMatrix::identity(6);
            let x = a.solve(&b).unwrap();
            for (xi, bi) in x.iter().zip(&b) {
                assert!((xi - bi).abs() < 1e-12);
            }
        }
    }
}
