//! Light newtype wrappers for electrical quantities.
//!
//! The simulator and characterization code mostly manipulate raw `f64` values in
//! SI units; these newtypes are used at API boundaries where mixing up a voltage
//! and a time (both `f64`) would be an easy and expensive mistake — for example
//! when declaring characterization sweep ranges.
//!
//! Each wrapper is a transparent `f64` with arithmetic against its own kind and
//! scaling by plain scalars.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

macro_rules! unit_newtype {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd)]
        pub struct $name(pub f64);

        impl $name {
            /// Creates a new value from an `f64` expressed in SI units.
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the underlying `f64` in SI units.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

unit_newtype!(
    /// A voltage in volts.
    Volts,
    "V"
);
unit_newtype!(
    /// A time in seconds.
    Seconds,
    "s"
);
unit_newtype!(
    /// A capacitance in farads.
    Farads,
    "F"
);
unit_newtype!(
    /// A current in amperes.
    Amps,
    "A"
);

impl Seconds {
    /// Convenience constructor from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        Seconds(ns * 1e-9)
    }

    /// Convenience constructor from picoseconds.
    pub fn from_picos(ps: f64) -> Self {
        Seconds(ps * 1e-12)
    }

    /// Value in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in picoseconds.
    pub fn as_picos(self) -> f64 {
        self.0 * 1e12
    }
}

impl Farads {
    /// Convenience constructor from femtofarads.
    pub fn from_femtos(ff: f64) -> Self {
        Farads(ff * 1e-15)
    }

    /// Value in femtofarads.
    pub fn as_femtos(self) -> f64 {
        self.0 * 1e15
    }
}

impl Amps {
    /// Convenience constructor from microamperes.
    pub fn from_micros(ua: f64) -> Self {
        Amps(ua * 1e-6)
    }

    /// Value in microamperes.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Volts::new(1.2);
        let b = Volts::new(0.2);
        assert!(((a - b).value() - 1.0).abs() < 1e-15);
        assert!(((a + b).value() - 1.4).abs() < 1e-15);
        assert!(((-b).value() + 0.2).abs() < 1e-15);
    }

    #[test]
    fn scaling_and_ratio() {
        let t = Seconds::from_nanos(2.0);
        assert!((t.as_picos() - 2000.0).abs() < 1e-9);
        let half = t / 2.0;
        assert!((half.as_nanos() - 1.0).abs() < 1e-12);
        let ratio = t / half;
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn farads_and_amps_conversions() {
        assert!((Farads::from_femtos(50.0).value() - 50e-15).abs() < 1e-25);
        assert!((Amps::from_micros(3.0).as_micros() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_unit() {
        assert!(Volts::new(1.2).to_string().contains('V'));
        assert!(Seconds::new(1e-9).to_string().contains('s'));
    }

    #[test]
    fn min_max_abs() {
        let a = Volts::new(-0.3);
        assert!((a.abs().value() - 0.3).abs() < 1e-15);
        assert_eq!(a.max(Volts::new(0.0)), Volts::new(0.0));
        assert_eq!(a.min(Volts::new(0.0)), a);
    }

    #[test]
    fn from_into_f64() {
        let v: Volts = 0.6.into();
        let raw: f64 = v.into();
        assert!((raw - 0.6).abs() < 1e-15);
    }
}
