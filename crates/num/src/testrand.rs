//! A tiny deterministic pseudo-random generator for property-style tests.
//!
//! The workspace cannot depend on `proptest` (no crates.io access at build
//! time), so randomized tests draw from this splitmix64-based generator
//! instead: seeded explicitly, reproducible across platforms, and good enough
//! to explore input spaces that a handful of hand-picked cases would miss.

/// Deterministic pseudo-random generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// A uniform index in `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot draw an index from an empty range");
        (self.next_u64() % len as u64) as usize
    }

    /// A uniform boolean.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = rng.in_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            let i = rng.index(5);
            assert!(i < 5);
        }
    }

    #[test]
    fn unit_covers_the_interval() {
        let mut rng = TestRng::new(99);
        let samples: Vec<f64> = (0..2000).map(|_| rng.unit()).collect();
        assert!(samples.iter().all(|v| (0.0..1.0).contains(v)));
        assert!(samples.iter().any(|&v| v < 0.1));
        assert!(samples.iter().any(|&v| v > 0.9));
    }
}
