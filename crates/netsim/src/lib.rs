//! Event-driven netlist-level transient simulation with current-source models.
//!
//! The paper's pitch is that characterized current-source models replace
//! transistor-level SPICE for *circuit-level* analysis. The other crates of
//! this workspace provide the pieces — per-gate model solves (`mcsm-core`),
//! waveform-based timing propagation (`mcsm-sta`), the backend-neutral
//! circuit IR (`mcsm-net`) and the golden-reference SPICE engine
//! (`mcsm-spice`) — and this crate assembles them into the missing workload:
//! a **full-netlist waveform-accurate simulator**. Given a
//! [`Netlist`](mcsm_net::Netlist), a characterized
//! [`ModelLibrary`](mcsm_sta::models::ModelLibrary) and a drive waveform per
//! primary input, [`simulate_netlist`] produces the voltage waveform on
//! *every* net.
//!
//! Three properties distinguish it from the STA layer's propagate-everything
//! flow:
//!
//! * **Event-driven** — gates whose inputs never leave the rails are resolved
//!   to their Boolean DC level without entering the numerical engine, and the
//!   quiescence propagates; with sparse input activity most of a large
//!   circuit is never simulated (see [`NetsimStats`]).
//! * **Shared waveform handoff** — a driver's output becomes its fanouts'
//!   input as a [`DriveWaveform::Pwl`](mcsm_core::sim::DriveWaveform)
//!   (reference-counted samples, O(1) per fanout pin), carrying true
//!   multiple-input-switching alignment into the MIS/MCSM models at netlist
//!   scope.
//! * **Deterministic level-parallelism** — the gates of each topological
//!   level fan out over [`mcsm_num::par`] workers; results are bit-identical
//!   at every thread count, like every parallel layer of this workspace.
//!
//! For long-running sessions (the `mcsm-serve` query server) the crate also
//! provides **incremental re-evaluation**: [`resimulate_netlist`] re-solves
//! only the downstream [`schedule::cone_of_influence`] of an ECO edit or
//! drive change, reusing committed waveforms for every untouched net, and
//! [`simulate_netlist_cached`] threads shared [`SimCaches`] (including the
//! whole-gate-solve [`WaveformCache`](mcsm_sta::WaveformCache) memo) through
//! repeated runs. Both are pinned bit-identical to from-scratch
//! [`simulate_netlist`] at any thread count.
//!
//! # Example
//!
//! ```no_run
//! use std::collections::HashMap;
//! use mcsm_cells::cell::CellKind;
//! use mcsm_cells::tech::Technology;
//! use mcsm_core::config::CharacterizationConfig;
//! use mcsm_core::sim::{CsmSimOptions, DriveWaveform};
//! use mcsm_net::c17;
//! use mcsm_netsim::{simulate_netlist, NetsimOptions};
//! use mcsm_sta::delaycalc::{DelayBackend, DelayCalculator};
//! use mcsm_sta::models::ModelLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tech = Technology::cmos_130nm();
//! let library = ModelLibrary::characterize(
//!     &tech,
//!     &[CellKind::Nand2],
//!     &CharacterizationConfig::standard(),
//! )?;
//! let netlist = c17();
//! let mut drives = HashMap::new();
//! for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
//!     drives.insert(
//!         pi,
//!         DriveWaveform::rising_ramp(tech.vdd, 1e-9 + 30e-12 * i as f64, 80e-12),
//!     );
//! }
//! let calculator = DelayCalculator::new(
//!     DelayBackend::CompleteMcsm,
//!     CsmSimOptions::new(4e-9, 1e-12),
//!     tech.vdd,
//! );
//! let result = simulate_netlist(
//!     &netlist,
//!     &library,
//!     &drives,
//!     &NetsimOptions::new(calculator, 2e-15).with_threads(0),
//! )?;
//! for net in netlist.net_refs() {
//!     if let Some((t, rising)) = result.arrival_any(net) {
//!         println!("{}: {:.1} ps ({})", result.net_name(net), t * 1e12, rising);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod schedule;
pub mod sim;

pub use error::NetsimError;
pub use schedule::{
    cone_of_influence, effective_load, seeds_for_drive_change, seeds_for_gate_edit,
    seeds_for_load_change, topological_levels,
};
pub use sim::{
    resimulate_netlist, simulate_netlist, simulate_netlist_cached, NetsimOptions, NetsimResult,
    NetsimStats, Observe, Recovery, RecoveryResolution, SimCaches, WaveformStore,
    DEFAULT_EVENT_THRESHOLD,
};
