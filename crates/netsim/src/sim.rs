//! The event-driven netlist transient simulator.
//!
//! [`simulate_netlist`] chains per-gate current-source-model solves along a
//! [`Netlist`]: each driver's computed output waveform becomes the drive of
//! its fanout gates (as a shared [`DriveWaveform::Pwl`], so fan-out never
//! copies samples), which is what carries true multiple-input-switching
//! alignment to the MIS/MCSM models at netlist scope — instead of the per-arc
//! delay approximation a conventional timing flow would make.
//!
//! The simulator is *event-driven* at gate granularity: a gate whose inputs
//! all stay within [`NetsimOptions::event_threshold`] of a rail for the whole
//! window is never handed to the numerical engine — its output is the DC
//! level implied by its Boolean function, and that quiescence propagates.
//! On circuits with sparse input activity most gates are skipped entirely,
//! which is where the netlist simulator's throughput advantage over
//! propagate-everything timing comes from. Gates that *do* see an event are
//! solved level-parallel over [`mcsm_num::par`] with the same determinism
//! contract as the STA layer: results are bit-identical at every thread
//! count.
//!
//! # Streaming waveform memory
//!
//! Keeping a full trace on every net makes result memory proportional to
//! circuit size, which caps the reachable scale long before runtime does. The
//! [`WaveformStore`] decouples the two: with
//! [`NetsimOptions::observe`] set to [`Observe::Points`], full traces are kept
//! only on *observation points* (primary outputs plus any caller-listed
//! nets), every interior net's drive is handed to its fanouts as usual but
//! **dropped as soon as its last fanout pin has consumed it** (a per-net
//! refcount initialized from the fanout degree), and — optionally — handoffs
//! are thinned to an error-bounded piecewise-linear form by
//! [`NetsimOptions::thin_eps`]. Live memory then tracks the schedule's level
//! width instead of the net count ([`NetsimStats::peak_live_waveforms`]
//! reports the high-water mark), while observed nets stay **bit-identical**
//! to a non-streaming run at every thread count (with `thin_eps == 0`).

use crate::error::NetsimError;
use crate::schedule::{cone_of_influence, effective_load, topological_levels};
use mcsm_core::eval::EvalMode;
use mcsm_core::sim::DriveWaveform;
use mcsm_net::{GateRef, NetRef, Netlist};
use mcsm_num::fault::{site, Deadline, FaultPlan};
use mcsm_num::par;
use mcsm_spice::waveform::Waveform;
use mcsm_sta::delaycalc::{DelayCache, DelayCalculator, WaveformCache};
use mcsm_sta::models::ModelLibrary;
use std::collections::HashMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Default [`NetsimOptions::event_threshold`] (volts): excursions below 50 mV
/// — deep noise-margin territory for any CMOS rail — are treated as
/// quiescent.
pub const DEFAULT_EVENT_THRESHOLD: f64 = 0.05;

/// Which nets keep a full waveform trace in the [`NetsimResult`].
#[derive(Debug, Clone, PartialEq)]
pub enum Observe {
    /// Keep a trace on every net — the classic mode; result memory is
    /// proportional to circuit size.
    All,
    /// Streaming mode: keep traces only on primary outputs plus the listed
    /// nets. Every other net's waveform is released once its last fanout pin
    /// has consumed it, so live memory is bounded by the schedule's level
    /// width instead of the net count. Un-observed nets report `None` from
    /// [`NetsimResult::waveform`].
    Points(Vec<NetRef>),
}

/// Options for one netlist transient simulation.
#[derive(Debug, Clone)]
pub struct NetsimOptions {
    /// Per-gate solve: model backend, time stepping and supply voltage. The
    /// simulation window is the calculator's `sim.t_stop`, shared by every
    /// gate so waveform handoff needs no re-gridding.
    pub calculator: DelayCalculator,
    /// Additional lumped load on every primary output (farads).
    pub primary_output_load: f64,
    /// Worker threads for the per-level parallel gate solves (`0` = auto from
    /// `MCSM_THREADS` / the machine, `1` = sequential). Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Smallest voltage excursion (volts) that counts as an event. Drives and
    /// computed outputs whose total excursion over the window stays below
    /// this are treated as DC, and gates fed only by such nets are skipped.
    pub event_threshold: f64,
    /// Which nets keep full traces — [`Observe::All`] (default) or streaming
    /// [`Observe::Points`]. Observed nets are bit-identical between the two.
    pub observe: Observe,
    /// Maximum absolute voltage error (volts) allowed when thinning a solved
    /// waveform into the piecewise-linear drive handed to fanout gates
    /// (see [`Waveform::thin`]). `0.0` (default) disables thinning — handoff
    /// shares the solved samples bit-identically.
    pub thin_eps: f64,
    /// Fault-injection plan queried by the gate-solve loop (chaos testing).
    /// `None` (the default) disables injection — the production path pays a
    /// single `Option` check per gate.
    pub fault: Option<Arc<FaultPlan>>,
    /// Cooperative cancellation: when set, the level sweep polls the token
    /// before every level and every gate solve, and bails out with
    /// [`NetsimError::Cancelled`] once it expires. Committed state owned by
    /// the caller is untouched — only this run's in-flight result is dropped.
    pub deadline: Option<Arc<Deadline>>,
}

/// Scalar options compare by value; the fault plan and deadline compare by
/// identity (`Arc::ptr_eq`) — two runs are "the same configuration" only when
/// they share the very same injection plan and cancellation token.
impl PartialEq for NetsimOptions {
    fn eq(&self, other: &Self) -> bool {
        fn same_arc<T>(a: &Option<Arc<T>>, b: &Option<Arc<T>>) -> bool {
            match (a, b) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
        }
        self.calculator == other.calculator
            && self.primary_output_load == other.primary_output_load
            && self.threads == other.threads
            && self.event_threshold == other.event_threshold
            && self.observe == other.observe
            && self.thin_eps == other.thin_eps
            && same_arc(&self.fault, &other.fault)
            && same_arc(&self.deadline, &other.deadline)
    }
}

impl NetsimOptions {
    /// Creates sequential options with the default event threshold, observing
    /// every net and no handoff thinning.
    pub fn new(calculator: DelayCalculator, primary_output_load: f64) -> Self {
        NetsimOptions {
            calculator,
            primary_output_load,
            threads: 1,
            event_threshold: DEFAULT_EVENT_THRESHOLD,
            observe: Observe::All,
            thin_eps: 0.0,
            fault: None,
            deadline: None,
        }
    }

    /// Sets the worker-thread count for level-parallel gate solves.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the event threshold (volts).
    #[must_use]
    pub fn with_event_threshold(mut self, volts: f64) -> Self {
        self.event_threshold = volts;
        self
    }

    /// Sets the observation mode (which nets keep full traces).
    #[must_use]
    pub fn with_observe(mut self, observe: Observe) -> Self {
        self.observe = observe;
        self
    }

    /// Sets the handoff-thinning error bound (volts); `0.0` disables.
    #[must_use]
    pub fn with_thin_eps(mut self, eps: f64) -> Self {
        self.thin_eps = eps;
        self
    }

    /// Arms a fault-injection plan for this run (chaos testing).
    #[must_use]
    pub fn with_fault(mut self, fault: Option<Arc<FaultPlan>>) -> Self {
        self.fault = fault;
        self
    }

    /// Attaches a cooperative cancellation token, polled per level and per
    /// gate solve.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Arc<Deadline>>) -> Self {
        self.deadline = deadline;
        self
    }
}

/// How one faulted gate solve was recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryResolution {
    /// Retried on the reference table-evaluation path ([`EvalMode::Reference`])
    /// with the run's own time step. Reference and fast paths are
    /// bit-identical by construction, so this recovery preserves the
    /// bit-for-bit determinism contract.
    ReferenceEval,
    /// Retried on the reference path with a 4× coarser time step — the last
    /// resort when the configured step itself diverges. Accuracy degrades
    /// (the result is *not* bit-identical to a clean run on this gate), which
    /// is why the entry is recorded in the stats for callers to inspect.
    CoarseDt,
}

impl RecoveryResolution {
    /// Short stable label for logs and the serving layer's stats report.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryResolution::ReferenceEval => "reference-eval",
            RecoveryResolution::CoarseDt => "coarse-dt",
        }
    }
}

/// One gate solve that failed (panic, solver error or non-finite output) and
/// was recovered by a degraded retry instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Instance name of the recovered gate.
    pub gate: String,
    /// Name of the gate's output net.
    pub net: String,
    /// What the primary attempt died of (panic payload, solver error or a
    /// non-finite-output description).
    pub failure: String,
    /// Which degraded setting produced the committed waveform.
    pub resolution: RecoveryResolution,
}

/// Activity counters of one simulation run.
///
/// The cache counters are **per-run deltas**: with shared [`SimCaches`] the
/// underlying caches are cumulative across runs, so each run snapshots the
/// counters before and after and reports the difference. That delta is only
/// meaningful when no concurrent run shares the same caches — the query
/// server guarantees this by serializing runs through its session lock.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetsimStats {
    /// Gates handed to the numerical engine (at least one active input).
    pub gates_simulated: usize,
    /// Gates resolved to a DC level without touching the engine.
    pub gates_skipped: usize,
    /// Gates outside the re-evaluated cone whose committed waveforms were
    /// reused from the previous result (only [`resimulate_netlist`] sets
    /// this; full runs touch every gate).
    pub gates_reused: usize,
    /// Nets (primary inputs included) whose waveform excursion exceeded the
    /// event threshold.
    pub events: usize,
    /// Delay-cache lookups answered from the memoized per-(cell, backend,
    /// load-bucket) cache.
    pub cache_hits: usize,
    /// Delay-cache lookups that had to compute their value.
    pub cache_misses: usize,
    /// Gate solves answered whole from the waveform memo cache (zero unless
    /// [`SimCaches::waveforms`] is supplied).
    pub waveform_hits: usize,
    /// Gate solves that ran the numerical engine and were then memoized.
    pub waveform_misses: usize,
    /// High-water mark of simultaneously live waveforms in the
    /// [`WaveformStore`] (nets holding a full trace or non-DC handoff
    /// samples). With [`Observe::All`] this approaches the net count; in
    /// streaming mode it tracks the schedule's level width.
    pub peak_live_waveforms: usize,
    /// Total breakpoints removed from fanout handoffs by
    /// [`NetsimOptions::thin_eps`] thinning (zero when thinning is off).
    pub breakpoints_dropped: usize,
    /// Gates whose primary solve failed (panic, solver error, non-finite
    /// output) and were committed from a degraded retry instead, in level
    /// order. Empty on a healthy run.
    pub recoveries: Vec<Recovery>,
}

/// Shared caches threaded through a sequence of simulations.
///
/// Both caches follow the same scope rule: **one model library per cache**
/// (see [`DelayCache`] / [`WaveformCache`]). A long-running session that
/// keeps a netlist resident passes the same `SimCaches` to every run so warm
/// queries skip re-resolving families, pin capacitances and — with
/// [`SimCaches::waveforms`] set — entire gate solves.
#[derive(Debug, Clone, Copy)]
pub struct SimCaches<'a> {
    /// Model-family + pin-capacitance memoization.
    pub delay: &'a DelayCache,
    /// Whole-gate-solve memoization; `None` disables waveform memoization
    /// (every eventful gate runs the engine, exactly like
    /// [`simulate_netlist`]).
    pub waveforms: Option<&'a WaveformCache>,
}

/// The per-net waveform state of a running simulation: committed traces,
/// fanout handoff drives and event flags, with streaming release of interior
/// traces when [`Observe::Points`] is active.
///
/// The store owns the memory-bounding machinery of the simulator: each net
/// carries a *remaining-reads* refcount initialized from its fanout degree;
/// the sweep consumes one read per gathered
/// input pin, and when a net's count drains in streaming mode — and the net
/// is not an observation point — its handoff samples are released on the
/// spot. `peak_live_waveforms` records the high-water mark of nets holding
/// sample data (full traces or non-DC drives; DC and analytic drives are
/// O(1) and not counted).
#[derive(Debug)]
pub struct WaveformStore {
    streaming: bool,
    thin_eps: f64,
    observed: Vec<bool>,
    traces: Vec<Option<Waveform>>,
    drives: Vec<Option<DriveWaveform>>,
    active: Vec<bool>,
    remaining_reads: Vec<u32>,
    live: Vec<bool>,
    live_count: usize,
    peak_live: usize,
    breakpoints_dropped: usize,
}

impl WaveformStore {
    /// Builds the store for one run: the observed set is every primary output
    /// plus the nets listed in `observe` (all of them with [`Observe::All`]),
    /// and each net's read refcount is its fanout-pin degree.
    ///
    /// # Errors
    ///
    /// [`NetsimError::InvalidParameter`] if an observation point is out of
    /// range for this netlist.
    pub fn new(netlist: &Netlist, observe: &Observe, thin_eps: f64) -> Result<Self, NetsimError> {
        let nets = netlist.net_count();
        let (streaming, observed) = match observe {
            Observe::All => (false, vec![true; nets]),
            Observe::Points(points) => {
                let mut observed = vec![false; nets];
                for &po in netlist.primary_outputs() {
                    observed[po.index()] = true;
                }
                for &net in points {
                    if net.index() >= nets {
                        return Err(NetsimError::InvalidParameter(format!(
                            "observation point #{} is out of range for a netlist \
                             with {nets} nets",
                            net.index()
                        )));
                    }
                    observed[net.index()] = true;
                }
                (true, observed)
            }
        };
        Ok(WaveformStore {
            streaming,
            thin_eps,
            observed,
            traces: vec![None; nets],
            drives: vec![None; nets],
            active: vec![false; nets],
            remaining_reads: netlist
                .net_refs()
                .map(|net| netlist.fanout_of(net).len() as u32)
                .collect(),
            live: vec![false; nets],
            live_count: 0,
            peak_live: 0,
            breakpoints_dropped: 0,
        })
    }

    /// Whether this store streams (drops un-observed traces).
    pub fn streaming(&self) -> bool {
        self.streaming
    }

    /// Whether a net keeps its full trace in the result.
    pub fn is_observed(&self, net: NetRef) -> bool {
        self.observed[net.index()]
    }

    /// High-water mark of simultaneously live waveforms so far.
    pub fn peak_live_waveforms(&self) -> usize {
        self.peak_live
    }

    /// Breakpoints removed by handoff thinning so far.
    pub fn breakpoints_dropped(&self) -> usize {
        self.breakpoints_dropped
    }

    fn wants_trace(&self, idx: usize) -> bool {
        self.observed[idx] || !self.streaming
    }

    fn refresh_live(&mut self, idx: usize) {
        let now = self.traces[idx].is_some()
            || matches!(
                self.drives[idx],
                Some(DriveWaveform::Pwl(_)) | Some(DriveWaveform::Sampled(_))
            );
        if now != self.live[idx] {
            self.live[idx] = now;
            if now {
                self.live_count += 1;
                self.peak_live = self.peak_live.max(self.live_count);
            } else {
                self.live_count -= 1;
            }
        }
    }

    /// The committed handoff drive of a net. The level schedule plus the
    /// fanout refcounts guarantee every input a gate gathers is still held.
    fn drive(&self, net: NetRef) -> &DriveWaveform {
        self.drives[net.index()]
            .as_ref()
            .expect("level order and fanout refcounts guarantee committed inputs")
    }

    fn is_active(&self, net: NetRef) -> bool {
        self.active[net.index()]
    }

    /// Commits a primary input: event flag from the drive's span, trace (if
    /// kept) sampled from the drive, handoff re-wrapped so sampled drives fan
    /// out as a shared PWL (`Arc` clones, not sample copies — evaluation is
    /// bit-identical through `Waveform::value_at`).
    fn commit_input(
        &mut self,
        net: NetRef,
        drive: &DriveWaveform,
        t_stop: f64,
        event_threshold: f64,
    ) -> Result<(), NetsimError> {
        let idx = net.index();
        let (lo, hi) = drive_span(drive, t_stop);
        self.active[idx] = hi - lo >= event_threshold;
        if self.wants_trace(idx) {
            self.traces[idx] = Some(drive_to_waveform(drive, t_stop)?);
        }
        self.drives[idx] = Some(match drive {
            DriveWaveform::Sampled(w) => DriveWaveform::from_waveform(w.clone()),
            other => other.clone(),
        });
        self.refresh_live(idx);
        Ok(())
    }

    /// Commits a quiescent gate output: DC handoff, flat two-point trace when
    /// the net is kept (streaming skips even that allocation).
    fn commit_quiescent(
        &mut self,
        net: NetRef,
        level_v: f64,
        t_stop: f64,
    ) -> Result<(), NetsimError> {
        let idx = net.index();
        if self.wants_trace(idx) {
            self.traces[idx] = Some(Waveform::new(vec![0.0, t_stop], vec![level_v, level_v])?);
        }
        self.drives[idx] = Some(DriveWaveform::dc(level_v));
        self.refresh_live(idx);
        Ok(())
    }

    /// Commits an engine-solved gate output. Eventful outputs hand fanouts
    /// the solved samples (shared, or thinned to `thin_eps`); settled outputs
    /// hand a DC level so quiescence keeps propagating. The full trace is
    /// kept only when the net is observed (or the store is non-streaming).
    fn commit_solved(&mut self, net: NetRef, waveform: Arc<Waveform>, event_threshold: f64) {
        let idx = net.index();
        let (lo, hi) = (waveform.min_value(), waveform.max_value());
        if hi - lo >= event_threshold {
            self.active[idx] = true;
            self.drives[idx] = Some(if self.thin_eps > 0.0 {
                let thinned = waveform.thin(self.thin_eps);
                self.breakpoints_dropped += waveform.len().saturating_sub(thinned.len());
                DriveWaveform::from_waveform(thinned)
            } else {
                DriveWaveform::Pwl(Arc::clone(&waveform))
            });
        } else {
            // The output barely moved: hand fanouts its settled DC level so
            // quiescence keeps propagating, but keep the solved waveform for
            // reporting where the net is observed.
            self.drives[idx] = Some(DriveWaveform::dc(waveform.final_value()));
        }
        if self.wants_trace(idx) {
            self.traces[idx] = Some(match Arc::try_unwrap(waveform) {
                Ok(w) => w,
                Err(shared) => (*shared).clone(),
            });
        }
        self.refresh_live(idx);
    }

    /// Re-commits a net from a previous (non-streamed) result, for the gates
    /// outside an incremental re-evaluation cone.
    fn preload(&mut self, net: NetRef, trace: Waveform, drive: DriveWaveform, active: bool) {
        let idx = net.index();
        self.traces[idx] = Some(trace);
        self.drives[idx] = Some(drive);
        self.active[idx] = active;
        self.refresh_live(idx);
    }

    /// Records one fanout pin having gathered this net. In streaming mode,
    /// draining the count on an un-observed net releases its handoff samples
    /// immediately — the schedule can never ask for them again.
    fn consume(&mut self, net: NetRef) {
        let idx = net.index();
        self.remaining_reads[idx] = self.remaining_reads[idx].saturating_sub(1);
        if self.streaming && self.remaining_reads[idx] == 0 && !self.observed[idx] {
            self.drives[idx] = None;
            self.refresh_live(idx);
        }
    }
}

/// The result of a netlist transient simulation: one voltage waveform per
/// *observed* net — primary inputs sampled from their drives, gate outputs
/// either solved by the engine or resolved to their DC level. With
/// [`Observe::All`] (the default) every net is observed; in streaming mode
/// un-observed nets report `None`.
#[derive(Debug, Clone)]
pub struct NetsimResult {
    waveforms: Vec<Option<Waveform>>,
    net_names: Vec<String>,
    vdd: f64,
    stats: NetsimStats,
    /// Committed per-net handoff drives, kept so [`resimulate_netlist`] can
    /// hand untouched nets' exact drives (Arc'd PWL or DC, cheap clones) to
    /// the gates inside a re-evaluated cone. Streamed results release
    /// un-observed entries.
    drives: Vec<Option<DriveWaveform>>,
    /// Committed per-net event flags, carried over for nets outside a
    /// re-evaluated cone.
    active: Vec<bool>,
    /// Which nets were observation points for this run.
    observed: Vec<bool>,
    /// Whether the run streamed (dropped un-observed traces).
    streamed: bool,
}

impl NetsimResult {
    /// The waveform on a net, or `None` if the run streamed
    /// ([`Observe::Points`]) and the net was not an observation point.
    /// Non-streamed results return `Some` for every net.
    pub fn waveform(&self, net: NetRef) -> Option<&Waveform> {
        self.waveforms[net.index()].as_ref()
    }

    /// Whether a net was an observation point of this run (always true for
    /// non-streamed runs).
    pub fn observed(&self, net: NetRef) -> bool {
        self.observed[net.index()]
    }

    /// Whether this run streamed (kept traces only on observation points).
    pub fn streamed(&self) -> bool {
        self.streamed
    }

    /// Name of a net (mirrors the simulated netlist, so results stay
    /// printable without holding onto the netlist).
    pub fn net_name(&self, net: NetRef) -> &str {
        &self.net_names[net.index()]
    }

    /// Number of nets (observed or not).
    pub fn net_count(&self) -> usize {
        self.waveforms.len()
    }

    /// Supply voltage the arrival/slew thresholds are relative to.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Activity counters of the run.
    pub fn stats(&self) -> NetsimStats {
        self.stats.clone()
    }

    /// The 50 % crossing time of the waveform on a net, for the given
    /// direction. `None` if the net never crosses — or is not observed.
    pub fn arrival_time(&self, net: NetRef, rising: bool) -> Option<f64> {
        self.waveform(net)?.crossing(0.5 * self.vdd, rising)
    }

    /// The earliest 50 % crossing in either direction, with the direction
    /// that produced it — the symmetric counterpart of
    /// `mcsm_sta::arrival::TimingResult::arrival_any`, sharing its tie-break
    /// through [`mcsm_spice::waveform::earliest_crossing`] so netsim and STA
    /// arrivals compare without guessing edge polarities.
    pub fn arrival_any(&self, net: NetRef) -> Option<(f64, bool)> {
        mcsm_spice::waveform::earliest_crossing(
            self.arrival_time(net, true),
            self.arrival_time(net, false),
        )
    }

    /// The 10 %–90 % transition time of the waveform on a net. `None` if it
    /// never completes the transition — or is not observed.
    pub fn slew(&self, net: NetRef, rising: bool) -> Option<f64> {
        self.waveform(net)?.transition_time(self.vdd, rising)
    }
}

/// The voltage span `[min, max]` a drive covers over `[0, t_stop]`.
///
/// Analytic drives are evaluated at their slope breakpoints (plus the window
/// ends) — exact for every `SourceWaveform` shape, which is piecewise linear
/// between breakpoints. Sampled/PWL drives take their in-window samples plus
/// the interpolated window ends.
fn drive_span(drive: &DriveWaveform, t_stop: f64) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut take = |v: f64| {
        lo = lo.min(v);
        hi = hi.max(v);
    };
    match drive {
        DriveWaveform::Analytic(src) => {
            take(src.eval(0.0));
            take(src.eval(t_stop));
            for b in src.breakpoints() {
                if b > 0.0 && b < t_stop {
                    take(src.eval(b));
                }
            }
        }
        DriveWaveform::Sampled(w) => span_of_waveform(w, t_stop, &mut take),
        DriveWaveform::Pwl(w) => span_of_waveform(w, t_stop, &mut take),
    }
    (lo, hi)
}

fn span_of_waveform(w: &Waveform, t_stop: f64, take: &mut impl FnMut(f64)) {
    take(w.value_at(0.0));
    take(w.value_at(t_stop));
    for (&t, &v) in w.times().iter().zip(w.values()) {
        if t > 0.0 && t < t_stop {
            take(v);
        }
    }
}

/// Samples a drive into a full [`Waveform`] over `[0, t_stop]`, for reporting
/// primary-input nets. Analytic drives keep their exact breakpoint structure;
/// sampled drives pass through unchanged.
fn drive_to_waveform(drive: &DriveWaveform, t_stop: f64) -> Result<Waveform, NetsimError> {
    match drive {
        DriveWaveform::Analytic(src) => {
            let mut times = vec![0.0];
            let mut breaks = src.breakpoints();
            breaks.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
            for b in breaks {
                if b > 0.0 && b < t_stop && times.last() != Some(&b) {
                    times.push(b);
                }
            }
            if times.last() != Some(&t_stop) {
                times.push(t_stop);
            }
            let values = times.iter().map(|&t| src.eval(t)).collect();
            Ok(Waveform::new(times, values)?)
        }
        DriveWaveform::Sampled(w) => Ok(w.clone()),
        DriveWaveform::Pwl(w) => Ok((**w).clone()),
    }
}

/// One gate's solve job: the model, its gathered input range in the level's
/// shared drive pool, and the output net. Holding a `Range` instead of an
/// owned `Vec` keeps the gather phase allocation-free across levels.
struct GateSolve<'a> {
    model: &'a mcsm_core::store::ModelStore,
    kind: mcsm_cells::cell::CellKind,
    inputs: Range<usize>,
    load: f64,
    gate: GateRef,
    output: NetRef,
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs one solve attempt with panic isolation: a panicking gate becomes an
/// `Err(description)` instead of tearing down the level sweep (the worker
/// closure runs under `par_map`, whose scope would otherwise re-raise).
fn run_guarded<T>(f: impl FnOnce() -> Result<T, NetsimError>) -> Result<T, String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(e)) => Err(e.to_string()),
        Err(payload) => Err(format!("gate solve panicked: {}", panic_message(&*payload))),
    }
}

/// Whether every sample of a solved waveform is finite — the divergence
/// detector of the degraded-mode retry chain.
fn waveform_is_finite(w: &Waveform) -> bool {
    w.values().iter().all(|v| v.is_finite())
}

/// A copy of `calculator` stepping on the reference table-evaluation path,
/// with `dt` scaled by `dt_factor` (`1.0` keeps the configured step).
fn degraded_calculator(calculator: &DelayCalculator, dt_factor: f64) -> DelayCalculator {
    let mut degraded = calculator.clone();
    degraded.sim.eval = EvalMode::Reference;
    degraded.sim.dt = (calculator.sim.dt * dt_factor).min(calculator.sim.t_stop);
    degraded
}

/// Solves one gate with fault injection, divergence detection and the
/// degraded-mode retry chain.
///
/// The primary attempt runs the configured calculator through the waveform
/// memo; a failure (injected or real panic, solver error, or non-finite
/// output samples) is retried first on the reference evaluation path
/// (bit-identical to the fast path by construction) and then on the reference
/// path with a 4× coarser step. Both retries bypass the waveform memo — its
/// keys do not include the time step, so caching a degraded solve would
/// poison warm queries. An unrecoverable gate yields
/// [`NetsimError::GateUnrecoverable`] naming the gate, its output net and
/// every attempted fallback.
fn solve_gate_resilient(
    netlist: &Netlist,
    options: &NetsimOptions,
    cache: &DelayCache,
    waveforms: Option<&WaveformCache>,
    inputs: &[DriveWaveform],
    solve: &GateSolve<'_>,
) -> Result<(Waveform, Option<Recovery>), NetsimError> {
    if let Some(deadline) = &options.deadline {
        if deadline.expired() {
            return Err(NetsimError::Cancelled {
                context: format!(
                    "gate `{}` (net `{}`)",
                    netlist.gate_name(solve.gate),
                    netlist.net_name(solve.output)
                ),
            });
        }
    }
    let mut gate_span = mcsm_obs::span("netsim.gate");
    gate_span.arg("gate", solve.gate.index() as f64);
    gate_span.arg("net", solve.output.index() as f64);
    let fault = options.fault.as_deref();
    let key = solve.output.index() as u64;
    let primary = run_guarded(|| {
        if let Some(plan) = fault {
            if plan.fires(site::NETSIM_GATE_PANIC, key) {
                panic!("injected fault `{}` (key {key})", site::NETSIM_GATE_PANIC);
            }
        }
        let waveform = options.calculator.gate_output_memoized(
            solve.model,
            solve.kind,
            inputs,
            solve.load,
            Some(cache),
            waveforms,
        )?;
        if let Some(plan) = fault {
            if plan.fires(site::NETSIM_GATE_DIVERGE, key) {
                // Simulated solver divergence: the committed samples come back
                // NaN-poisoned, exactly as a runaway explicit step would look.
                // The memo already holds the *clean* solve (inserted above),
                // so warm queries are unaffected.
                let times = waveform.times().to_vec();
                let values = vec![f64::NAN; times.len()];
                return Ok(Waveform::new(times, values)?);
            }
        }
        Ok(waveform)
    });
    let failure = match primary {
        Ok(w) if waveform_is_finite(&w) => return Ok((w, None)),
        Ok(_) => "non-finite output samples (solver divergence)".to_string(),
        Err(description) => description,
    };

    let recovery = |resolution: RecoveryResolution| Recovery {
        gate: netlist.gate_name(solve.gate).to_string(),
        net: netlist.net_name(solve.output).to_string(),
        failure: failure.clone(),
        resolution,
    };
    let mut attempted = Vec::new();
    for resolution in [
        RecoveryResolution::ReferenceEval,
        RecoveryResolution::CoarseDt,
    ] {
        attempted.push(resolution.label());
        let calculator = match resolution {
            RecoveryResolution::ReferenceEval => degraded_calculator(&options.calculator, 1.0),
            RecoveryResolution::CoarseDt => degraded_calculator(&options.calculator, 4.0),
        };
        let retry = run_guarded(|| {
            Ok(calculator.gate_output_cached(
                solve.model,
                solve.kind,
                inputs,
                solve.load,
                Some(cache),
            )?)
        });
        if let Ok(w) = retry {
            if waveform_is_finite(&w) {
                gate_span.arg("recovered", 1.0);
                return Ok((w, Some(recovery(resolution))));
            }
        }
    }
    Err(NetsimError::GateUnrecoverable {
        gate: netlist.gate_name(solve.gate).to_string(),
        net: netlist.net_name(solve.output).to_string(),
        failure,
        attempted: attempted.join(", "),
    })
}

/// Simulates a whole netlist: every primary input driven by
/// `input_drives[net]`, every other net's waveform computed by chaining
/// per-gate model solves through the level schedule.
///
/// The model family each gate runs is the calculator's backend exactly as in
/// the STA layer (including the §3.4 selective policy and the documented
/// fallback chains); loads come from [`effective_load`]. Gates whose inputs
/// are all quiescent are resolved to DC without entering the engine — see the
/// module docs for the event model. With [`NetsimOptions::observe`] set to
/// [`Observe::Points`] the run streams: see [`WaveformStore`].
///
/// # Errors
///
/// * [`NetsimError::SequentialNetlist`] — the netlist contains register
///   gates (clocked simulation lives in `mcsm-seq`);
/// * [`NetsimError::MissingDrive`] — a primary input has no drive;
/// * [`NetsimError::DrivenInternalNet`] — a drive targets a non-input net;
/// * [`NetsimError::InvalidParameter`] — a malformed threshold, thinning
///   bound or observation point;
/// * [`NetsimError::Sta`] — model resolution or per-gate evaluation failed.
pub fn simulate_netlist(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
) -> Result<NetsimResult, NetsimError> {
    let cache = DelayCache::new();
    run_levels(
        netlist,
        library,
        input_drives,
        options,
        SimCaches {
            delay: &cache,
            waveforms: None,
        },
        None,
    )
}

/// Like [`simulate_netlist`], but consulting caller-owned [`SimCaches`]
/// instead of a fresh per-run [`DelayCache`] — the full-run entry point of a
/// long-running session. With a warm [`WaveformCache`] a repeated run skips
/// the numerical engine entirely; results are bit-identical to
/// [`simulate_netlist`] at any thread count and cache temperature (exact-bits
/// memo keys — see [`WaveformCache`]).
///
/// # Errors
///
/// Same as [`simulate_netlist`].
pub fn simulate_netlist_cached(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
    caches: SimCaches<'_>,
) -> Result<NetsimResult, NetsimError> {
    run_levels(netlist, library, input_drives, options, caches, None)
}

/// Incremental re-simulation after an ECO edit or drive change: re-solves
/// only the downstream [`cone_of_influence`] of `seeds`, reusing the
/// committed waveforms of `previous` for every net outside the cone.
///
/// `seeds` must cover every gate whose inputs, model or effective load
/// changed since `previous` was computed — the `seeds_for_*` helpers in
/// [`crate::schedule`] produce the right seeds for drive changes, gate
/// retypes and net-load edits. Downstream closure is taken here, so callers
/// pass only the directly-invalidated gates.
///
/// The structural cone is a superset of the dynamic activity cone, so the
/// result is **bit-identical** to a from-scratch [`simulate_netlist_cached`]
/// run of the edited netlist: every reused net provably sees bit-identical
/// inputs and loads. `stats.gates_reused` counts the gates that were not
/// re-solved.
///
/// Incremental runs require full retention on both sides: a streamed
/// `previous` has released the very waveforms reuse depends on, and a
/// streamed re-run could not be reused later itself — both are rejected.
///
/// # Errors
///
/// Same as [`simulate_netlist`], plus [`NetsimError::InvalidParameter`] when
/// `previous` was computed on a netlist with a different net count, when
/// `previous` streamed, or when `options.observe` is not [`Observe::All`].
pub fn resimulate_netlist(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
    caches: SimCaches<'_>,
    previous: &NetsimResult,
    seeds: &[GateRef],
) -> Result<NetsimResult, NetsimError> {
    if previous.net_count() != netlist.net_count() {
        return Err(NetsimError::InvalidParameter(format!(
            "previous result has {} nets, netlist has {} — resimulate requires \
             the result of this same netlist",
            previous.net_count(),
            netlist.net_count()
        )));
    }
    if previous.streamed() {
        return Err(NetsimError::InvalidParameter(
            "previous result streamed (Observe::Points) and released its \
             interior waveforms — incremental re-simulation needs a full \
             Observe::All result"
                .to_string(),
        ));
    }
    if options.observe != Observe::All {
        return Err(NetsimError::InvalidParameter(
            "incremental re-simulation requires Observe::All — streamed runs \
             cannot be reused as a future `previous`"
                .to_string(),
        ));
    }
    let cone = cone_of_influence(netlist, seeds);
    run_levels(
        netlist,
        library,
        input_drives,
        options,
        caches,
        Some((previous, &cone)),
    )
}

/// The one level-sweep engine behind every public entry point. With
/// `previous = Some((result, cone))`, gates outside `cone` are pre-committed
/// from `result` and skipped by the sweep.
fn run_levels(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
    caches: SimCaches<'_>,
    previous: Option<(&NetsimResult, &[GateRef])>,
) -> Result<NetsimResult, NetsimError> {
    if let Some(gate) = netlist
        .gate_refs()
        .find(|&g| netlist.gate_kind(g).is_sequential())
    {
        return Err(NetsimError::SequentialNetlist {
            gate: netlist.gate_name(gate).to_string(),
        });
    }
    for &pi in netlist.primary_inputs() {
        if !input_drives.contains_key(&pi) {
            return Err(NetsimError::MissingDrive(netlist.net_name(pi).to_string()));
        }
    }
    for &net in input_drives.keys() {
        if !netlist.is_primary_input(net) {
            return Err(NetsimError::DrivenInternalNet(
                netlist.net_name(net).to_string(),
            ));
        }
    }
    if !(options.event_threshold >= 0.0) || !options.event_threshold.is_finite() {
        return Err(NetsimError::InvalidParameter(format!(
            "event threshold must be finite and non-negative, got {}",
            options.event_threshold
        )));
    }
    if !(options.thin_eps >= 0.0) || !options.thin_eps.is_finite() {
        return Err(NetsimError::InvalidParameter(format!(
            "thin_eps must be finite and non-negative, got {}",
            options.thin_eps
        )));
    }

    let t_stop = options.calculator.sim.t_stop;
    let vdd = options.calculator.vdd;
    let cache = caches.delay;
    let mut run_span = mcsm_obs::span("netsim.run");
    run_span.arg("gates", netlist.gate_count() as f64);
    run_span.arg("incremental", if previous.is_some() { 1.0 } else { 0.0 });
    let mut stats = NetsimStats::default();
    // Cache counters are cumulative across runs of shared caches; report this
    // run's contribution as a delta (the session layer serializes runs, so no
    // concurrent run perturbs the snapshot).
    let delay_hits_before = cache.hits();
    let delay_misses_before = cache.misses();
    let waveform_counts_before = caches.waveforms.map(|w| (w.hits(), w.misses()));

    // Per-net handoff state, committed level by level and released eagerly
    // when streaming.
    let mut store = WaveformStore::new(netlist, &options.observe, options.thin_eps)?;

    // Incremental scope: pre-commit every out-of-cone gate's output from the
    // previous result, then let the sweep skip those gates entirely.
    // (`previous` is never streamed — resimulate_netlist rejects that — so
    // every reused entry is present.)
    let in_cone: Option<Vec<bool>> = match previous {
        Some((prev, cone)) => {
            let mut mask = vec![false; netlist.gate_count()];
            for gate in cone {
                mask[gate.index()] = true;
            }
            for gate in netlist.gate_refs() {
                if !mask[gate.index()] {
                    let out = netlist.output_of(gate).index();
                    store.preload(
                        netlist.output_of(gate),
                        prev.waveforms[out]
                            .as_ref()
                            .expect("non-streamed results hold every waveform")
                            .clone(),
                        prev.drives[out]
                            .as_ref()
                            .expect("non-streamed results hold every drive")
                            .clone(),
                        prev.active[out],
                    );
                    stats.gates_reused += 1;
                }
            }
            Some(mask)
        }
        None => None,
    };

    for (&net, drive) in input_drives {
        store.commit_input(net, drive, t_stop, options.event_threshold)?;
    }

    let schedule = topological_levels(netlist);
    // Per-level scratch, reused across levels so the sequential gather phase
    // stays allocation-free once the deepest level has been seen.
    let mut level_inputs: Vec<DriveWaveform> = Vec::new();
    let mut solves: Vec<GateSolve<'_>> = Vec::new();
    let mut logic_buf: Vec<bool> = Vec::new();
    let mut level_count = 0u64;
    for (level_index, level) in schedule.iter().enumerate() {
        level_count += 1;
        let mut level_span = mcsm_obs::span("netsim.level");
        let solved_before = stats.gates_simulated;
        let skipped_before = stats.gates_skipped;
        let recovered_before = stats.recoveries.len();
        let mut level_reused = 0usize;
        // Cooperative cancellation checkpoint: a request whose deadline
        // passed abandons the sweep here (and again per gate inside the solve
        // closure) without touching any caller-owned committed state.
        if let Some(deadline) = &options.deadline {
            if deadline.expired() {
                return Err(NetsimError::Cancelled {
                    context: "level sweep".to_string(),
                });
            }
        }
        // Gather phase (sequential, cheap): split the level into gates that
        // saw an event and gates that stayed quiescent. Input drives land in
        // one flat pool per level; each solve keeps a range into it.
        level_inputs.clear();
        solves.clear();
        for &gate_ref in level {
            if let Some(mask) = &in_cone {
                if !mask[gate_ref.index()] {
                    level_reused += 1;
                    continue; // pre-committed from the previous result
                }
            }
            let kind = netlist.gate_kind(gate_ref);
            let inputs = netlist.inputs_of(gate_ref);
            let output = netlist.output_of(gate_ref);

            if inputs.iter().any(|&net| store.is_active(net)) {
                // Cloning the drives is cheap by construction: handoff drives
                // are `Pwl` (Arc'd samples) and quiescent nets are DC.
                let start = level_inputs.len();
                for &net in inputs {
                    level_inputs.push(store.drive(net).clone());
                }
                let load =
                    effective_load(netlist, library, cache, output, options.primary_output_load)?;
                solves.push(GateSolve {
                    model: library.store(kind)?,
                    kind,
                    inputs: start..level_inputs.len(),
                    load,
                    gate: gate_ref,
                    output,
                });
                stats.gates_simulated += 1;
            } else {
                // Quiescent gate: its output is the DC level of its Boolean
                // function at the input logic values — no engine run, and no
                // waveform clones either (only initial values are read).
                logic_buf.clear();
                for &net in inputs {
                    logic_buf.push(store.drive(net).initial_value() > 0.5 * vdd);
                }
                let level_v = if kind.evaluate(&logic_buf) { vdd } else { 0.0 };
                store.commit_quiescent(output, level_v, t_stop)?;
                stats.gates_skipped += 1;
            }
            // Every input pin of this gate has gathered what it needs; in
            // streaming mode a drained un-observed net frees its samples now.
            for &net in inputs {
                store.consume(net);
            }
        }

        // Solve phase: every eventful gate of the level in parallel, through
        // the waveform memo when one is supplied (a warm hit skips the engine
        // with bit-identical output — exact-bits keys). Each solve is panic-
        // isolated and retried on degraded settings before giving up; fault
        // decisions are pure functions of (seed, site, output-net index), so
        // the same faults fire at every thread count.
        let outputs = par::par_map(options.threads, &solves, |_, solve| {
            solve_gate_resilient(
                netlist,
                options,
                cache,
                caches.waveforms,
                &level_inputs[solve.inputs.clone()],
                solve,
            )
        });

        // Commit phase (sequential, in level order, so the first error — and
        // the recovery log — matches what a sequential sweep would report).
        for (solve, outcome) in solves.iter().zip(outputs) {
            let (waveform, recovery) = outcome?;
            if let Some(recovery) = recovery {
                stats.recoveries.push(recovery);
            }
            store.commit_solved(solve.output, Arc::new(waveform), options.event_threshold);
        }

        if level_span.enabled() {
            level_span.arg("level", level_index as f64);
            level_span.arg("solved", (stats.gates_simulated - solved_before) as f64);
            level_span.arg("skipped", (stats.gates_skipped - skipped_before) as f64);
            level_span.arg("reused", level_reused as f64);
            level_span.arg(
                "recovered",
                (stats.recoveries.len() - recovered_before) as f64,
            );
        }
    }

    stats.peak_live_waveforms = store.peak_live_waveforms();
    stats.breakpoints_dropped = store.breakpoints_dropped();
    stats.cache_hits = cache.hits() - delay_hits_before;
    stats.cache_misses = cache.misses() - delay_misses_before;
    if let (Some(w), Some((hits_before, misses_before))) =
        (caches.waveforms, waveform_counts_before)
    {
        stats.waveform_hits = w.hits() - hits_before;
        stats.waveform_misses = w.misses() - misses_before;
    }

    let WaveformStore {
        streaming,
        observed,
        traces,
        drives,
        active,
        ..
    } = store;
    stats.events = active.iter().filter(|&&a| a).count();

    // Mirror the per-run stats into the global metric registry. Every value
    // is a deterministic function of the workload (pinned at 1/2/8 threads by
    // the netsim determinism tests), so counter snapshots stay bit-identical
    // across thread schedules.
    mcsm_obs::counters(&[
        ("netsim.runs", 1),
        ("netsim.levels", level_count),
        ("netsim.gates_simulated", stats.gates_simulated as u64),
        ("netsim.gates_skipped", stats.gates_skipped as u64),
        ("netsim.gates_reused", stats.gates_reused as u64),
        ("netsim.events", stats.events as u64),
        ("netsim.cache_hits", stats.cache_hits as u64),
        ("netsim.cache_misses", stats.cache_misses as u64),
        ("netsim.waveform_hits", stats.waveform_hits as u64),
        ("netsim.waveform_misses", stats.waveform_misses as u64),
        ("netsim.recoveries", stats.recoveries.len() as u64),
        (
            "netsim.breakpoints_dropped",
            stats.breakpoints_dropped as u64,
        ),
    ]);
    mcsm_obs::gauge_max(
        "netsim.peak_live_waveforms",
        stats.peak_live_waveforms as f64,
    );
    if run_span.enabled() {
        run_span.arg("levels", level_count as f64);
        run_span.arg("solved", stats.gates_simulated as f64);
        run_span.arg("skipped", stats.gates_skipped as f64);
        run_span.arg("reused", stats.gates_reused as f64);
        run_span.arg("recovered", stats.recoveries.len() as f64);
    }

    // Netlist validation guarantees every net is a primary input or a gate
    // output, so a non-streamed schedule reaches all of them; a streamed run
    // intentionally holds `None` for released interior nets.
    if !streaming {
        for (net, (waveform, drive)) in netlist.net_refs().zip(traces.iter().zip(&drives)) {
            if waveform.is_none() || drive.is_none() {
                return Err(NetsimError::InvalidParameter(format!(
                    "net `{}` was never reached by the schedule",
                    netlist.net_name(net)
                )));
            }
        }
    }

    Ok(NetsimResult {
        waveforms: traces,
        net_names: netlist
            .net_refs()
            .map(|n| netlist.net_name(n).to_string())
            .collect(),
        vdd,
        stats,
        drives,
        active,
        observed,
        streamed: streaming,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsm_cells::cell::CellKind;
    use mcsm_cells::tech::Technology;
    use mcsm_core::config::CharacterizationConfig;
    use mcsm_core::sim::CsmSimOptions;
    use mcsm_net::{inverter_chain, nand_chain, NetlistBuilder};
    use mcsm_sta::delaycalc::DelayBackend;

    fn library() -> ModelLibrary {
        ModelLibrary::characterize(
            &Technology::cmos_130nm(),
            &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
            &CharacterizationConfig::coarse(),
        )
        .unwrap()
    }

    fn options(vdd: f64) -> NetsimOptions {
        NetsimOptions::new(
            DelayCalculator::new(
                DelayBackend::CompleteMcsm,
                CsmSimOptions::new(4e-9, 2e-12),
                vdd,
            ),
            2e-15,
        )
    }

    #[test]
    fn drive_span_is_exact_for_analytic_and_sampled_shapes() {
        let ramp = DriveWaveform::rising_ramp(1.2, 1e-9, 100e-12);
        let (lo, hi) = drive_span(&ramp, 4e-9);
        assert_eq!((lo, hi), (0.0, 1.2));
        // A ramp that starts after the window never registers as an event.
        let late = DriveWaveform::rising_ramp(1.2, 9e-9, 100e-12);
        let (lo, hi) = drive_span(&late, 4e-9);
        assert_eq!((lo, hi), (0.0, 0.0));
        let dc = DriveWaveform::dc(0.7);
        assert_eq!(drive_span(&dc, 4e-9), (0.7, 0.7));
        // A pulse's peak is a breakpoint, so a mid-window pulse is caught
        // even though its endpoints sit at the base level.
        let pulse = DriveWaveform::Analytic(mcsm_spice::source::SourceWaveform::Pulse {
            base: 0.0,
            peak: 1.2,
            t_delay: 1e-9,
            t_rise: 50e-12,
            t_width: 100e-12,
            t_fall: 50e-12,
        });
        let (lo, hi) = drive_span(&pulse, 4e-9);
        assert_eq!((lo, hi), (0.0, 1.2));
        let sampled = DriveWaveform::Sampled(
            Waveform::new(vec![0.0, 1e-9, 2e-9], vec![0.1, 0.9, 0.2]).unwrap(),
        );
        let (lo, hi) = drive_span(&sampled, 4e-9);
        assert_eq!((lo, hi), (0.1, 0.9));
        // Samples beyond the window do not count.
        let (lo, hi) = drive_span(&sampled, 0.5e-9);
        assert!((lo - 0.1).abs() < 1e-12 && (hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drive_to_waveform_keeps_breakpoints_and_passthrough() {
        let ramp = DriveWaveform::falling_ramp(1.2, 1e-9, 100e-12);
        let w = drive_to_waveform(&ramp, 4e-9).unwrap();
        assert_eq!(w.times(), &[0.0, 1e-9, 1e-9 + 100e-12, 4e-9]);
        assert_eq!(w.values(), &[1.2, 1.2, 0.0, 0.0]);
        let dc = drive_to_waveform(&DriveWaveform::dc(0.3), 4e-9).unwrap();
        assert_eq!(dc.len(), 2);
        assert_eq!(dc.final_value(), 0.3);
        let inner = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let via_pwl =
            drive_to_waveform(&DriveWaveform::from_waveform(inner.clone()), 4e-9).unwrap();
        assert_eq!(&via_pwl, &inner);
    }

    #[test]
    fn quiescent_inputs_skip_every_gate() {
        let netlist = nand_chain(4);
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for &pi in netlist.primary_inputs() {
            drives.insert(pi, DriveWaveform::dc(vdd));
        }
        let result = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();
        let stats = result.stats();
        assert_eq!(stats.gates_simulated, 0);
        assert_eq!(stats.gates_skipped, 4);
        assert_eq!(stats.events, 0);
        // Full retention keeps a (flat) trace on every net.
        assert_eq!(stats.peak_live_waveforms, netlist.net_count());
        assert_eq!(stats.breakpoints_dropped, 0);
        // All-ones inputs: NAND chain alternates 0, 1, 0, 1 down the chain.
        let out = netlist.find_net("out").unwrap();
        assert_eq!(result.waveform(out).unwrap().final_value(), vdd);
        let n0 = netlist.find_net("n0").unwrap();
        assert_eq!(result.waveform(n0).unwrap().final_value(), 0.0);
        // No net ever crosses mid-rail.
        assert_eq!(result.arrival_any(out), None);
        assert!(!result.streamed());
        assert!(result.observed(n0));
    }

    #[test]
    fn events_propagate_only_through_the_active_cone() {
        // Two independent inverter chains; only one input switches.
        let netlist = NetlistBuilder::new("two_chains")
            .primary_input("a")
            .primary_input("b")
            .gate("ua0", CellKind::Inverter, &["a"], "a0")
            .gate("ua1", CellKind::Inverter, &["a0"], "aout")
            .gate("ub0", CellKind::Inverter, &["b"], "b0")
            .gate("ub1", CellKind::Inverter, &["b0"], "bout")
            .primary_output("aout")
            .primary_output("bout")
            .build()
            .unwrap();
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        drives.insert(
            netlist.find_net("a").unwrap(),
            DriveWaveform::rising_ramp(vdd, 1e-9, 80e-12),
        );
        drives.insert(netlist.find_net("b").unwrap(), DriveWaveform::dc(0.0));
        let result = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();
        let stats = result.stats();
        assert_eq!(stats.gates_simulated, 2, "only the switching cone runs");
        assert_eq!(stats.gates_skipped, 2);
        // a, a0, aout saw events; b, b0, bout stayed quiet.
        assert_eq!(stats.events, 3);
        let aout = netlist.find_net("aout").unwrap();
        let (t, rising) = result.arrival_any(aout).unwrap();
        assert!(rising && t > 1e-9, "t = {t}");
        assert!(result.slew(aout, true).unwrap() > 0.0);
        // Double inversion of the quiet 0 V input settles back at 0 V.
        let bout = netlist.find_net("bout").unwrap();
        assert_eq!(result.waveform(bout).unwrap().final_value(), 0.0);
        assert_eq!(result.net_name(bout), "bout");
        assert_eq!(result.net_count(), netlist.net_count());
    }

    #[test]
    fn streaming_points_bound_memory_and_stay_bit_identical() {
        // A 24-stage inverter chain with a switching input: every interior
        // net carries an eventful waveform, so full retention holds ~26 live
        // traces while streaming holds a handful.
        let netlist = inverter_chain(24);
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for &pi in netlist.primary_inputs() {
            drives.insert(pi, DriveWaveform::rising_ramp(vdd, 0.2e-9, 80e-12));
        }
        let out = netlist.primary_outputs()[0];
        let mid = netlist.find_net("n12").unwrap();
        let full = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();
        assert!(!full.streamed());
        assert!(full.stats().peak_live_waveforms >= netlist.net_count() - 1);

        for threads in [1, 2, 8] {
            let streamed = simulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd)
                    .with_threads(threads)
                    .with_observe(Observe::Points(vec![mid])),
            )
            .unwrap();
            assert!(streamed.streamed());
            // Observed nets (the PO plus the requested point) are
            // bit-identical to the full run; interior nets are released.
            assert!(streamed.observed(out) && streamed.observed(mid));
            assert_eq!(streamed.waveform(out), full.waveform(out));
            assert_eq!(streamed.waveform(mid), full.waveform(mid));
            let n5 = netlist.find_net("n5").unwrap();
            assert!(!streamed.observed(n5));
            assert_eq!(streamed.waveform(n5), None);
            assert_eq!(streamed.arrival_any(n5), None);
            assert_eq!(streamed.slew(n5, true), None);
            // Event accounting is untouched by streaming…
            assert_eq!(streamed.stats().events, full.stats().events);
            // …but the live high-water mark collapses: a chain hands each
            // waveform to exactly one fanout, which releases it a level later.
            let peak = streamed.stats().peak_live_waveforms;
            assert!(
                peak <= 6,
                "peak_live_waveforms = {peak} for {} nets",
                netlist.net_count()
            );
        }

        // An out-of-range observation point is rejected up front.
        let bogus = Observe::Points(vec![NetRef::from_index(netlist.net_count())]);
        assert!(matches!(
            simulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_observe(bogus)
            ),
            Err(NetsimError::InvalidParameter(_))
        ));
    }

    #[test]
    fn thinned_handoff_is_error_bounded_and_zero_eps_is_exact() {
        // 5 stages: the final (even-indexed) stage output actually toggles,
        // so `out` has a mid-rail crossing to compare.
        let netlist = nand_chain(5);
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            drives.insert(
                pi,
                DriveWaveform::rising_ramp(vdd, 0.2e-9 + 30e-12 * i as f64, 80e-12),
            );
        }
        let exact = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();

        // thin_eps = 0 is the identity: bit-identical everywhere, nothing
        // dropped.
        let zero = simulate_netlist(
            &netlist,
            &library,
            &drives,
            &options(vdd).with_thin_eps(0.0),
        )
        .unwrap();
        for net in netlist.net_refs() {
            assert_eq!(zero.waveform(net), exact.waveform(net));
        }
        assert_eq!(zero.stats().breakpoints_dropped, 0);

        // A loose bound prunes real breakpoints while the chain's final logic
        // levels survive (each stage's input error is bounded by eps, far
        // inside the gates' noise margins).
        let eps = 0.02;
        let thinned = simulate_netlist(
            &netlist,
            &library,
            &drives,
            &options(vdd).with_thin_eps(eps),
        )
        .unwrap();
        assert!(thinned.stats().breakpoints_dropped > 0);
        let out = netlist.find_net("out").unwrap();
        let t_exact = exact.arrival_any(out).unwrap();
        let t_thin = thinned.arrival_any(out).unwrap();
        assert_eq!(t_exact.1, t_thin.1, "edge polarity survives thinning");
        assert!(
            (t_exact.0 - t_thin.0).abs() < 100e-12,
            "arrival moved {} ps",
            (t_exact.0 - t_thin.0).abs() * 1e12
        );
        // NaN / negative bounds are rejected like bad thresholds.
        assert!(matches!(
            simulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_thin_eps(f64::NAN)
            ),
            Err(NetsimError::InvalidParameter(_))
        ));
    }

    #[test]
    fn warm_waveform_cache_skips_the_engine_bit_identically() {
        let netlist = mcsm_net::c17();
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            drives.insert(
                pi,
                DriveWaveform::falling_ramp(vdd, 1e-9 + 20e-12 * i as f64, 80e-12),
            );
        }
        let plain = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();

        let delay = DelayCache::new();
        let memo = WaveformCache::new();
        let caches = SimCaches {
            delay: &delay,
            waveforms: Some(&memo),
        };
        let cold =
            simulate_netlist_cached(&netlist, &library, &drives, &options(vdd), caches).unwrap();
        let warm =
            simulate_netlist_cached(&netlist, &library, &drives, &options(vdd), caches).unwrap();
        for net in netlist.net_refs() {
            assert_eq!(plain.waveform(net), cold.waveform(net));
            assert_eq!(plain.waveform(net), warm.waveform(net));
        }
        // The cold run solved every eventful gate once; the warm repeat
        // answered all of them from the memo without touching the engine.
        let solved = cold.stats().gates_simulated;
        assert!(solved > 0);
        assert_eq!(cold.stats().waveform_misses, solved);
        assert_eq!(cold.stats().waveform_hits, 0);
        assert_eq!(warm.stats().waveform_misses, 0);
        assert_eq!(warm.stats().waveform_hits, solved);
    }

    #[test]
    fn incremental_resim_touches_only_the_cone_and_pins_full_equality() {
        let mut netlist = mcsm_net::c17();
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            drives.insert(
                pi,
                DriveWaveform::falling_ramp(vdd, 1e-9 + 20e-12 * i as f64, 80e-12),
            );
        }
        let delay = DelayCache::new();
        let caches = SimCaches {
            delay: &delay,
            waveforms: None,
        };
        let baseline =
            simulate_netlist_cached(&netlist, &library, &drives, &options(vdd), caches).unwrap();

        // ECO: bump the load on output net N22 — only its driver g22 resolves.
        let n22 = netlist.find_net("N22").unwrap();
        netlist.set_net_load(n22, 1e-15).unwrap();
        let seeds = crate::schedule::seeds_for_load_change(&netlist, n22);
        for threads in [1, 2, 8] {
            let incremental = resimulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_threads(threads),
                caches,
                &baseline,
                &seeds,
            )
            .unwrap();
            let full = simulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_threads(threads),
            )
            .unwrap();
            for net in netlist.net_refs() {
                assert_eq!(
                    incremental.waveform(net),
                    full.waveform(net),
                    "net {} at {} threads",
                    netlist.net_name(net),
                    threads
                );
            }
            let stats = incremental.stats();
            assert_eq!(stats.gates_simulated + stats.gates_skipped, 1);
            assert_eq!(stats.gates_reused, 5);
        }

        // A stale previous result from a different netlist is rejected.
        let other = nand_chain(2);
        assert!(matches!(
            resimulate_netlist(
                &other,
                &library,
                &drives,
                &options(vdd),
                caches,
                &baseline,
                &[]
            ),
            Err(NetsimError::InvalidParameter(_))
        ));

        // A streamed previous result released its interior waveforms and is
        // rejected, as is a streamed re-run.
        let streamed = simulate_netlist(
            &netlist,
            &library,
            &drives,
            &options(vdd).with_observe(Observe::Points(vec![])),
        )
        .unwrap();
        assert!(matches!(
            resimulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd),
                caches,
                &streamed,
                &seeds
            ),
            Err(NetsimError::InvalidParameter(_))
        ));
        assert!(matches!(
            resimulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_observe(Observe::Points(vec![n22])),
                caches,
                &baseline,
                &seeds
            ),
            Err(NetsimError::InvalidParameter(_))
        ));
    }

    #[test]
    fn sequential_netlists_are_rejected_with_a_pointer_to_seq() {
        let netlist = mcsm_net::s27();
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for &pi in netlist.primary_inputs() {
            drives.insert(pi, DriveWaveform::dc(0.0));
        }
        let err = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap_err();
        assert!(matches!(err, NetsimError::SequentialNetlist { .. }));
        let msg = err.to_string();
        assert!(msg.contains("simulate_sequential"), "{msg}");
    }

    #[test]
    fn missing_and_misplaced_drives_are_rejected() {
        let netlist = nand_chain(2);
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        drives.insert(netlist.find_net("in").unwrap(), DriveWaveform::dc(vdd));
        assert!(matches!(
            simulate_netlist(&netlist, &library, &drives, &options(vdd)),
            Err(NetsimError::MissingDrive(_))
        ));
        for &pi in netlist.primary_inputs() {
            drives.insert(pi, DriveWaveform::dc(vdd));
        }
        drives.insert(netlist.find_net("out").unwrap(), DriveWaveform::dc(0.0));
        assert!(matches!(
            simulate_netlist(&netlist, &library, &drives, &options(vdd)),
            Err(NetsimError::DrivenInternalNet(ref net)) if net == "out"
        ));
        drives.remove(&netlist.find_net("out").unwrap());
        assert!(matches!(
            simulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_event_threshold(f64::NAN),
            ),
            Err(NetsimError::InvalidParameter(_))
        ));
    }
}
