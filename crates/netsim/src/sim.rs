//! The event-driven netlist transient simulator.
//!
//! [`simulate_netlist`] chains per-gate current-source-model solves along a
//! [`Netlist`]: each driver's computed output waveform becomes the drive of
//! its fanout gates (as a shared [`DriveWaveform::Pwl`], so fan-out never
//! copies samples), which is what carries true multiple-input-switching
//! alignment to the MIS/MCSM models at netlist scope — instead of the per-arc
//! delay approximation a conventional timing flow would make.
//!
//! The simulator is *event-driven* at gate granularity: a gate whose inputs
//! all stay within [`NetsimOptions::event_threshold`] of a rail for the whole
//! window is never handed to the numerical engine — its output is the DC
//! level implied by its Boolean function, and that quiescence propagates.
//! On circuits with sparse input activity most gates are skipped entirely,
//! which is where the netlist simulator's throughput advantage over
//! propagate-everything timing comes from. Gates that *do* see an event are
//! solved level-parallel over [`mcsm_num::par`] with the same determinism
//! contract as the STA layer: results are bit-identical at every thread
//! count.

use crate::error::NetsimError;
use crate::schedule::{cone_of_influence, effective_load, topological_levels};
use mcsm_core::sim::DriveWaveform;
use mcsm_net::{GateRef, NetRef, Netlist};
use mcsm_num::par;
use mcsm_spice::waveform::Waveform;
use mcsm_sta::delaycalc::{DelayCache, DelayCalculator, WaveformCache};
use mcsm_sta::models::ModelLibrary;
use std::collections::HashMap;
use std::sync::Arc;

/// Default [`NetsimOptions::event_threshold`] (volts): excursions below 50 mV
/// — deep noise-margin territory for any CMOS rail — are treated as
/// quiescent.
pub const DEFAULT_EVENT_THRESHOLD: f64 = 0.05;

/// Options for one netlist transient simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetsimOptions {
    /// Per-gate solve: model backend, time stepping and supply voltage. The
    /// simulation window is the calculator's `sim.t_stop`, shared by every
    /// gate so waveform handoff needs no re-gridding.
    pub calculator: DelayCalculator,
    /// Additional lumped load on every primary output (farads).
    pub primary_output_load: f64,
    /// Worker threads for the per-level parallel gate solves (`0` = auto from
    /// `MCSM_THREADS` / the machine, `1` = sequential). Results are
    /// bit-identical for every value.
    pub threads: usize,
    /// Smallest voltage excursion (volts) that counts as an event. Drives and
    /// computed outputs whose total excursion over the window stays below
    /// this are treated as DC, and gates fed only by such nets are skipped.
    pub event_threshold: f64,
}

impl NetsimOptions {
    /// Creates sequential options with the default event threshold.
    pub fn new(calculator: DelayCalculator, primary_output_load: f64) -> Self {
        NetsimOptions {
            calculator,
            primary_output_load,
            threads: 1,
            event_threshold: DEFAULT_EVENT_THRESHOLD,
        }
    }

    /// Sets the worker-thread count for level-parallel gate solves.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the event threshold (volts).
    #[must_use]
    pub fn with_event_threshold(mut self, volts: f64) -> Self {
        self.event_threshold = volts;
        self
    }
}

/// Activity counters of one simulation run.
///
/// The cache counters are **per-run deltas**: with shared [`SimCaches`] the
/// underlying caches are cumulative across runs, so each run snapshots the
/// counters before and after and reports the difference. That delta is only
/// meaningful when no concurrent run shares the same caches — the query
/// server guarantees this by serializing runs through its session lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetsimStats {
    /// Gates handed to the numerical engine (at least one active input).
    pub gates_simulated: usize,
    /// Gates resolved to a DC level without touching the engine.
    pub gates_skipped: usize,
    /// Gates outside the re-evaluated cone whose committed waveforms were
    /// reused from the previous result (only [`resimulate_netlist`] sets
    /// this; full runs touch every gate).
    pub gates_reused: usize,
    /// Nets (primary inputs included) whose waveform excursion exceeded the
    /// event threshold.
    pub events: usize,
    /// Delay-cache lookups answered from the memoized per-(cell, backend,
    /// load-bucket) cache.
    pub cache_hits: usize,
    /// Delay-cache lookups that had to compute their value.
    pub cache_misses: usize,
    /// Gate solves answered whole from the waveform memo cache (zero unless
    /// [`SimCaches::waveforms`] is supplied).
    pub waveform_hits: usize,
    /// Gate solves that ran the numerical engine and were then memoized.
    pub waveform_misses: usize,
}

/// Shared caches threaded through a sequence of simulations.
///
/// Both caches follow the same scope rule: **one model library per cache**
/// (see [`DelayCache`] / [`WaveformCache`]). A long-running session that
/// keeps a netlist resident passes the same `SimCaches` to every run so warm
/// queries skip re-resolving families, pin capacitances and — with
/// [`SimCaches::waveforms`] set — entire gate solves.
#[derive(Debug, Clone, Copy)]
pub struct SimCaches<'a> {
    /// Model-family + pin-capacitance memoization.
    pub delay: &'a DelayCache,
    /// Whole-gate-solve memoization; `None` disables waveform memoization
    /// (every eventful gate runs the engine, exactly like
    /// [`simulate_netlist`]).
    pub waveforms: Option<&'a WaveformCache>,
}

/// The result of a netlist transient simulation: one voltage waveform per
/// net — primary inputs sampled from their drives, gate outputs either solved
/// by the engine or resolved to their DC level.
#[derive(Debug, Clone)]
pub struct NetsimResult {
    waveforms: Vec<Waveform>,
    net_names: Vec<String>,
    vdd: f64,
    stats: NetsimStats,
    /// Committed per-net handoff drives, kept so [`resimulate_netlist`] can
    /// hand untouched nets' exact drives (Arc'd PWL or DC, cheap clones) to
    /// the gates inside a re-evaluated cone.
    drives: Vec<DriveWaveform>,
    /// Committed per-net event flags, carried over for nets outside a
    /// re-evaluated cone.
    active: Vec<bool>,
}

impl NetsimResult {
    /// The waveform on a net. Every net of the simulated netlist has one.
    pub fn waveform(&self, net: NetRef) -> &Waveform {
        &self.waveforms[net.index()]
    }

    /// Name of a net (mirrors the simulated netlist, so results stay
    /// printable without holding onto the netlist).
    pub fn net_name(&self, net: NetRef) -> &str {
        &self.net_names[net.index()]
    }

    /// Number of nets (and waveforms).
    pub fn net_count(&self) -> usize {
        self.waveforms.len()
    }

    /// Supply voltage the arrival/slew thresholds are relative to.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Activity counters of the run.
    pub fn stats(&self) -> NetsimStats {
        self.stats
    }

    /// The 50 % crossing time of the waveform on a net, for the given
    /// direction.
    pub fn arrival_time(&self, net: NetRef, rising: bool) -> Option<f64> {
        self.waveform(net).crossing(0.5 * self.vdd, rising)
    }

    /// The earliest 50 % crossing in either direction, with the direction
    /// that produced it — the symmetric counterpart of
    /// `mcsm_sta::arrival::TimingResult::arrival_any`, sharing its tie-break
    /// through [`mcsm_spice::waveform::earliest_crossing`] so netsim and STA
    /// arrivals compare without guessing edge polarities.
    pub fn arrival_any(&self, net: NetRef) -> Option<(f64, bool)> {
        mcsm_spice::waveform::earliest_crossing(
            self.arrival_time(net, true),
            self.arrival_time(net, false),
        )
    }

    /// The 10 %–90 % transition time of the waveform on a net.
    pub fn slew(&self, net: NetRef, rising: bool) -> Option<f64> {
        self.waveform(net).transition_time(self.vdd, rising)
    }
}

/// The voltage span `[min, max]` a drive covers over `[0, t_stop]`.
///
/// Analytic drives are evaluated at their slope breakpoints (plus the window
/// ends) — exact for every `SourceWaveform` shape, which is piecewise linear
/// between breakpoints. Sampled/PWL drives take their in-window samples plus
/// the interpolated window ends.
fn drive_span(drive: &DriveWaveform, t_stop: f64) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    let mut take = |v: f64| {
        lo = lo.min(v);
        hi = hi.max(v);
    };
    match drive {
        DriveWaveform::Analytic(src) => {
            take(src.eval(0.0));
            take(src.eval(t_stop));
            for b in src.breakpoints() {
                if b > 0.0 && b < t_stop {
                    take(src.eval(b));
                }
            }
        }
        DriveWaveform::Sampled(w) => span_of_waveform(w, t_stop, &mut take),
        DriveWaveform::Pwl(w) => span_of_waveform(w, t_stop, &mut take),
    }
    (lo, hi)
}

fn span_of_waveform(w: &Waveform, t_stop: f64, take: &mut impl FnMut(f64)) {
    take(w.value_at(0.0));
    take(w.value_at(t_stop));
    for (&t, &v) in w.times().iter().zip(w.values()) {
        if t > 0.0 && t < t_stop {
            take(v);
        }
    }
}

/// Samples a drive into a full [`Waveform`] over `[0, t_stop]`, for reporting
/// primary-input nets. Analytic drives keep their exact breakpoint structure;
/// sampled drives pass through unchanged.
fn drive_to_waveform(drive: &DriveWaveform, t_stop: f64) -> Result<Waveform, NetsimError> {
    match drive {
        DriveWaveform::Analytic(src) => {
            let mut times = vec![0.0];
            let mut breaks = src.breakpoints();
            breaks.sort_by(|a, b| a.partial_cmp(b).expect("breakpoints are finite"));
            for b in breaks {
                if b > 0.0 && b < t_stop && times.last() != Some(&b) {
                    times.push(b);
                }
            }
            if times.last() != Some(&t_stop) {
                times.push(t_stop);
            }
            let values = times.iter().map(|&t| src.eval(t)).collect();
            Ok(Waveform::new(times, values)?)
        }
        DriveWaveform::Sampled(w) => Ok(w.clone()),
        DriveWaveform::Pwl(w) => Ok((**w).clone()),
    }
}

/// One gate's inputs gathered for a worker thread.
struct GateSolve<'a> {
    store: &'a mcsm_core::store::ModelStore,
    kind: mcsm_cells::cell::CellKind,
    inputs: Vec<DriveWaveform>,
    load: f64,
    output: NetRef,
}

/// Simulates a whole netlist: every primary input driven by
/// `input_drives[net]`, every other net's waveform computed by chaining
/// per-gate model solves through the level schedule.
///
/// The model family each gate runs is the calculator's backend exactly as in
/// the STA layer (including the §3.4 selective policy and the documented
/// fallback chains); loads come from [`effective_load`]. Gates whose inputs
/// are all quiescent are resolved to DC without entering the engine — see the
/// module docs for the event model.
///
/// # Errors
///
/// * [`NetsimError::MissingDrive`] — a primary input has no drive;
/// * [`NetsimError::DrivenInternalNet`] — a drive targets a non-input net;
/// * [`NetsimError::Sta`] — model resolution or per-gate evaluation failed.
pub fn simulate_netlist(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
) -> Result<NetsimResult, NetsimError> {
    let cache = DelayCache::new();
    run_levels(
        netlist,
        library,
        input_drives,
        options,
        SimCaches {
            delay: &cache,
            waveforms: None,
        },
        None,
    )
}

/// Like [`simulate_netlist`], but consulting caller-owned [`SimCaches`]
/// instead of a fresh per-run [`DelayCache`] — the full-run entry point of a
/// long-running session. With a warm [`WaveformCache`] a repeated run skips
/// the numerical engine entirely; results are bit-identical to
/// [`simulate_netlist`] at any thread count and cache temperature (exact-bits
/// memo keys — see [`WaveformCache`]).
///
/// # Errors
///
/// Same as [`simulate_netlist`].
pub fn simulate_netlist_cached(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
    caches: SimCaches<'_>,
) -> Result<NetsimResult, NetsimError> {
    run_levels(netlist, library, input_drives, options, caches, None)
}

/// Incremental re-simulation after an ECO edit or drive change: re-solves
/// only the downstream [`cone_of_influence`] of `seeds`, reusing the
/// committed waveforms of `previous` for every net outside the cone.
///
/// `seeds` must cover every gate whose inputs, model or effective load
/// changed since `previous` was computed — the `seeds_for_*` helpers in
/// [`crate::schedule`] produce the right seeds for drive changes, gate
/// retypes and net-load edits. Downstream closure is taken here, so callers
/// pass only the directly-invalidated gates.
///
/// The structural cone is a superset of the dynamic activity cone, so the
/// result is **bit-identical** to a from-scratch [`simulate_netlist_cached`]
/// run of the edited netlist: every reused net provably sees bit-identical
/// inputs and loads. `stats.gates_reused` counts the gates that were not
/// re-solved.
///
/// # Errors
///
/// Same as [`simulate_netlist`], plus [`NetsimError::InvalidParameter`] when
/// `previous` was computed on a netlist with a different net count.
pub fn resimulate_netlist(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
    caches: SimCaches<'_>,
    previous: &NetsimResult,
    seeds: &[GateRef],
) -> Result<NetsimResult, NetsimError> {
    if previous.net_count() != netlist.net_count() {
        return Err(NetsimError::InvalidParameter(format!(
            "previous result has {} nets, netlist has {} — resimulate requires \
             the result of this same netlist",
            previous.net_count(),
            netlist.net_count()
        )));
    }
    let cone = cone_of_influence(netlist, seeds);
    run_levels(
        netlist,
        library,
        input_drives,
        options,
        caches,
        Some((previous, &cone)),
    )
}

/// The one level-sweep engine behind every public entry point. With
/// `previous = Some((result, cone))`, gates outside `cone` are pre-committed
/// from `result` and skipped by the sweep.
fn run_levels(
    netlist: &Netlist,
    library: &ModelLibrary,
    input_drives: &HashMap<NetRef, DriveWaveform>,
    options: &NetsimOptions,
    caches: SimCaches<'_>,
    previous: Option<(&NetsimResult, &[GateRef])>,
) -> Result<NetsimResult, NetsimError> {
    for &pi in netlist.primary_inputs() {
        if !input_drives.contains_key(&pi) {
            return Err(NetsimError::MissingDrive(netlist.net_name(pi).to_string()));
        }
    }
    for &net in input_drives.keys() {
        if !netlist.is_primary_input(net) {
            return Err(NetsimError::DrivenInternalNet(
                netlist.net_name(net).to_string(),
            ));
        }
    }
    if !(options.event_threshold >= 0.0) || !options.event_threshold.is_finite() {
        return Err(NetsimError::InvalidParameter(format!(
            "event threshold must be finite and non-negative, got {}",
            options.event_threshold
        )));
    }

    let t_stop = options.calculator.sim.t_stop;
    let vdd = options.calculator.vdd;
    let cache = caches.delay;
    let mut stats = NetsimStats::default();
    // Cache counters are cumulative across runs of shared caches; report this
    // run's contribution as a delta (the session layer serializes runs, so no
    // concurrent run perturbs the snapshot).
    let delay_hits_before = cache.hits();
    let delay_misses_before = cache.misses();
    let waveform_counts_before = caches.waveforms.map(|w| (w.hits(), w.misses()));

    // Per-net handoff state, committed level by level.
    let mut drives: Vec<Option<DriveWaveform>> = vec![None; netlist.net_count()];
    let mut active: Vec<bool> = vec![false; netlist.net_count()];
    let mut waveforms: Vec<Option<Waveform>> = vec![None; netlist.net_count()];

    // Incremental scope: pre-commit every out-of-cone gate's output from the
    // previous result, then let the sweep skip those gates entirely.
    let in_cone: Option<Vec<bool>> = match previous {
        Some((prev, cone)) => {
            let mut mask = vec![false; netlist.gate_count()];
            for gate in cone {
                mask[gate.index()] = true;
            }
            for (idx, gate) in netlist.gates().iter().enumerate() {
                if !mask[idx] {
                    let out = gate.output.index();
                    waveforms[out] = Some(prev.waveforms[out].clone());
                    drives[out] = Some(prev.drives[out].clone());
                    active[out] = prev.active[out];
                    stats.gates_reused += 1;
                }
            }
            Some(mask)
        }
        None => None,
    };

    for (&net, drive) in input_drives {
        let (lo, hi) = drive_span(drive, t_stop);
        active[net.index()] = hi - lo >= options.event_threshold;
        waveforms[net.index()] = Some(drive_to_waveform(drive, t_stop)?);
        // Re-wrap sampled drives as shared PWL so fanning one primary input
        // into many gates clones an `Arc`, not the sample vectors (evaluation
        // is bit-identical — both interpolate through `Waveform::value_at`).
        drives[net.index()] = Some(match drive {
            DriveWaveform::Sampled(w) => DriveWaveform::from_waveform(w.clone()),
            other => other.clone(),
        });
    }

    for level in topological_levels(netlist) {
        // Gather phase (sequential, cheap): split the level into gates that
        // saw an event and gates that stayed quiescent.
        let mut solves = Vec::new();
        for gate_ref in level {
            if let Some(mask) = &in_cone {
                if !mask[gate_ref.index()] {
                    continue; // pre-committed from the previous result
                }
            }
            let gate = netlist.gate(gate_ref);
            let drive_of = |net: &NetRef| -> &DriveWaveform {
                drives[net.index()]
                    .as_ref()
                    .expect("level order guarantees committed inputs")
            };

            if gate.inputs.iter().any(|net| active[net.index()]) {
                // Cloning the drives is cheap by construction: handoff drives
                // are `Pwl` (Arc'd samples) and quiescent nets are DC.
                let inputs: Vec<DriveWaveform> = gate
                    .inputs
                    .iter()
                    .map(|net| drive_of(net).clone())
                    .collect();
                let load = effective_load(
                    netlist,
                    library,
                    cache,
                    gate.output,
                    options.primary_output_load,
                )?;
                solves.push(GateSolve {
                    store: library.store(gate.kind)?,
                    kind: gate.kind,
                    inputs,
                    load,
                    output: gate.output,
                });
                stats.gates_simulated += 1;
                continue;
            }

            // Quiescent gate: its output is the DC level of its Boolean
            // function at the input logic values — no engine run, and no
            // waveform clones either (only initial values are read).
            let logic: Vec<bool> = gate
                .inputs
                .iter()
                .map(|net| drive_of(net).initial_value() > 0.5 * vdd)
                .collect();
            let level_v = if gate.kind.evaluate(&logic) { vdd } else { 0.0 };
            let out = gate.output.index();
            waveforms[out] = Some(Waveform::new(vec![0.0, t_stop], vec![level_v, level_v])?);
            drives[out] = Some(DriveWaveform::dc(level_v));
            stats.gates_skipped += 1;
        }

        // Solve phase: every eventful gate of the level in parallel, through
        // the waveform memo when one is supplied (a warm hit skips the engine
        // with bit-identical output — exact-bits keys).
        let outputs = par::par_map(options.threads, &solves, |_, solve| {
            options.calculator.gate_output_memoized(
                solve.store,
                solve.kind,
                &solve.inputs,
                solve.load,
                Some(cache),
                caches.waveforms,
            )
        });

        // Commit phase (sequential, in level order, so the first error
        // matches what a sequential sweep would report).
        for (solve, waveform) in solves.iter().zip(outputs) {
            let waveform = Arc::new(waveform?);
            let (lo, hi) = (waveform.min_value(), waveform.max_value());
            let out = solve.output.index();
            if hi - lo >= options.event_threshold {
                active[out] = true;
                drives[out] = Some(DriveWaveform::Pwl(Arc::clone(&waveform)));
            } else {
                // The output barely moved: hand fanouts its settled DC level
                // so quiescence keeps propagating, but keep the solved
                // waveform for reporting.
                drives[out] = Some(DriveWaveform::dc(waveform.final_value()));
            }
            waveforms[out] = Some((*waveform).clone());
        }
    }

    stats.events = active.iter().filter(|&&a| a).count();
    stats.cache_hits = cache.hits() - delay_hits_before;
    stats.cache_misses = cache.misses() - delay_misses_before;
    if let (Some(w), Some((hits_before, misses_before))) =
        (caches.waveforms, waveform_counts_before)
    {
        stats.waveform_hits = w.hits() - hits_before;
        stats.waveform_misses = w.misses() - misses_before;
    }

    // Netlist validation guarantees every net is a primary input or a gate
    // output, so the schedule reaches all of them.
    let mut committed_waveforms = Vec::with_capacity(netlist.net_count());
    let mut committed_drives = Vec::with_capacity(netlist.net_count());
    for (net, (waveform, drive)) in netlist
        .net_refs()
        .zip(waveforms.into_iter().zip(drives))
    {
        let unreached = || {
            NetsimError::InvalidParameter(format!(
                "net `{}` was never reached by the schedule",
                netlist.net_name(net)
            ))
        };
        committed_waveforms.push(waveform.ok_or_else(unreached)?);
        committed_drives.push(drive.ok_or_else(unreached)?);
    }

    Ok(NetsimResult {
        waveforms: committed_waveforms,
        net_names: netlist
            .net_refs()
            .map(|n| netlist.net_name(n).to_string())
            .collect(),
        vdd,
        stats,
        drives: committed_drives,
        active,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsm_cells::cell::CellKind;
    use mcsm_cells::tech::Technology;
    use mcsm_core::config::CharacterizationConfig;
    use mcsm_core::sim::CsmSimOptions;
    use mcsm_net::{nand_chain, NetlistBuilder};
    use mcsm_sta::delaycalc::DelayBackend;

    fn library() -> ModelLibrary {
        ModelLibrary::characterize(
            &Technology::cmos_130nm(),
            &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
            &CharacterizationConfig::coarse(),
        )
        .unwrap()
    }

    fn options(vdd: f64) -> NetsimOptions {
        NetsimOptions::new(
            DelayCalculator::new(
                DelayBackend::CompleteMcsm,
                CsmSimOptions::new(4e-9, 2e-12),
                vdd,
            ),
            2e-15,
        )
    }

    #[test]
    fn drive_span_is_exact_for_analytic_and_sampled_shapes() {
        let ramp = DriveWaveform::rising_ramp(1.2, 1e-9, 100e-12);
        let (lo, hi) = drive_span(&ramp, 4e-9);
        assert_eq!((lo, hi), (0.0, 1.2));
        // A ramp that starts after the window never registers as an event.
        let late = DriveWaveform::rising_ramp(1.2, 9e-9, 100e-12);
        let (lo, hi) = drive_span(&late, 4e-9);
        assert_eq!((lo, hi), (0.0, 0.0));
        let dc = DriveWaveform::dc(0.7);
        assert_eq!(drive_span(&dc, 4e-9), (0.7, 0.7));
        // A pulse's peak is a breakpoint, so a mid-window pulse is caught
        // even though its endpoints sit at the base level.
        let pulse = DriveWaveform::Analytic(mcsm_spice::source::SourceWaveform::Pulse {
            base: 0.0,
            peak: 1.2,
            t_delay: 1e-9,
            t_rise: 50e-12,
            t_width: 100e-12,
            t_fall: 50e-12,
        });
        let (lo, hi) = drive_span(&pulse, 4e-9);
        assert_eq!((lo, hi), (0.0, 1.2));
        let sampled = DriveWaveform::Sampled(
            Waveform::new(vec![0.0, 1e-9, 2e-9], vec![0.1, 0.9, 0.2]).unwrap(),
        );
        let (lo, hi) = drive_span(&sampled, 4e-9);
        assert_eq!((lo, hi), (0.1, 0.9));
        // Samples beyond the window do not count.
        let (lo, hi) = drive_span(&sampled, 0.5e-9);
        assert!((lo - 0.1).abs() < 1e-12 && (hi - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drive_to_waveform_keeps_breakpoints_and_passthrough() {
        let ramp = DriveWaveform::falling_ramp(1.2, 1e-9, 100e-12);
        let w = drive_to_waveform(&ramp, 4e-9).unwrap();
        assert_eq!(w.times(), &[0.0, 1e-9, 1e-9 + 100e-12, 4e-9]);
        assert_eq!(w.values(), &[1.2, 1.2, 0.0, 0.0]);
        let dc = drive_to_waveform(&DriveWaveform::dc(0.3), 4e-9).unwrap();
        assert_eq!(dc.len(), 2);
        assert_eq!(dc.final_value(), 0.3);
        let inner = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]).unwrap();
        let via_pwl =
            drive_to_waveform(&DriveWaveform::from_waveform(inner.clone()), 4e-9).unwrap();
        assert_eq!(&via_pwl, &inner);
    }

    #[test]
    fn quiescent_inputs_skip_every_gate() {
        let netlist = nand_chain(4);
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for &pi in netlist.primary_inputs() {
            drives.insert(pi, DriveWaveform::dc(vdd));
        }
        let result = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();
        let stats = result.stats();
        assert_eq!(stats.gates_simulated, 0);
        assert_eq!(stats.gates_skipped, 4);
        assert_eq!(stats.events, 0);
        // All-ones inputs: NAND chain alternates 0, 1, 0, 1 down the chain.
        let out = netlist.find_net("out").unwrap();
        assert_eq!(result.waveform(out).final_value(), vdd);
        let n0 = netlist.find_net("n0").unwrap();
        assert_eq!(result.waveform(n0).final_value(), 0.0);
        // No net ever crosses mid-rail.
        assert_eq!(result.arrival_any(out), None);
    }

    #[test]
    fn events_propagate_only_through_the_active_cone() {
        // Two independent inverter chains; only one input switches.
        let netlist = NetlistBuilder::new("two_chains")
            .primary_input("a")
            .primary_input("b")
            .gate("ua0", CellKind::Inverter, &["a"], "a0")
            .gate("ua1", CellKind::Inverter, &["a0"], "aout")
            .gate("ub0", CellKind::Inverter, &["b"], "b0")
            .gate("ub1", CellKind::Inverter, &["b0"], "bout")
            .primary_output("aout")
            .primary_output("bout")
            .build()
            .unwrap();
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        drives.insert(
            netlist.find_net("a").unwrap(),
            DriveWaveform::rising_ramp(vdd, 1e-9, 80e-12),
        );
        drives.insert(netlist.find_net("b").unwrap(), DriveWaveform::dc(0.0));
        let result = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();
        let stats = result.stats();
        assert_eq!(stats.gates_simulated, 2, "only the switching cone runs");
        assert_eq!(stats.gates_skipped, 2);
        // a, a0, aout saw events; b, b0, bout stayed quiet.
        assert_eq!(stats.events, 3);
        let aout = netlist.find_net("aout").unwrap();
        let (t, rising) = result.arrival_any(aout).unwrap();
        assert!(rising && t > 1e-9, "t = {t}");
        assert!(result.slew(aout, true).unwrap() > 0.0);
        // Double inversion of the quiet 0 V input settles back at 0 V.
        let bout = netlist.find_net("bout").unwrap();
        assert_eq!(result.waveform(bout).final_value(), 0.0);
        assert_eq!(result.net_name(bout), "bout");
        assert_eq!(result.net_count(), netlist.net_count());
    }

    #[test]
    fn warm_waveform_cache_skips_the_engine_bit_identically() {
        let netlist = mcsm_net::c17();
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            drives.insert(
                pi,
                DriveWaveform::falling_ramp(vdd, 1e-9 + 20e-12 * i as f64, 80e-12),
            );
        }
        let plain = simulate_netlist(&netlist, &library, &drives, &options(vdd)).unwrap();

        let delay = DelayCache::new();
        let memo = WaveformCache::new();
        let caches = SimCaches {
            delay: &delay,
            waveforms: Some(&memo),
        };
        let cold =
            simulate_netlist_cached(&netlist, &library, &drives, &options(vdd), caches).unwrap();
        let warm =
            simulate_netlist_cached(&netlist, &library, &drives, &options(vdd), caches).unwrap();
        for net in netlist.net_refs() {
            assert_eq!(plain.waveform(net), cold.waveform(net));
            assert_eq!(plain.waveform(net), warm.waveform(net));
        }
        // The cold run solved every eventful gate once; the warm repeat
        // answered all of them from the memo without touching the engine.
        let solved = cold.stats().gates_simulated;
        assert!(solved > 0);
        assert_eq!(cold.stats().waveform_misses, solved);
        assert_eq!(cold.stats().waveform_hits, 0);
        assert_eq!(warm.stats().waveform_misses, 0);
        assert_eq!(warm.stats().waveform_hits, solved);
    }

    #[test]
    fn incremental_resim_touches_only_the_cone_and_pins_full_equality() {
        let mut netlist = mcsm_net::c17();
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
            drives.insert(
                pi,
                DriveWaveform::falling_ramp(vdd, 1e-9 + 20e-12 * i as f64, 80e-12),
            );
        }
        let delay = DelayCache::new();
        let caches = SimCaches {
            delay: &delay,
            waveforms: None,
        };
        let baseline =
            simulate_netlist_cached(&netlist, &library, &drives, &options(vdd), caches).unwrap();

        // ECO: bump the load on output net N22 — only its driver g22 resolves.
        let n22 = netlist.find_net("N22").unwrap();
        netlist.set_net_load(n22, 1e-15).unwrap();
        let seeds = crate::schedule::seeds_for_load_change(&netlist, n22);
        for threads in [1, 2, 8] {
            let incremental = resimulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_threads(threads),
                caches,
                &baseline,
                &seeds,
            )
            .unwrap();
            let full = simulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_threads(threads),
            )
            .unwrap();
            for net in netlist.net_refs() {
                assert_eq!(
                    incremental.waveform(net),
                    full.waveform(net),
                    "net {} at {} threads",
                    netlist.net_name(net),
                    threads
                );
            }
            let stats = incremental.stats();
            assert_eq!(stats.gates_simulated + stats.gates_skipped, 1);
            assert_eq!(stats.gates_reused, 5);
        }

        // A stale previous result from a different netlist is rejected.
        let other = nand_chain(2);
        assert!(matches!(
            resimulate_netlist(
                &other,
                &library,
                &drives,
                &options(vdd),
                caches,
                &baseline,
                &[]
            ),
            Err(NetsimError::InvalidParameter(_))
        ));
    }

    #[test]
    fn missing_and_misplaced_drives_are_rejected() {
        let netlist = nand_chain(2);
        let library = library();
        let vdd = library.vdd();
        let mut drives = HashMap::new();
        drives.insert(netlist.find_net("in").unwrap(), DriveWaveform::dc(vdd));
        assert!(matches!(
            simulate_netlist(&netlist, &library, &drives, &options(vdd)),
            Err(NetsimError::MissingDrive(_))
        ));
        for &pi in netlist.primary_inputs() {
            drives.insert(pi, DriveWaveform::dc(vdd));
        }
        drives.insert(netlist.find_net("out").unwrap(), DriveWaveform::dc(0.0));
        assert!(matches!(
            simulate_netlist(&netlist, &library, &drives, &options(vdd)),
            Err(NetsimError::DrivenInternalNet(ref net)) if net == "out"
        ));
        drives.remove(&netlist.find_net("out").unwrap());
        assert!(matches!(
            simulate_netlist(
                &netlist,
                &library,
                &drives,
                &options(vdd).with_event_threshold(f64::NAN),
            ),
            Err(NetsimError::InvalidParameter(_))
        ));
    }
}
