//! The level scheduler: which gates can be solved when, and what load each
//! one drives.
//!
//! The simulator processes gates in *topological levels*: level `L` holds
//! every gate whose longest driver chain from a primary input has `L` gates
//! before it, so all gates of one level are mutually independent and can be
//! solved concurrently once every earlier level has committed. This is the
//! same schedule shape the level-parallel STA uses; here it is delegated to
//! the netlist's own single-pass [`Netlist::levels`] (validation already
//! guarantees a DAG), keeping the simulator free of the STA-internal graph
//! form and of any per-level allocation — a [`LevelSchedule`] is two flat
//! arrays regardless of depth.
//!
//! The scheduler also owns the *effective load* model: the lumped capacitance
//! a driver sees is the sum of the characterized input-pin capacitances of
//! every fanout pin, plus the netlist's explicit per-net extra load, plus the
//! external load on primary outputs.

use mcsm_net::{GateRef, LevelSchedule, NetRef, Netlist};
use mcsm_sta::delaycalc::DelayCache;
use mcsm_sta::models::ModelLibrary;
use mcsm_sta::StaError;

/// Groups the gates of a netlist into topological levels: every gate appears
/// exactly once, all of a gate's driver gates appear in strictly earlier
/// levels, and gates within a level are ordered by insertion index (so the
/// schedule is deterministic and the per-level parallel fan-out is
/// bit-identical to a sequential sweep).
///
/// Thin wrapper over [`Netlist::levels`], kept so simulator code and tests
/// have a crate-local name for the schedule.
pub fn topological_levels(netlist: &Netlist) -> LevelSchedule {
    netlist.levels()
}

/// The downstream cone of influence of a set of seed gates: every gate whose
/// output can be affected by re-solving the seeds — the seeds themselves plus
/// the transitive fanout closure of their output nets. Returned sorted by
/// gate index with no duplicates, so callers get a deterministic work list.
///
/// This *structural* cone is a superset of the dynamic activity cone (a
/// waveform that happens not to change still has its fanouts in the
/// structural closure), which is exactly what incremental re-evaluation
/// needs: re-solving the whole structural cone while reusing everything
/// outside it is bit-identical to a from-scratch run, because every gate
/// outside the cone provably sees bit-identical inputs and loads.
pub fn cone_of_influence(netlist: &Netlist, seeds: &[GateRef]) -> Vec<GateRef> {
    let mut in_cone = vec![false; netlist.gate_count()];
    let mut frontier: Vec<GateRef> = Vec::new();
    for &seed in seeds {
        if !in_cone[seed.index()] {
            in_cone[seed.index()] = true;
            frontier.push(seed);
        }
    }
    while let Some(gate) = frontier.pop() {
        for &(fanout_gate, _pin) in netlist.fanout_of(netlist.output_of(gate)) {
            if !in_cone[fanout_gate.index()] {
                in_cone[fanout_gate.index()] = true;
                frontier.push(fanout_gate);
            }
        }
    }
    netlist.gate_refs().filter(|g| in_cone[g.index()]).collect()
}

/// Seed gates invalidated by changing the drive on a primary-input net: the
/// net's direct fanout gates (their inputs changed; everything further
/// downstream is picked up by [`cone_of_influence`]).
pub fn seeds_for_drive_change(netlist: &Netlist, net: NetRef) -> Vec<GateRef> {
    netlist
        .fanout_of(net)
        .iter()
        .map(|&(gate, _pin)| gate)
        .collect()
}

/// Seed gates invalidated by retyping a gate: the gate itself (new model) and
/// the drivers of its input nets — a new cell presents different input pin
/// capacitances, so every input-net driver sees a different [`effective_load`]
/// even though its own input waveforms are unchanged.
pub fn seeds_for_gate_edit(netlist: &Netlist, gate: GateRef) -> Vec<GateRef> {
    let mut seeds = vec![gate];
    for &input in netlist.inputs_of(gate) {
        if let Some(driver) = netlist.driver_of(input) {
            if !seeds.contains(&driver) {
                seeds.push(driver);
            }
        }
    }
    seeds
}

/// Seed gates invalidated by changing a net's explicit extra load: the net's
/// driver alone (its [`effective_load`] changed; its fanouts follow through
/// the cone). Changing the load of a primary-input net has no driver to
/// re-solve and returns no seeds — input drives are ideal sources here.
pub fn seeds_for_load_change(netlist: &Netlist, net: NetRef) -> Vec<GateRef> {
    netlist.driver_of(net).into_iter().collect()
}

/// The lumped load a driver of `net` sees: characterized input capacitance of
/// every fanout pin (memoized in the shared [`DelayCache`]), plus the
/// netlist's explicit extra load on the net, plus `primary_output_load` if the
/// net is a primary output.
///
/// # Errors
///
/// Returns [`StaError::MissingModel`] if a fanout cell kind was never
/// characterized.
pub fn effective_load(
    netlist: &Netlist,
    library: &ModelLibrary,
    cache: &DelayCache,
    net: NetRef,
    primary_output_load: f64,
) -> Result<f64, StaError> {
    let mut load = 0.0;
    for &(fanout_gate, pin) in netlist.fanout_of(net) {
        let kind = netlist.gate_kind(fanout_gate);
        let pin = pin as usize;
        load += cache.pin_capacitance(kind, pin, || library.input_pin_capacitance(kind, pin))?;
    }
    load += netlist.net_load(net);
    if netlist.is_primary_output(net) {
        load += primary_output_load;
    }
    Ok(load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsm_cells::cell::CellKind;
    use mcsm_cells::tech::Technology;
    use mcsm_core::config::CharacterizationConfig;
    use mcsm_net::{balanced_tree, c17, NetlistBuilder};

    #[test]
    fn levels_respect_driver_ordering_on_c17() {
        let netlist = c17();
        let levels = topological_levels(&netlist);
        assert_eq!(levels.gate_count(), 6);
        // Every gate's drivers sit in strictly earlier levels.
        let mut level_of = vec![usize::MAX; netlist.gate_count()];
        for (level, gates) in levels.iter().enumerate() {
            for g in gates {
                level_of[g.index()] = level;
            }
        }
        for (idx, gate) in netlist.iter_gates().enumerate() {
            for &input in gate.inputs {
                if let Some(driver) = netlist.driver_of(input) {
                    assert!(level_of[driver.index()] < level_of[idx]);
                }
            }
        }
        // The schedule depth matches the STA lowering's.
        let graph = netlist.to_gate_graph().unwrap();
        assert_eq!(
            levels.level_count(),
            graph.topological_levels().unwrap().len()
        );
    }

    #[test]
    fn levels_handle_non_topological_insertion_order() {
        // u_late is declared first but consumes u_early's output.
        let netlist = NetlistBuilder::new("reversed")
            .primary_input("a")
            .gate("u_late", CellKind::Inverter, &["mid"], "out")
            .gate("u_early", CellKind::Inverter, &["a"], "mid")
            .primary_output("out")
            .build()
            .unwrap();
        let levels = topological_levels(&netlist);
        assert_eq!(levels.level_count(), 2);
        assert_eq!(netlist.gate(levels.gates(0)[0]).name, "u_early");
        assert_eq!(netlist.gate(levels.gates(1)[0]).name, "u_late");

        // A deep chain declared in fully reversed order still levelizes one
        // gate per level (the Kahn sweep does not depend on insertion order).
        let stages = 200;
        let mut builder = NetlistBuilder::new("reversed_chain").primary_input("n0");
        for stage in (0..stages).rev() {
            builder = builder.gate(
                &format!("u{stage}"),
                CellKind::Inverter,
                &[&format!("n{stage}")],
                &format!("n{}", stage + 1),
            );
        }
        let chain = builder
            .primary_output(&format!("n{stages}"))
            .build()
            .unwrap();
        let levels = topological_levels(&chain);
        assert_eq!(levels.level_count(), stages);
        for (level, gates) in levels.iter().enumerate() {
            assert_eq!(gates.len(), 1);
            assert_eq!(chain.gate(gates[0]).name, format!("u{level}"));
        }
    }

    #[test]
    fn cone_of_influence_closes_downstream_on_c17() {
        let netlist = c17();
        let gate = |name: &str| netlist.find_gate(name).unwrap();
        let names = |cone: &[GateRef]| -> Vec<&str> {
            cone.iter().map(|&g| netlist.gate_name(g)).collect()
        };
        // g10 feeds g22 only; g22 is a primary-output driver.
        let cone = cone_of_influence(&netlist, &[gate("g10")]);
        assert_eq!(names(&cone), ["g10", "g22"]);
        // g11 fans out to g16 and g19, which cover both outputs.
        let cone = cone_of_influence(&netlist, &[gate("g11")]);
        assert_eq!(names(&cone), ["g11", "g16", "g19", "g22", "g23"]);
        // Seeds merge without duplicates, output stays index-sorted.
        let cone = cone_of_influence(&netlist, &[gate("g23"), gate("g22"), gate("g23")]);
        assert_eq!(names(&cone), ["g22", "g23"]);
        assert!(cone_of_influence(&netlist, &[]).is_empty());
    }

    #[test]
    fn eco_seed_helpers_cover_the_invalidated_gates() {
        let netlist = c17();
        let gate = |name: &str| netlist.find_gate(name).unwrap();
        let net = |name: &str| netlist.find_net(name).unwrap();
        // Drive change on N3: both its fanout gates are seeds.
        let seeds = seeds_for_drive_change(&netlist, net("N3"));
        assert_eq!(seeds, [gate("g10"), gate("g11")]);
        // Retyping g22 reloads the drivers of its input nets N10 and N16.
        let seeds = seeds_for_gate_edit(&netlist, gate("g22"));
        assert_eq!(seeds, [gate("g22"), gate("g10"), gate("g16")]);
        // Load change on an internal/output net seeds its driver only…
        assert_eq!(seeds_for_load_change(&netlist, net("N22")), [gate("g22")]);
        // …and on a primary input there is nothing to re-solve.
        assert!(seeds_for_load_change(&netlist, net("N1")).is_empty());
    }

    #[test]
    fn effective_load_sums_pins_extra_and_output_load() {
        let netlist = NetlistBuilder::new("loads")
            .primary_input("a")
            .gate("u0", CellKind::Inverter, &["a"], "mid")
            .gate("u1", CellKind::Inverter, &["mid"], "o1")
            .gate("u2", CellKind::Nor2, &["mid", "o1"], "o2")
            .net_load("mid", 3e-15)
            .primary_output("o2")
            .build()
            .unwrap();
        let library = ModelLibrary::characterize(
            &Technology::cmos_130nm(),
            &[CellKind::Inverter, CellKind::Nor2],
            &CharacterizationConfig::coarse(),
        )
        .unwrap();
        let cache = DelayCache::new();
        let mid = netlist.find_net("mid").unwrap();
        let c_inv = library
            .input_pin_capacitance(CellKind::Inverter, 0)
            .unwrap();
        let c_nor = library.input_pin_capacitance(CellKind::Nor2, 0).unwrap();
        let load = effective_load(&netlist, &library, &cache, mid, 0.0).unwrap();
        assert!((load - (c_inv + c_nor + 3e-15)).abs() < 1e-21);
        // Primary outputs add the external load on top of explicit loads.
        let o2 = netlist.find_net("o2").unwrap();
        let load = effective_load(&netlist, &library, &cache, o2, 5e-15).unwrap();
        assert!((load - 5e-15).abs() < 1e-21);
        // Uncharacterized fanout kinds are reported.
        let tree = balanced_tree(1, CellKind::Nand2);
        let empty = ModelLibrary::new(1.2);
        let in0 = tree.find_net("in0").unwrap();
        assert!(effective_load(&tree, &empty, &cache, in0, 0.0).is_err());
    }
}
