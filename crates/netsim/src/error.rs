//! Errors produced while preparing or running a netlist-level transient
//! simulation.

use mcsm_net::NetlistError;
use mcsm_spice::error::SpiceError;
use mcsm_sta::StaError;
use std::fmt;

/// Error produced by the netlist-level transient simulator.
#[derive(Debug)]
pub enum NetsimError {
    /// A primary input has no drive waveform.
    MissingDrive(String),
    /// A drive waveform was supplied for a net that is not a primary input
    /// (its waveform is computed by the simulator, not injected).
    DrivenInternalNet(String),
    /// A simulation parameter is out of range.
    InvalidParameter(String),
    /// The netlist contains register (sequential) gates, which the
    /// combinational level sweep cannot evaluate — clocked simulation lives in
    /// `mcsm-seq`.
    SequentialNetlist {
        /// One offending register instance, for the error message.
        gate: String,
    },
    /// A gate solve failed (panic, solver error or non-finite output) and
    /// every degraded retry failed too — the run cannot produce a waveform
    /// for this net.
    GateUnrecoverable {
        /// Instance name of the failing gate.
        gate: String,
        /// Name of the gate's output net.
        net: String,
        /// What the primary attempt died of.
        failure: String,
        /// Comma-separated list of the degraded settings that were tried.
        attempted: String,
    },
    /// The run was abandoned at a cooperative cancellation checkpoint — its
    /// deadline passed or the caller cancelled it. Committed caller-owned
    /// state is untouched.
    Cancelled {
        /// Where the sweep stopped (level boundary or a named gate).
        context: String,
    },
    /// A model-resolution or per-gate evaluation failure from the timing
    /// layer.
    Sta(StaError),
    /// A netlist-level failure (lowering, lookup).
    Net(NetlistError),
    /// A waveform-construction failure.
    Spice(String),
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::MissingDrive(net) => {
                write!(f, "primary input `{net}` has no drive waveform")
            }
            NetsimError::DrivenInternalNet(net) => write!(
                f,
                "net `{net}` is not a primary input; its waveform is computed, not driven"
            ),
            NetsimError::InvalidParameter(msg) => write!(f, "netsim: {msg}"),
            NetsimError::SequentialNetlist { gate } => write!(
                f,
                "netlist contains register gates (e.g. `{gate}`); the combinational \
                 simulator cannot evaluate them — use mcsm_seq::simulate_sequential"
            ),
            NetsimError::GateUnrecoverable {
                gate,
                net,
                failure,
                attempted,
            } => write!(
                f,
                "gate `{gate}` (net `{net}`) failed to solve: {failure}; \
                 degraded retries attempted: {attempted}"
            ),
            NetsimError::Cancelled { context } => write!(
                f,
                "run cancelled (deadline exceeded) at {context}; committed state untouched"
            ),
            NetsimError::Sta(e) => write!(f, "netsim gate evaluation: {e}"),
            NetsimError::Net(e) => write!(f, "netsim netlist: {e}"),
            NetsimError::Spice(msg) => write!(f, "netsim waveform: {msg}"),
        }
    }
}

impl std::error::Error for NetsimError {}

impl From<StaError> for NetsimError {
    fn from(e: StaError) -> Self {
        NetsimError::Sta(e)
    }
}

impl From<NetlistError> for NetsimError {
    fn from(e: NetlistError) -> Self {
        NetsimError::Net(e)
    }
}

impl From<SpiceError> for NetsimError {
    fn from(e: SpiceError) -> Self {
        NetsimError::Spice(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offenders() {
        let e = NetsimError::MissingDrive("N1".into());
        assert!(e.to_string().contains("N1"));
        let e = NetsimError::DrivenInternalNet("mid".into());
        assert!(e.to_string().contains("mid"));
        let e: NetsimError = StaError::MissingModel("NOR2".into()).into();
        assert!(matches!(e, NetsimError::Sta(_)));
        assert!(e.to_string().contains("NOR2"));
        let e: NetsimError = NetlistError::UnknownNet("x".into()).into();
        assert!(matches!(e, NetsimError::Net(_)));
    }
}
