//! Deterministic-friendly observability for the MCSM workspace.
//!
//! Three pieces, all std-only (the build environment has no crates.io
//! access):
//!
//! * [`mod@span`] — hierarchical spans recorded into per-thread ring buffers
//!   (monotonic clock, process-unique ids, parent links), exported as Chrome
//!   trace-event JSON via [`trace`] — the file loads directly in Perfetto or
//!   `chrome://tracing`.
//! * [`metrics`] — counters, gauges and log₂-bucketed latency histograms
//!   behind a process-global [`Registry`]. Aggregation is
//!   thread-schedule-independent: counters are commutative sums and
//!   snapshots are name-sorted, so equal work yields bit-identical counter
//!   snapshots at any thread count.
//! * the arming layer in this module — env-driven like `mcsm_num::fault`:
//!
//!   | variable         | effect                                            |
//!   |------------------|---------------------------------------------------|
//!   | `MCSM_TRACE`     | `1` arms span recording *and* metrics             |
//!   | `MCSM_TRACE_OUT` | default path trace dumps are written to           |
//!   | `MCSM_TRACE_BUF` | per-thread ring capacity in spans (default 65536) |
//!
//! Disabled is the default and costs one relaxed atomic load per
//! instrumentation site (the `sim_hotpath` bench gates this in CI). Metrics
//! can also be armed programmatically ([`arm_metrics`] — the server does, so
//! its `metrics` RPC always has data) without paying for span recording.
//!
//! Instrumentation for `mcsm_num::par` arrives through the job hook that
//! crate exposes (`mcsm_num::par::hook`): arming installs a sink that turns
//! each job timing into `par.queue`/`par.exec` spans and histograms. This
//! keeps the dependency order acyclic — `num` never depends on `obs`.

pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{Histogram, Registry, Snapshot, HIST_BUCKETS};
pub use span::{Span, SpanEvent};
pub use trace::{chrome_trace, write_trace, TraceSummary};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

const F_INIT: u8 = 1;
const F_METRICS: u8 = 2;
const F_TRACE: u8 = 4;

static FLAGS: AtomicU8 = AtomicU8::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static TRACE_OUT: Mutex<Option<String>> = Mutex::new(None);

/// The process trace epoch — every timestamp is an offset from this instant.
/// Fixed on first use.
pub fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Microseconds since the process trace epoch — the workspace's single
/// wall-clock source for request timing (`timing_us`) and latency histograms.
#[inline]
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Converts an [`Instant`] (e.g. from the `par` job hook) to nanoseconds on
/// the trace timeline; instants before the epoch clamp to 0.
pub fn instant_ns(instant: Instant) -> u64 {
    instant
        .checked_duration_since(epoch())
        .map_or(0, |d| d.as_nanos() as u64)
}

#[cold]
fn init_slow() -> u8 {
    // Reads the environment once; idempotent and race-free (both racers
    // compute the same flags from the same environment).
    let mut flags = F_INIT;
    if mcsm_num::par::env_flag("MCSM_TRACE") {
        flags |= F_TRACE | F_METRICS;
    }
    if let Ok(value) = std::env::var("MCSM_TRACE_BUF") {
        if let Ok(cap) = value.trim().parse::<usize>() {
            if cap > 0 {
                span::set_buffer_capacity(cap);
            }
        }
    }
    FLAGS.fetch_or(flags, Ordering::Relaxed);
    if flags & (F_TRACE | F_METRICS) != 0 {
        install_par_hook();
    }
    epoch();
    FLAGS.load(Ordering::Relaxed)
}

#[inline]
fn flags() -> u8 {
    let flags = FLAGS.load(Ordering::Relaxed);
    if flags & F_INIT == 0 {
        init_slow()
    } else {
        flags
    }
}

/// Reads the `MCSM_TRACE*` environment once and arms accordingly. Called
/// lazily by every instrumentation site; calling it eagerly (server startup,
/// bench mains) just pins the trace epoch early.
pub fn init_from_env() {
    flags();
}

/// Whether span recording is armed.
#[inline]
pub fn trace_enabled() -> bool {
    flags() & F_TRACE != 0
}

/// Whether metric recording is armed.
#[inline]
pub fn metrics_enabled() -> bool {
    flags() & F_METRICS != 0
}

/// Arms metric recording regardless of the environment (the server does this
/// so `metrics` RPC snapshots are always populated).
pub fn arm_metrics() {
    flags();
    FLAGS.fetch_or(F_METRICS, Ordering::Relaxed);
    install_par_hook();
}

/// Forces metric recording on or off (benches measuring armed-vs-disabled
/// overhead; not intended for production paths).
pub fn set_metrics(enabled: bool) {
    flags();
    if enabled {
        arm_metrics();
    } else {
        FLAGS.fetch_and(!F_METRICS, Ordering::Relaxed);
    }
}

/// Forces span recording on or off (benches and tests).
pub fn set_trace(enabled: bool) {
    flags();
    if enabled {
        FLAGS.fetch_or(F_TRACE, Ordering::Relaxed);
        install_par_hook();
    } else {
        FLAGS.fetch_and(!F_TRACE, Ordering::Relaxed);
    }
}

fn install_par_hook() {
    // The sink checks the flags itself so arming/disarming after
    // installation behaves; `install` is first-call-wins and cheap to retry.
    let _ = mcsm_num::par::hook::install(Box::new(|timing| {
        let flags = FLAGS.load(Ordering::Relaxed);
        let queued_ns = instant_ns(timing.queued);
        let started_ns = instant_ns(timing.started);
        let finished_ns = instant_ns(timing.finished);
        if flags & F_TRACE != 0 {
            let index = timing.index as f64;
            span::record_raw("par.queue", queued_ns, started_ns, vec![("job", index)]);
            span::record_raw("par.exec", started_ns, finished_ns, vec![("job", index)]);
        }
        if flags & F_METRICS != 0 {
            let registry = global();
            registry.counter_add("par.jobs", 1);
            registry.observe("par.queue_us", started_ns.saturating_sub(queued_ns) / 1000);
            registry.observe("par.exec_us", finished_ns.saturating_sub(started_ns) / 1000);
        }
    }));
}

static GLOBAL: Registry = Registry::new();

/// The process-global metric registry.
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Adds to a global counter when metrics are armed.
#[inline]
pub fn counter_add(name: &str, value: u64) {
    if metrics_enabled() {
        GLOBAL.counter_add(name, value);
    }
}

/// Adds several global counters behind a single armed check (one lock per
/// counter, but zero work at all when disarmed).
#[inline]
pub fn counters(pairs: &[(&str, u64)]) {
    if metrics_enabled() {
        for (name, value) in pairs {
            GLOBAL.counter_add(name, *value);
        }
    }
}

/// Sets a global gauge when metrics are armed.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if metrics_enabled() {
        GLOBAL.gauge_set(name, value);
    }
}

/// Raises a global high-water-mark gauge when metrics are armed.
#[inline]
pub fn gauge_max(name: &str, value: f64) {
    if metrics_enabled() {
        GLOBAL.gauge_max(name, value);
    }
}

/// Records a sample into a global histogram when metrics are armed.
#[inline]
pub fn observe_us(name: &str, us: u64) {
    if metrics_enabled() {
        GLOBAL.observe(name, us);
    }
}

/// Opens a span named `name` on this thread; inert when tracing is disarmed.
#[inline]
pub fn span(name: &str) -> Span {
    if trace_enabled() {
        Span::begin(name.to_string())
    } else {
        Span::disabled()
    }
}

/// Opens a span whose name is only built when tracing is armed — use for
/// `format!`-ed names so the disabled path never allocates.
#[inline]
pub fn span_lazy(name: impl FnOnce() -> String) -> Span {
    if trace_enabled() {
        Span::begin(name())
    } else {
        Span::disabled()
    }
}

/// Overrides the trace output path (`--trace-out`); takes precedence over
/// `MCSM_TRACE_OUT`.
pub fn set_trace_out(path: &str) {
    let mut slot = match TRACE_OUT.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    *slot = Some(path.to_string());
}

///// Where a trace dump should go: the [`set_trace_out`] override, else
/// `MCSM_TRACE_OUT`, else `None`.
pub fn trace_out_path() -> Option<String> {
    let slot = match TRACE_OUT.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(path) = slot.as_ref() {
        return Some(path.clone());
    }
    drop(slot);
    match std::env::var("MCSM_TRACE_OUT") {
        Ok(path) if !path.is_empty() => Some(path),
        _ => None,
    }
}

/// Dumps the trace to [`trace_out_path`] if tracing is armed and a path is
/// configured. Servers and examples call this on shutdown; returns what was
/// written, or `None` when nothing was configured.
pub fn dump_trace_if_configured() -> Option<std::io::Result<(String, TraceSummary)>> {
    if !trace_enabled() {
        return None;
    }
    let path = trace_out_path()?;
    Some(write_trace(&path).map(|summary| (path, summary)))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The arming flags and span sink are process-global, so everything that
    // toggles them lives in this one test to avoid cross-test interference
    // (`cargo test` runs tests on threads within one process).
    #[test]
    fn arming_spans_and_export_work_end_to_end() {
        init_from_env();
        // Disabled by default in the test environment: spans are inert.
        assert!(!trace_enabled(), "MCSM_TRACE must not leak into tests");
        {
            let mut inert = span("never.recorded");
            inert.arg("x", 1.0);
            assert!(!inert.enabled());
        }
        let (events, _) = span::collect();
        assert!(events.iter().all(|e| e.name != "never.recorded"));

        // Armed: spans nest via parent links and export as trace events.
        set_trace(true);
        {
            let _outer = span("outer");
            {
                let mut inner = span_lazy(|| format!("inner.{}", 7));
                inner.arg("level", 3.0);
            }
        }
        set_trace(false);
        let (events, dropped) = span::collect();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner.7").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.end_ns <= events.iter().map(|e| e.end_ns).max().unwrap());
        assert_eq!(inner.args, vec![("level", 3.0)]);
        assert_eq!(dropped, 0);

        // Chrome export: valid JSON, one X event per span plus metadata.
        let document = chrome_trace();
        let reparsed = mcsm_num::json::JsonValue::parse(&document.to_string_pretty()).unwrap();
        let trace_events = reparsed.get("traceEvents").unwrap().as_array().unwrap();
        let complete: Vec<_> = trace_events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .collect();
        assert_eq!(complete.len(), events.len());
        let exported_inner = complete
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("inner.7"))
            .unwrap();
        assert_eq!(
            exported_inner
                .get("args")
                .unwrap()
                .get("parent")
                .unwrap()
                .as_f64(),
            Some(outer.id as f64)
        );

        // Metrics arming: counter_add is a no-op until armed.
        let before = global().snapshot().counter("obs.test.counter");
        counter_add("obs.test.counter", 5);
        assert_eq!(global().snapshot().counter("obs.test.counter"), before);
        set_metrics(true);
        counter_add("obs.test.counter", 5);
        observe_us("obs.test.us", 250);
        set_metrics(false);
        let snapshot = global().snapshot();
        assert_eq!(snapshot.counter("obs.test.counter"), before + 5);
        assert_eq!(snapshot.histogram("obs.test.us").unwrap().count(), 1);
        span::clear();
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        assert!(now_us() <= now_ns() / 1000 + 1);
        assert_eq!(instant_ns(epoch()), 0);
    }
}
