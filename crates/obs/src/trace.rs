//! Chrome trace-event export: the recorded spans as a JSON document that
//! loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.
//!
//! The object form of the trace-event format is used: `{"traceEvents": [...],
//! "displayTimeUnit": "ms"}` with one complete (`"ph": "X"`) event per span.
//! Timestamps and durations are microseconds with nanosecond fractions,
//! offset from the process trace epoch. Span id and parent id travel in each
//! event's `args` alongside the instrumentation's numeric attachments, so the
//! hierarchy survives even across thread tracks.

use crate::span::{self, SpanEvent};
use mcsm_num::json::JsonValue;
use std::io;
use std::path::Path;

fn event_json(event: &SpanEvent) -> JsonValue {
    let mut args = vec![
        ("span_id".to_string(), JsonValue::Number(event.id as f64)),
        ("parent".to_string(), JsonValue::Number(event.parent as f64)),
    ];
    for (key, value) in &event.args {
        args.push((key.to_string(), JsonValue::Number(*value)));
    }
    JsonValue::Object(vec![
        ("name".to_string(), JsonValue::String(event.name.clone())),
        ("cat".to_string(), JsonValue::String("mcsm".to_string())),
        ("ph".to_string(), JsonValue::String("X".to_string())),
        (
            "ts".to_string(),
            JsonValue::Number(event.start_ns as f64 / 1000.0),
        ),
        (
            "dur".to_string(),
            JsonValue::Number(event.end_ns.saturating_sub(event.start_ns) as f64 / 1000.0),
        ),
        ("pid".to_string(), JsonValue::Number(1.0)),
        ("tid".to_string(), JsonValue::Number(event.tid as f64)),
        ("args".to_string(), JsonValue::Object(args)),
    ])
}

/// Builds the full trace document from every span recorded so far.
pub fn chrome_trace() -> JsonValue {
    let (events, dropped) = span::collect();
    build_trace(&events, dropped)
}

fn build_trace(events: &[SpanEvent], dropped: u64) -> JsonValue {
    let mut trace_events = vec![JsonValue::Object(vec![
        (
            "name".to_string(),
            JsonValue::String("process_name".to_string()),
        ),
        ("ph".to_string(), JsonValue::String("M".to_string())),
        ("pid".to_string(), JsonValue::Number(1.0)),
        (
            "args".to_string(),
            JsonValue::Object(vec![(
                "name".to_string(),
                JsonValue::String("mcsm".to_string()),
            )]),
        ),
    ])];
    trace_events.extend(events.iter().map(event_json));
    JsonValue::Object(vec![
        ("traceEvents".to_string(), JsonValue::Array(trace_events)),
        (
            "displayTimeUnit".to_string(),
            JsonValue::String("ms".to_string()),
        ),
        (
            "otherData".to_string(),
            JsonValue::Object(vec![
                ("spans".to_string(), JsonValue::Number(events.len() as f64)),
                (
                    "dropped_spans".to_string(),
                    JsonValue::Number(dropped as f64),
                ),
            ]),
        ),
    ])
}

/// What a trace dump wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Spans exported.
    pub spans: u64,
    /// Spans lost to ring-buffer overflow before the export.
    pub dropped: u64,
}

/// Writes the current trace to `path`, returning how many spans it contains.
pub fn write_trace<P: AsRef<Path>>(path: P) -> io::Result<TraceSummary> {
    let (events, dropped) = span::collect();
    let document = build_trace(&events, dropped);
    std::fs::write(path, document.to_string_pretty())?;
    Ok(TraceSummary {
        spans: events.len() as u64,
        dropped,
    })
}
