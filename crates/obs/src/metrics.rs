//! Counters, gauges and log-bucketed histograms behind a [`Registry`].
//!
//! Everything here is **schedule-independent by construction**: counters and
//! histogram buckets are commutative sums, gauges keep the last write (or the
//! maximum, via [`Registry::gauge_max`]), and [`Registry::snapshot`] returns
//! name-sorted vectors. Two runs that perform the same work therefore produce
//! bit-identical counter snapshots regardless of how many threads recorded
//! them or in which order — the property the 1/2/8-thread determinism tests
//! pin.

use mcsm_num::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `k`
/// (`1 <= k < 39`) holds values in `[2^(k-1), 2^k)`, and the last bucket is
/// the overflow bucket for everything at or above `2^38` (~76 hours in
/// microseconds — far past any latency this system records).
pub const HIST_BUCKETS: usize = 40;

/// A log₂-bucketed histogram of non-negative integer samples (latencies in
/// microseconds by convention; metric names end in `.us`).
///
/// Recording is one subtraction, one `leading_zeros` and one add — cheap
/// enough for per-RPC and per-job paths. Quantiles are resolved to bucket
/// edges (one octave of resolution), clamped to the exact observed maximum so
/// tail quantiles of tight distributions stay honest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    /// The bucket a value lands in (see [`HIST_BUCKETS`] for the layout).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, `0` when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The `p`-th percentile (`0 < p <= 100`), resolved to the upper edge of
    /// the bucket holding that rank and clamped to the observed maximum.
    /// Returns `0` for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if index == 0 {
                    return 0;
                }
                if index == HIST_BUCKETS - 1 {
                    // Overflow bucket: the edge is meaningless, report max.
                    return self.max;
                }
                return (1u64 << index).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (bucket-wise sums, min/max
    /// merges) — commutative and associative, so merge order never matters.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Fixed-shape JSON summary: `count`, `sum`, `min`, `max`, `p50`, `p90`,
    /// `p95`, `p99`. The key set never depends on the recorded data, so
    /// digit-normalized smoke diffs stay stable.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("count".into(), JsonValue::Number(self.count as f64)),
            ("sum".into(), JsonValue::Number(self.sum as f64)),
            ("min".into(), JsonValue::Number(self.min() as f64)),
            ("max".into(), JsonValue::Number(self.max as f64)),
            (
                "p50".into(),
                JsonValue::Number(self.percentile(50.0) as f64),
            ),
            (
                "p90".into(),
                JsonValue::Number(self.percentile(90.0) as f64),
            ),
            (
                "p95".into(),
                JsonValue::Number(self.percentile(95.0) as f64),
            ),
            (
                "p99".into(),
                JsonValue::Number(self.percentile(99.0) as f64),
            ),
        ])
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A set of named counters, gauges and histograms.
///
/// The process-global instance lives behind [`crate::global`]; local
/// instances are plain values, which is what the deterministic-merge tests
/// use. All operations take `&self` (one short mutex section each) — the
/// enabled/disabled decision happens *before* calling in, at the
/// [`crate::counter_add`]-level convenience layer.
#[derive(Debug)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned registry only means a panic elsewhere while recording;
        // the data is still sums and maxima, so keep serving it.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Adds `value` to the named counter.
    pub fn counter_add(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(slot) => *slot += value,
            None => {
                inner.counters.insert(name.to_string(), value);
            }
        }
    }

    /// Sets the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Raises the named gauge to `value` if larger (schedule-independent
    /// high-water mark).
    pub fn gauge_max(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(slot) => *slot = slot.max(value),
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut inner = self.lock();
        match inner.histograms.get_mut(name) {
            Some(hist) => hist.record(value),
            None => {
                let mut hist = Histogram::new();
                hist.record(value);
                inner.histograms.insert(name.to_string(), hist);
            }
        }
    }

    /// A name-sorted point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Clears every metric (benches and tests that measure deltas).
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.gauges.clear();
        inner.histograms.clear();
    }
}

/// A point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(name, total)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, ascending by name.
    pub histograms: Vec<(String, Histogram)>,
}

impl Snapshot {
    /// The named counter's total, `0` when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| &self.histograms[i].1)
            .ok()
    }

    /// Counter deltas against an earlier snapshot (names present in either,
    /// sorted; counters are monotonic so deltas saturate at zero).
    pub fn counter_deltas(&self, earlier: &Snapshot) -> Vec<(String, u64)> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for (name, value) in &self.counters {
            out.insert(name.clone(), *value);
        }
        for (name, value) in &earlier.counters {
            let slot = out.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_sub(*value);
        }
        out.into_iter().collect()
    }

    /// Merges another snapshot into this one: counters and histogram buckets
    /// sum, gauges keep the maximum. Commutative and associative, so the
    /// result is independent of merge order — the property that makes
    /// sharded/multi-registry aggregation thread-schedule-independent.
    pub fn merge(&mut self, other: &Snapshot) {
        let mut counters: BTreeMap<String, u64> = self.counters.drain(..).collect();
        for (name, value) in &other.counters {
            *counters.entry(name.clone()).or_insert(0) += value;
        }
        self.counters = counters.into_iter().collect();

        let mut gauges: BTreeMap<String, f64> = self.gauges.drain(..).collect();
        for (name, value) in &other.gauges {
            let slot = gauges.entry(name.clone()).or_insert(f64::NEG_INFINITY);
            *slot = slot.max(*value);
        }
        self.gauges = gauges.into_iter().collect();

        let mut histograms: BTreeMap<String, Histogram> = self.histograms.drain(..).collect();
        for (name, hist) in &other.histograms {
            histograms.entry(name.clone()).or_default().merge(hist);
        }
        self.histograms = histograms.into_iter().collect();
    }

    /// JSON rendering: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: summary}}`, every map sorted by name.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "counters".into(),
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Number(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = Histogram::new();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        for p in [1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(hist.percentile(p), 0, "p{p}");
        }
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let mut hist = Histogram::new();
        hist.record(37);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.min(), 37);
        assert_eq!(hist.max(), 37);
        // 37 lives in [32, 64); the upper edge clamps to the observed max.
        for p in [1.0, 50.0, 99.0] {
            assert_eq!(hist.percentile(p), 37, "p{p}");
        }
    }

    #[test]
    fn zero_samples_land_in_the_zero_bucket() {
        let mut hist = Histogram::new();
        hist.record(0);
        hist.record(0);
        assert_eq!(hist.buckets()[0], 2);
        assert_eq!(hist.percentile(50.0), 0);
        assert_eq!(hist.min(), 0);
    }

    #[test]
    fn overflow_values_land_in_the_last_bucket_and_report_max() {
        let mut hist = Histogram::new();
        hist.record(u64::MAX);
        hist.record(1u64 << 50);
        assert_eq!(hist.buckets()[HIST_BUCKETS - 1], 2);
        assert_eq!(hist.percentile(50.0), u64::MAX);
        assert_eq!(hist.percentile(99.0), u64::MAX);
        assert_eq!(hist.max(), u64::MAX);
    }

    #[test]
    fn percentiles_of_a_known_uniform_distribution() {
        // 1..=100: bucket k holds [2^(k-1), 2^k), so rank 50 falls in the
        // [32, 64) bucket and the tail ranks fall in [64, 128) clamped to
        // the true maximum of 100.
        let mut hist = Histogram::new();
        for v in 1..=100u64 {
            hist.record(v);
        }
        assert_eq!(hist.count(), 100);
        assert_eq!(hist.min(), 1);
        assert_eq!(hist.max(), 100);
        assert_eq!(hist.sum(), 5050);
        let p50 = hist.percentile(50.0);
        assert!(
            (32..=64).contains(&p50),
            "p50 {p50} outside its octave bucket"
        );
        assert_eq!(hist.percentile(95.0), 100);
        assert_eq!(hist.percentile(99.0), 100);
    }

    #[test]
    fn percentiles_of_a_known_bimodal_distribution() {
        // 90 fast samples at 2 us, 10 slow at 5000 us: p50/p90 resolve to
        // the fast mode's bucket edge, p95/p99 to the slow tail.
        let mut hist = Histogram::new();
        for _ in 0..90 {
            hist.record(2);
        }
        for _ in 0..10 {
            hist.record(5000);
        }
        assert!(hist.percentile(50.0) <= 4);
        assert!(hist.percentile(90.0) <= 4);
        assert!(hist.percentile(95.0) >= 4096);
        assert_eq!(hist.percentile(99.0), hist.percentile(95.0));
    }

    #[test]
    fn histogram_merge_is_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 5, 900, 0] {
            a.record(v);
        }
        for v in [7u64, 7, 1 << 45] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 7);
        assert_eq!(ab.min(), 0);
        assert_eq!(ab.max(), 1 << 45);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_queryable() {
        let registry = Registry::new();
        registry.counter_add("z.last", 3);
        registry.counter_add("a.first", 1);
        registry.counter_add("z.last", 4);
        registry.gauge_set("g.latest", 2.5);
        registry.gauge_max("g.peak", 10.0);
        registry.gauge_max("g.peak", 4.0);
        registry.observe("h.us", 100);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
        assert_eq!(snapshot.counter("z.last"), 7);
        assert_eq!(snapshot.counter("missing"), 0);
        assert_eq!(snapshot.gauges[1], ("g.peak".to_string(), 10.0));
        assert_eq!(snapshot.histogram("h.us").unwrap().count(), 1);
    }

    #[test]
    fn snapshot_merge_and_deltas() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.counter_add("x", 2);
        r2.counter_add("x", 3);
        r2.counter_add("y", 1);
        r1.observe("h", 1);
        r2.observe("h", 1000);
        let mut merged = r1.snapshot();
        merged.merge(&r2.snapshot());
        assert_eq!(merged.counter("x"), 5);
        assert_eq!(merged.counter("y"), 1);
        assert_eq!(merged.histogram("h").unwrap().count(), 2);

        let earlier = merged.clone();
        let r3 = Registry::new();
        r3.counter_add("x", 10);
        merged.merge(&r3.snapshot());
        let deltas = merged.counter_deltas(&earlier);
        assert!(deltas.contains(&("x".to_string(), 10)));
        assert!(deltas.contains(&("y".to_string(), 0)));
    }

    #[test]
    fn snapshot_json_has_fixed_histogram_shape() {
        let registry = Registry::new();
        registry.observe("rpc.us", 12);
        let json = registry.snapshot().to_json();
        let hist = json.get("histograms").unwrap().get("rpc.us").unwrap();
        for key in ["count", "sum", "min", "max", "p50", "p90", "p95", "p99"] {
            assert!(hist.get(key).is_some(), "missing {key}");
        }
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }
}
