//! Hierarchical spans recorded into per-thread ring buffers.
//!
//! Every thread that records a span lazily registers one ring buffer (capacity
//! `MCSM_TRACE_BUF` spans, oldest-dropped) with the process-wide sink and
//! keeps a stack of open span ids for parent links. Recording a span touches
//! only that thread's buffer — one uncontended mutex lock — so worker threads
//! never serialize against each other. When a thread exits, its buffer is
//! retired into the sink so short-lived `par_map` scope workers do not leak
//! registrations and their spans survive for export.
//!
//! Span ids are process-unique (a shared atomic counter); `parent == 0` means
//! the span had no open parent on its thread. Timestamps come from
//! [`crate::now_ns`] — one monotonic epoch for the whole process, so spans
//! from different threads share a timeline.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default per-thread ring capacity in spans (`MCSM_TRACE_BUF` overrides).
pub const DEFAULT_BUF: usize = 65536;

/// Retired spans kept at the sink once their threads exit, as a multiple of
/// the per-thread capacity. Oldest spans beyond this are dropped (counted).
const RETIRED_FACTOR: usize = 8;

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the innermost span open on the same thread when this one began,
    /// or 0 for a root span.
    pub parent: u64,
    /// Small dense id of the recording thread (assigned on first span).
    pub tid: u64,
    /// Span name, e.g. `rpc.arrival` or `netsim.level`.
    pub name: String,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the process trace epoch, nanoseconds.
    pub end_ns: u64,
    /// Numeric attachments (level index, gate counts, ...).
    pub args: Vec<(&'static str, f64)>,
}

#[derive(Debug)]
struct Ring {
    cap: usize,
    events: VecDeque<SpanEvent>,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, event: SpanEvent) {
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[derive(Debug, Default)]
struct SinkState {
    live: Vec<Arc<Mutex<Ring>>>,
    retired: VecDeque<SpanEvent>,
    retired_dropped: u64,
}

static SINK: Mutex<SinkState> = Mutex::new(SinkState {
    live: Vec::new(),
    retired: VecDeque::new(),
    retired_dropped: 0,
});
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static BUF_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_BUF);

/// Sets the per-thread ring capacity for buffers created from now on
/// (parsed from `MCSM_TRACE_BUF` at arming time).
pub(crate) fn set_buffer_capacity(cap: usize) {
    BUF_CAP.store(cap.max(1), Ordering::Relaxed);
}

fn lock_sink() -> std::sync::MutexGuard<'static, SinkState> {
    match SINK.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

struct ThreadRecorder {
    tid: u64,
    ring: Arc<Mutex<Ring>>,
    stack: Vec<u64>,
}

impl ThreadRecorder {
    fn new() -> Self {
        let ring = Arc::new(Mutex::new(Ring::new(BUF_CAP.load(Ordering::Relaxed))));
        lock_sink().live.push(Arc::clone(&ring));
        ThreadRecorder {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ring,
            stack: Vec::new(),
        }
    }
}

impl Drop for ThreadRecorder {
    fn drop(&mut self) {
        // Retire this thread's spans into the sink so scoped workers neither
        // leak live registrations nor lose their data before export.
        let mut sink = lock_sink();
        sink.live.retain(|entry| !Arc::ptr_eq(entry, &self.ring));
        let mut ring = match self.ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        sink.retired_dropped += ring.dropped;
        let retired_cap = BUF_CAP.load(Ordering::Relaxed).max(1) * RETIRED_FACTOR;
        for event in ring.events.drain(..) {
            if sink.retired.len() >= retired_cap {
                sink.retired.pop_front();
                sink.retired_dropped += 1;
            }
            sink.retired.push_back(event);
        }
    }
}

thread_local! {
    static RECORDER: RefCell<Option<ThreadRecorder>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's recorder, creating it on first use. Returns
/// `None` during thread teardown (the thread-local is already destroyed).
fn with_recorder<R>(f: impl FnOnce(&mut ThreadRecorder) -> R) -> Option<R> {
    RECORDER
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            let recorder = slot.get_or_insert_with(ThreadRecorder::new);
            f(recorder)
        })
        .ok()
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    tid: u64,
    name: String,
    start_ns: u64,
    args: Vec<(&'static str, f64)>,
    ring: Arc<Mutex<Ring>>,
}

/// A RAII span: records one [`SpanEvent`] on drop. Obtained from
/// [`crate::span()`] / [`crate::span_lazy`]; inert (and allocation-free) when
/// tracing is disabled.
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// The inert span the disabled path hands out.
    pub(crate) fn disabled() -> Self {
        Span(None)
    }

    /// Opens a span on the current thread. Only called once the enabled
    /// check has passed.
    pub(crate) fn begin(name: String) -> Self {
        let start_ns = crate::now_ns();
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let opened = with_recorder(|recorder| {
            let parent = recorder.stack.last().copied().unwrap_or(0);
            recorder.stack.push(id);
            (parent, recorder.tid, Arc::clone(&recorder.ring))
        });
        match opened {
            Some((parent, tid, ring)) => Span(Some(ActiveSpan {
                id,
                parent,
                tid,
                name,
                start_ns,
                args: Vec::new(),
                ring,
            })),
            None => Span(None),
        }
    }

    /// Whether this span is actually recording.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Attaches a numeric argument (no-op when disabled).
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if let Some(active) = &mut self.0 {
            active.args.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        let end_ns = crate::now_ns();
        // Pop this span from its thread's open stack. Guards drop LIFO, but
        // tolerate leaked guards by removing the id wherever it sits.
        let _ = RECORDER.try_with(|cell| {
            if let Some(recorder) = cell.borrow_mut().as_mut() {
                match recorder.stack.last() {
                    Some(&top) if top == active.id => {
                        recorder.stack.pop();
                    }
                    _ => recorder.stack.retain(|&id| id != active.id),
                }
            }
        });
        let event = SpanEvent {
            id: active.id,
            parent: active.parent,
            tid: active.tid,
            name: active.name,
            start_ns: active.start_ns,
            end_ns,
            args: active.args,
        };
        let mut ring = match active.ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.push(event);
    }
}

/// Records an already-timed span on the current thread (the `par` job hook,
/// whose timestamps were taken inside `mcsm_num::par`). The parent link is
/// whatever span is open on this thread right now.
pub(crate) fn record_raw(
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    args: Vec<(&'static str, f64)>,
) {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    with_recorder(|recorder| {
        let event = SpanEvent {
            id,
            parent: recorder.stack.last().copied().unwrap_or(0),
            tid: recorder.tid,
            name: name.to_string(),
            start_ns,
            end_ns,
            args,
        };
        let mut ring = match recorder.ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.push(event);
    });
}

/// Collects every recorded span — retired threads first, then a snapshot of
/// each live thread's ring — sorted by `(start_ns, id)` so the result is a
/// deterministic function of the recorded set. Returns the spans and the
/// total number dropped to ring-buffer overflow.
pub fn collect() -> (Vec<SpanEvent>, u64) {
    let sink = lock_sink();
    let mut events: Vec<SpanEvent> = sink.retired.iter().cloned().collect();
    let mut dropped = sink.retired_dropped;
    for ring in &sink.live {
        let ring = match ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        dropped += ring.dropped;
        events.extend(ring.events.iter().cloned());
    }
    drop(sink);
    events.sort_by_key(|event| (event.start_ns, event.id));
    (events, dropped)
}

/// Clears every recorded span (tests and repeated bench passes).
pub fn clear() {
    let mut sink = lock_sink();
    sink.retired.clear();
    sink.retired_dropped = 0;
    for ring in &sink.live {
        let mut ring = match ring.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        ring.events.clear();
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_when_full() {
        let mut ring = Ring::new(2);
        for i in 0..4u64 {
            ring.push(SpanEvent {
                id: i + 1,
                parent: 0,
                tid: 1,
                name: "x".into(),
                start_ns: i,
                end_ns: i + 1,
                args: Vec::new(),
            });
        }
        assert_eq!(ring.dropped, 2);
        assert_eq!(ring.events.len(), 2);
        assert_eq!(ring.events[0].id, 3);
    }
}
