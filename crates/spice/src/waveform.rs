//! Sampled waveforms and timing measurements.
//!
//! Analyses produce [`Waveform`]s — time/value sample pairs — for every node (and
//! voltage-source branch current). The measurement helpers extract the numbers
//! the paper reports: 50 % propagation delay, transition (slew) times and the
//! normalized RMSE between a model waveform and a SPICE reference.

use crate::error::SpiceError;
use mcsm_num::interp::{first_crossing, interp1, resample};
use mcsm_num::stats;
use std::sync::Arc;

/// A sampled signal: strictly increasing times with one value per time point.
///
/// The time vector is reference-counted so families of waveforms sampled on
/// one time base (a simulation output plus its internal-node traces, every
/// signal of one transient analysis) can share a single allocation — see
/// [`Waveform::with_shared_times`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Waveform {
    times: Arc<Vec<f64>>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from parallel time/value vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] if the vectors differ in length,
    /// are empty, or the times are not strictly increasing.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Result<Self, SpiceError> {
        Waveform::with_shared_times(Arc::new(times), values)
    }

    /// Creates a waveform that shares an existing time vector — clone the
    /// `Arc`, not the samples, to build N waveforms on one time base.
    ///
    /// # Errors
    ///
    /// As for [`Waveform::new`].
    pub fn with_shared_times(times: Arc<Vec<f64>>, values: Vec<f64>) -> Result<Self, SpiceError> {
        if times.len() != values.len() {
            return Err(SpiceError::InvalidParameter(format!(
                "waveform needs matching vectors (times {} vs values {})",
                times.len(),
                values.len()
            )));
        }
        if times.is_empty() {
            return Err(SpiceError::InvalidParameter(
                "waveform needs at least one sample".into(),
            ));
        }
        for w in times.windows(2) {
            if w[1] <= w[0] {
                return Err(SpiceError::InvalidParameter(
                    "waveform times must be strictly increasing".into(),
                ));
            }
        }
        Ok(Waveform { times, values })
    }

    /// Sample times (seconds).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The shared time vector, for building further waveforms on the same
    /// time base without cloning it.
    pub fn shared_times(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.times)
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the waveform has no samples (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// First sample time.
    pub fn t_start(&self) -> f64 {
        self.times[0]
    }

    /// Last sample time.
    pub fn t_end(&self) -> f64 {
        *self.times.last().expect("waveform is never empty")
    }

    /// Value at the final sample.
    pub fn final_value(&self) -> f64 {
        *self.values.last().expect("waveform is never empty")
    }

    /// Linearly interpolated value at time `t` (clamped outside the range).
    pub fn value_at(&self, t: f64) -> f64 {
        interp1(&self.times, &self.values, t).expect("waveform invariants guarantee valid interp")
    }

    /// Canonical content hash of the waveform: a seed-free FNV-1a over the
    /// exact IEEE-754 bit patterns of the time and value samples
    /// ([`mcsm_num::hash`]). Two waveforms hash equal iff they are
    /// bit-for-bit equal (shared vs owned time vectors do not matter), which
    /// is what makes the hash usable as a memoization key without breaking
    /// the workspace's bit-identity contract.
    pub fn canonical_hash(&self) -> u64 {
        let mut hasher = mcsm_num::hash::ByteHasher::new();
        hasher.write_f64_slice(&self.times);
        hasher.write_f64_slice(&self.values);
        hasher.finish()
    }

    /// Resamples the waveform onto the given time points.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidParameter`] if the new time base is invalid.
    pub fn resample_onto(&self, new_times: &[f64]) -> Result<Waveform, SpiceError> {
        let values =
            resample(&self.times, &self.values, new_times).map_err(SpiceError::Numerical)?;
        Waveform::new(new_times.to_vec(), values)
    }

    /// Time of the first crossing of `level` in the requested direction, if any.
    pub fn crossing(&self, level: f64, rising: bool) -> Option<f64> {
        first_crossing(&self.times, &self.values, level, rising)
            .expect("waveform invariants guarantee matching lengths")
    }

    /// The sorted union of this waveform's time grid with another's: every
    /// sample time of either waveform appears exactly once, strictly
    /// increasing. Resampling two waveforms onto their merged grid loses no
    /// information from either — the alignment step of a waveform handoff
    /// (e.g. comparing a driver's output against a reference computed on a
    /// different grid).
    pub fn merge_time_grids(&self, other: &Waveform) -> Vec<f64> {
        let (a, b) = (self.times(), other.times());
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&ta), Some(&tb)) if ta < tb => {
                    i += 1;
                    ta
                }
                (Some(&ta), Some(&tb)) if tb < ta => {
                    j += 1;
                    tb
                }
                (Some(&ta), Some(_)) => {
                    i += 1;
                    j += 1;
                    ta
                }
                (Some(&ta), None) => {
                    i += 1;
                    ta
                }
                (None, Some(&tb)) => {
                    j += 1;
                    tb
                }
                (None, None) => unreachable!("loop condition guarantees one side"),
            };
            if merged.last() != Some(&next) {
                merged.push(next);
            }
        }
        merged
    }

    /// The same waveform with every sample time shifted by `offset` seconds
    /// (positive delays the waveform, negative advances it). Values are
    /// untouched, so shape measurements (slews, excursions) are invariant and
    /// crossings move by exactly `offset` — the re-timing step of a waveform
    /// handoff.
    pub fn shifted(&self, offset: f64) -> Waveform {
        Waveform {
            times: Arc::new(self.times.iter().map(|&t| t + offset).collect()),
            values: self.values.clone(),
        }
    }

    /// Minimum sample value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// 10 %–90 % (or 90 %–10 %) transition time with respect to the supply `vdd`.
    ///
    /// Returns `None` if the waveform never crosses both thresholds.
    pub fn transition_time(&self, vdd: f64, rising: bool) -> Option<f64> {
        let (lo, hi) = (0.1 * vdd, 0.9 * vdd);
        if rising {
            let t_lo = self.crossing(lo, true)?;
            let t_hi = self.crossing(hi, true)?;
            Some(t_hi - t_lo)
        } else {
            let t_hi = self.crossing(hi, false)?;
            let t_lo = self.crossing(lo, false)?;
            Some(t_lo - t_hi)
        }
    }

    /// Error-bounded breakpoint pruning: the same signal with every sample
    /// removed whose absence changes the piecewise-linear reconstruction by at
    /// most `eps` (volts) anywhere.
    ///
    /// Single O(n) greedy sweep: walk forward from an anchor sample keeping
    /// the interval of segment slopes that pass within `±eps` of every skipped
    /// sample (the intersection of per-sample slope corridors); when a
    /// candidate sample falls outside the interval, emit the previous sample
    /// as the next breakpoint and restart the corridor there. Because the
    /// difference between the thinned and original waveforms is piecewise
    /// linear with extrema at original sample times, bounding the error at
    /// the original samples bounds it everywhere. First and last samples are
    /// always kept, so `t_start`/`t_end`/`final_value` are invariant.
    ///
    /// `eps <= 0.0` (and NaN) returns a bit-identical clone — the streaming
    /// simulator's "no thinning" mode.
    pub fn thin(&self, eps: f64) -> Waveform {
        let n = self.len();
        if !(eps > 0.0) || n <= 2 {
            return self.clone();
        }
        let (times, values) = (self.times.as_slice(), self.values.as_slice());
        let mut out_times = Vec::with_capacity(8);
        let mut out_values = Vec::with_capacity(8);
        out_times.push(times[0]);
        out_values.push(values[0]);
        let mut anchor = 0usize;
        let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
        let mut k = anchor + 1;
        while k < n - 1 {
            let dt = times[k] - times[anchor];
            let slope = (values[k] - values[anchor]) / dt;
            if slope < lo || slope > hi {
                // The segment can no longer pass within eps of sample k:
                // commit the previous sample and restart the corridor. `k`
                // stays put — it is re-tested against the fresh corridor
                // (never violated at anchor+1, so the sweep always advances).
                anchor = k - 1;
                out_times.push(times[anchor]);
                out_values.push(values[anchor]);
                lo = f64::NEG_INFINITY;
                hi = f64::INFINITY;
                continue;
            }
            lo = lo.max((values[k] - values[anchor] - eps) / dt);
            hi = hi.min((values[k] - values[anchor] + eps) / dt);
            k += 1;
        }
        // The last sample is exact, not approximated: if the final segment
        // cannot reach it within the corridor, keep its predecessor too.
        let dt = times[n - 1] - times[anchor];
        let slope = (values[n - 1] - values[anchor]) / dt;
        if slope < lo || slope > hi {
            out_times.push(times[n - 2]);
            out_values.push(values[n - 2]);
        }
        out_times.push(times[n - 1]);
        out_values.push(values[n - 1]);
        Waveform {
            times: Arc::new(out_times),
            values: out_values,
        }
    }

    /// Normalized RMSE against a reference waveform over the reference's time base
    /// (the paper's Eq. 6 divided by `scale`).
    ///
    /// # Errors
    ///
    /// Propagates resampling errors.
    pub fn normalized_rmse_against(
        &self,
        reference: &Waveform,
        scale: f64,
    ) -> Result<f64, SpiceError> {
        let mine = self.resample_onto(reference.times())?;
        stats::normalized_rmse(reference.values(), mine.values(), scale)
            .map_err(SpiceError::Numerical)
    }
}

/// Combines per-direction crossing times into "earliest crossing, with the
/// direction that produced it" (`true` = rising). Ties go to the rising edge.
///
/// This is the comparison form shared by the timing layer and the netlist
/// simulator: both report arrivals per net without the caller having to guess
/// edge polarities, and both must break ties identically for their results to
/// be comparable.
pub fn earliest_crossing(rising: Option<f64>, falling: Option<f64>) -> Option<(f64, bool)> {
    match (rising, falling) {
        (Some(r), Some(f)) if r <= f => Some((r, true)),
        (Some(_), Some(f)) => Some((f, false)),
        (Some(r), None) => Some((r, true)),
        (None, Some(f)) => Some((f, false)),
        (None, None) => None,
    }
}

/// Measures the 50 % input-to-output propagation delay between two waveforms.
///
/// `input_rising` / `output_rising` select which edges to pair; `vdd` defines the
/// 50 % level. Returns `None` when either waveform lacks the requested edge.
pub fn propagation_delay(
    input: &Waveform,
    output: &Waveform,
    vdd: f64,
    input_rising: bool,
    output_rising: bool,
) -> Option<f64> {
    let mid = 0.5 * vdd;
    let t_in = input.crossing(mid, input_rising)?;
    let t_out = output.crossing(mid, output_rising)?;
    Some(t_out - t_in)
}

/// Measures the 50 % delay of an output edge relative to an absolute event time
/// (used when the "input" is an analytic stimulus rather than a waveform).
pub fn delay_from_event(
    output: &Waveform,
    event_time: f64,
    vdd: f64,
    output_rising: bool,
) -> Option<f64> {
    let mid = 0.5 * vdd;
    let t_out = output.crossing(mid, output_rising)?;
    Some(t_out - event_time)
}

/// A named collection of waveforms produced by one analysis run.
#[derive(Debug, Clone, Default)]
pub struct WaveformSet {
    names: Vec<String>,
    waveforms: Vec<Waveform>,
}

impl WaveformSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        WaveformSet::default()
    }

    /// Adds a named waveform, replacing any existing waveform with the same name.
    pub fn insert(&mut self, name: impl Into<String>, waveform: Waveform) {
        let name = name.into();
        if let Some(pos) = self.names.iter().position(|n| *n == name) {
            self.waveforms[pos] = waveform;
        } else {
            self.names.push(name);
            self.waveforms.push(waveform);
        }
    }

    /// Looks up a waveform by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::MissingSignal`] if the name is unknown.
    pub fn get(&self, name: &str) -> Result<&Waveform, SpiceError> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.waveforms[i])
            .ok_or_else(|| SpiceError::MissingSignal(name.to_string()))
    }

    /// Names of all stored waveforms.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of stored waveforms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(name, waveform)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Waveform)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.waveforms.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_waveform() -> Waveform {
        // 0 → 1.2 V linear ramp between t = 1 ns and 2 ns.
        let times: Vec<f64> = (0..=30).map(|i| i as f64 * 0.1e-9).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| {
                if t <= 1e-9 {
                    0.0
                } else if t >= 2e-9 {
                    1.2
                } else {
                    1.2 * (t - 1e-9) / 1e-9
                }
            })
            .collect();
        Waveform::new(times, values).unwrap()
    }

    #[test]
    fn construction_validates_input() {
        assert!(Waveform::new(vec![], vec![]).is_err());
        assert!(Waveform::new(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(Waveform::new(vec![0.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(Waveform::new(vec![1.0, 0.5], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn value_interpolation_and_extremes() {
        let w = ramp_waveform();
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.5e-9) - 0.6).abs() < 1e-9);
        assert_eq!(w.value_at(10e-9), 1.2);
        assert_eq!(w.min_value(), 0.0);
        assert_eq!(w.max_value(), 1.2);
        assert_eq!(w.final_value(), 1.2);
        assert_eq!(w.t_start(), 0.0);
        assert!((w.t_end() - 3e-9).abs() < 1e-15);
    }

    #[test]
    fn crossings_and_transition_time() {
        let w = ramp_waveform();
        let t50 = w.crossing(0.6, true).unwrap();
        assert!((t50 - 1.5e-9).abs() < 1e-12);
        assert!(w.crossing(0.6, false).is_none());
        let tt = w.transition_time(1.2, true).unwrap();
        assert!((tt - 0.8e-9).abs() < 1e-12);
        assert!(w.transition_time(1.2, false).is_none());
    }

    #[test]
    fn earliest_crossing_picks_the_first_edge() {
        assert_eq!(earliest_crossing(Some(1.0), Some(2.0)), Some((1.0, true)));
        assert_eq!(earliest_crossing(Some(2.0), Some(1.0)), Some((1.0, false)));
        // Ties go to the rising edge; single-direction crossings pass through.
        assert_eq!(earliest_crossing(Some(1.0), Some(1.0)), Some((1.0, true)));
        assert_eq!(earliest_crossing(Some(3.0), None), Some((3.0, true)));
        assert_eq!(earliest_crossing(None, Some(3.0)), Some((3.0, false)));
        assert_eq!(earliest_crossing(None, None), None);
    }

    #[test]
    fn propagation_delay_between_edges() {
        let input = ramp_waveform();
        // Output falls from 1.2 to 0 between 1.8 ns and 2.2 ns.
        let times: Vec<f64> = (0..=30).map(|i| i as f64 * 0.1e-9).collect();
        let values: Vec<f64> = times
            .iter()
            .map(|&t| {
                if t <= 1.8e-9 {
                    1.2
                } else if t >= 2.2e-9 {
                    0.0
                } else {
                    1.2 * (1.0 - (t - 1.8e-9) / 0.4e-9)
                }
            })
            .collect();
        let output = Waveform::new(times, values).unwrap();
        let d = propagation_delay(&input, &output, 1.2, true, false).unwrap();
        assert!((d - 0.5e-9).abs() < 1e-12);
        let d_evt = delay_from_event(&output, 1.5e-9, 1.2, false).unwrap();
        assert!((d_evt - 0.5e-9).abs() < 1e-12);
        assert!(propagation_delay(&input, &output, 1.2, false, false).is_none());
    }

    #[test]
    fn resampling_preserves_shape() {
        let w = ramp_waveform();
        let dense: Vec<f64> = (0..=300).map(|i| i as f64 * 0.01e-9).collect();
        let r = w.resample_onto(&dense).unwrap();
        assert_eq!(r.len(), 301);
        assert!((r.value_at(1.5e-9) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn merged_time_grids_are_the_strictly_increasing_union() {
        let a = Waveform::new(vec![0.0, 1.0, 2.0, 4.0], vec![0.0; 4]).unwrap();
        let b = Waveform::new(vec![0.5, 1.0, 3.0, 5.0], vec![1.0; 4]).unwrap();
        let merged = a.merge_time_grids(&b);
        assert_eq!(merged, vec![0.0, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0]);
        // Symmetric, and self-merge is the identity.
        assert_eq!(merged, b.merge_time_grids(&a));
        assert_eq!(a.merge_time_grids(&a), a.times().to_vec());
        // Resampling both onto the merged grid keeps every original sample.
        let ra = a.resample_onto(&merged).unwrap();
        for (i, &t) in a.times().iter().enumerate() {
            assert_eq!(ra.value_at(t), a.values()[i]);
        }
    }

    #[test]
    fn shifted_waveform_moves_crossings_by_the_offset() {
        let w = ramp_waveform();
        let delayed = w.shifted(0.5e-9);
        assert_eq!(delayed.values(), w.values());
        let t0 = w.crossing(0.6, true).unwrap();
        let t1 = delayed.crossing(0.6, true).unwrap();
        assert!((t1 - t0 - 0.5e-9).abs() < 1e-12);
        // Negative offsets advance; shape metrics are invariant.
        let advanced = w.shifted(-0.25e-9);
        assert!((advanced.t_start() + 0.25e-9).abs() < 1e-15);
        let tt_advanced = advanced.transition_time(1.2, true).unwrap();
        let tt_original = w.transition_time(1.2, true).unwrap();
        assert!((tt_advanced - tt_original).abs() < 1e-18);
    }

    #[test]
    fn resample_onto_clamps_outside_the_time_range() {
        let w = ramp_waveform();
        // Points entirely before and after the sampled range take the edge
        // values (the documented clamping), not an error or extrapolation.
        let r = w.resample_onto(&[-1e-9, -0.5e-9, 5e-9, 6e-9]).unwrap();
        assert_eq!(r.values(), &[0.0, 0.0, 1.2, 1.2]);
        // A non-increasing target grid is rejected.
        assert!(w.resample_onto(&[1e-9, 1e-9]).is_err());
    }

    #[test]
    fn crossing_on_flat_waveforms_is_none() {
        let flat = Waveform::new(vec![0.0, 1e-9, 2e-9], vec![0.6, 0.6, 0.6]).unwrap();
        // A flat signal sitting exactly at the level never *crosses* it.
        assert_eq!(flat.crossing(0.6, true), None);
        assert_eq!(flat.crossing(0.6, false), None);
        assert_eq!(flat.transition_time(1.2, true), None);
        // A level outside the waveform's range is never crossed either.
        let w = ramp_waveform();
        assert_eq!(w.crossing(1.5, true), None);
        assert_eq!(w.crossing(-0.1, false), None);
    }

    #[test]
    fn thin_prunes_within_the_error_bound() {
        let w = ramp_waveform();
        for eps in [1e-6, 0.01, 0.1, 0.5] {
            let t = w.thin(eps);
            assert_eq!(t.t_start(), w.t_start());
            assert_eq!(t.t_end(), w.t_end());
            assert_eq!(t.final_value(), w.final_value());
            assert!(t.len() <= w.len());
            let max_err = w
                .times()
                .iter()
                .zip(w.values())
                .map(|(&tt, &v)| (t.value_at(tt) - v).abs())
                .fold(0.0, f64::max);
            assert!(max_err <= eps + 1e-12, "eps {eps}: err {max_err}");
        }
        // The three-piece ramp collapses to its corner points even at a tight
        // bound — the pruning is shape-aware, not rate-limited.
        assert!(w.thin(1e-6).len() <= 6, "{}", w.thin(1e-6).len());
    }

    #[test]
    fn thin_with_no_budget_is_bit_identical() {
        let w = ramp_waveform();
        assert_eq!(w.thin(0.0), w);
        assert_eq!(w.thin(-1.0), w);
        assert_eq!(w.thin(f64::NAN), w);
        // Degenerate lengths pass through untouched.
        let two = Waveform::new(vec![0.0, 1.0], vec![0.3, 0.9]).unwrap();
        assert_eq!(two.thin(10.0), two);
    }

    #[test]
    fn rmse_between_identical_waveforms_is_zero() {
        let w = ramp_waveform();
        assert!(w.normalized_rmse_against(&w, 1.2).unwrap() < 1e-15);
    }

    #[test]
    fn rmse_detects_offset() {
        let w = ramp_waveform();
        let shifted = Waveform::new(
            w.times().to_vec(),
            w.values().iter().map(|v| v + 0.12).collect(),
        )
        .unwrap();
        let nrmse = shifted.normalized_rmse_against(&w, 1.2).unwrap();
        assert!((nrmse - 0.1).abs() < 1e-12);
    }

    #[test]
    fn waveform_set_insert_get_replace() {
        let mut set = WaveformSet::new();
        assert!(set.is_empty());
        set.insert("out", ramp_waveform());
        assert_eq!(set.len(), 1);
        assert!(set.get("out").is_ok());
        assert!(set.get("missing").is_err());
        // Replacement keeps a single entry.
        set.insert("out", ramp_waveform());
        assert_eq!(set.len(), 1);
        assert_eq!(set.iter().count(), 1);
        assert_eq!(set.names(), &["out".to_string()]);
    }
}
