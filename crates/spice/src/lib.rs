//! A small transistor-level circuit simulator.
//!
//! `mcsm-spice` plays the role HSPICE plays in the paper: it is both the
//! **golden reference** (full transistor-level transient simulation of the cell
//! under test) and the **characterization engine** (DC sweeps and controlled
//! transients that fill the current-source-model tables).
//!
//! The feature set is deliberately scoped to what the reproduction needs:
//!
//! * modified nodal analysis with Newton–Raphson,
//! * DC operating point (with source-stepping continuation) — [`analysis::dc`],
//! * fixed-step transient with backward-Euler / trapezoidal companion models and
//!   automatic step halving — [`analysis::tran`],
//! * linear R / C elements, independent V / I sources with ramp, pulse and PWL
//!   waveforms — [`circuit`], [`source`],
//! * a smooth EKV-style MOSFET model with body effect, channel-length modulation
//!   and parasitic capacitances — [`devices::mosfet`],
//! * sampled-waveform containers and timing measurements — [`waveform`].
//!
//! # Example: an RC low-pass step response
//!
//! ```
//! use mcsm_spice::analysis::{transient, TranOptions};
//! use mcsm_spice::circuit::Circuit;
//! use mcsm_spice::source::SourceWaveform;
//!
//! # fn main() -> Result<(), mcsm_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource(vin, Circuit::ground(), SourceWaveform::dc(1.0))?;
//! ckt.add_resistor(vin, out, 1_000.0)?;
//! ckt.add_capacitor(out, Circuit::ground(), 1e-12)?;
//!
//! let result = transient(&ckt, &TranOptions::new(5e-9, 10e-12))?;
//! let v_out = result.node("out")?;
//! assert!(v_out.final_value() > 0.98);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod circuit;
pub mod devices;
pub mod error;
pub mod source;
pub mod waveform;

pub use analysis::{operating_point, transient, DcOptions, DcSolution, TranOptions, TranResult};
pub use circuit::{Circuit, Element, ElementId, NodeId};
pub use devices::mosfet::{MosfetGeometry, MosfetKind, MosfetParams};
pub use error::SpiceError;
pub use source::SourceWaveform;
pub use waveform::{propagation_delay, Waveform, WaveformSet};
