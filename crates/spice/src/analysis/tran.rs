//! Transient analysis.
//!
//! The transient engine advances the circuit from its DC operating point with a
//! fixed base time step (refined automatically when a step fails to converge),
//! replacing every capacitive branch with a backward-Euler or trapezoidal
//! companion model and solving the resulting nonlinear system with the shared
//! Newton driver. Source breakpoints (ramp corners, pulse edges) are always
//! inserted into the time grid so sharp stimuli are never stepped over.

use super::dc::{operating_point, DcOptions};
use super::{capacitive_branches, AssemblyMode, CapacitorState, MnaLayout, MnaSystem};
use crate::circuit::{Circuit, Element, ElementId};
use crate::error::SpiceError;
use crate::waveform::{Waveform, WaveformSet};
use mcsm_num::integrate::{CapacitorCompanion, CompanionMethod};
use mcsm_num::newton::{solve_newton, NewtonOptions};

/// Options for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TranOptions {
    /// Stop time (seconds); simulation starts at `t = 0`.
    pub t_stop: f64,
    /// Base time step (seconds).
    pub dt: f64,
    /// Integration method for capacitor companion models.
    pub method: CompanionMethod,
    /// Newton iteration controls for each time step.
    pub newton: NewtonOptions,
    /// Options used for the initial DC operating point.
    pub dc: DcOptions,
    /// Maximum number of times a failing step is halved before giving up.
    pub max_step_halvings: usize,
}

impl TranOptions {
    /// Creates options for a run until `t_stop` with the given base step,
    /// using trapezoidal integration and default solver settings.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        TranOptions {
            t_stop,
            dt,
            method: CompanionMethod::Trapezoidal,
            newton: NewtonOptions::default(),
            dc: DcOptions::default(),
            max_step_halvings: 8,
        }
    }
}

/// Result of a transient run: a waveform per node plus per-source branch currents.
#[derive(Debug, Clone)]
pub struct TranResult {
    signals: WaveformSet,
    vsource_ids: Vec<ElementId>,
}

impl TranResult {
    /// The waveform of a node, by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::MissingSignal`] if the node is unknown.
    pub fn node(&self, name: &str) -> Result<&Waveform, SpiceError> {
        self.signals.get(name)
    }

    /// The branch-current waveform of a voltage source (current flowing into its
    /// positive terminal).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::MissingSignal`] if the element is not a recorded
    /// voltage source.
    pub fn vsource_current(&self, id: ElementId) -> Result<&Waveform, SpiceError> {
        if !self.vsource_ids.contains(&id) {
            return Err(SpiceError::MissingSignal(format!(
                "element #{} is not a recorded voltage source",
                id.index()
            )));
        }
        self.signals.get(&branch_signal_name(id))
    }

    /// All recorded signals.
    pub fn signals(&self) -> &WaveformSet {
        &self.signals
    }
}

fn branch_signal_name(id: ElementId) -> String {
    format!("i(v#{})", id.index())
}

/// Runs a transient analysis.
///
/// # Errors
///
/// * [`SpiceError::InvalidParameter`] for non-positive `t_stop` or `dt`.
/// * [`SpiceError::DcConvergence`] if the initial operating point fails.
/// * [`SpiceError::TranConvergence`] if a time step cannot be made to converge
///   even after the allowed number of step halvings.
pub fn transient(circuit: &Circuit, options: &TranOptions) -> Result<TranResult, SpiceError> {
    if !(options.t_stop > 0.0) || !(options.dt > 0.0) {
        return Err(SpiceError::InvalidParameter(format!(
            "transient needs positive t_stop and dt (got {} and {})",
            options.t_stop, options.dt
        )));
    }

    let layout = MnaLayout::new(circuit);

    // Initial condition: DC operating point with sources at t = 0.
    let dc = operating_point(circuit, &options.dc)?;
    let mut x = dc.raw_unknowns().to_vec();
    let mut cap_state = CapacitorState::new(circuit);
    cap_state.initialize(circuit, &layout, &x);

    // Build the time grid: uniform steps plus every source breakpoint.
    let mut grid: Vec<f64> = Vec::new();
    let steps = (options.t_stop / options.dt).ceil() as usize;
    for k in 0..=steps {
        grid.push((k as f64 * options.dt).min(options.t_stop));
    }
    for element in circuit.elements() {
        let wf = match element {
            Element::VoltageSource { waveform, .. } => Some(waveform),
            Element::CurrentSource { waveform, .. } => Some(waveform),
            _ => None,
        };
        if let Some(wf) = wf {
            for bp in wf.breakpoints() {
                if bp > 0.0 && bp < options.t_stop {
                    grid.push(bp);
                }
            }
        }
    }
    grid.sort_by(|a, b| a.partial_cmp(b).expect("time points are finite"));
    grid.dedup_by(|a, b| (*a - *b).abs() < 1e-18);

    // Recorded samples.
    let mut times: Vec<f64> = vec![0.0];
    let mut node_samples: Vec<Vec<f64>> = (0..circuit.node_count())
        .map(|idx| {
            if idx == 0 {
                vec![0.0]
            } else {
                vec![x[idx - 1]]
            }
        })
        .collect();
    let mut branch_samples: Vec<Vec<f64>> = layout
        .vsources()
        .iter()
        .enumerate()
        .map(|(k, _)| vec![x[layout.vsource_slot(k)]])
        .collect();

    let mut t_prev = 0.0;
    for &t_target in grid.iter().skip(1) {
        let mut t_local = t_prev;
        let mut x_local = x.clone();
        let mut state_local = cap_state.clone();

        // Advance from t_prev to t_target, halving the sub-step on failure.
        let mut remaining = t_target - t_local;
        let mut halvings = 0usize;
        while remaining > 1e-21 {
            let dt_try = remaining / (1 << halvings) as f64;
            let t_next = t_local + dt_try;
            match advance_step(
                circuit,
                &layout,
                &x_local,
                &state_local,
                t_next,
                dt_try,
                options,
            ) {
                Ok((x_new, state_new)) => {
                    x_local = x_new;
                    state_local = state_new;
                    t_local = t_next;
                    remaining = t_target - t_local;
                    halvings = halvings.saturating_sub(1);
                }
                Err(detail) => {
                    halvings += 1;
                    if halvings > options.max_step_halvings {
                        return Err(SpiceError::TranConvergence {
                            time: t_next,
                            detail,
                        });
                    }
                }
            }
        }

        x = x_local;
        cap_state = state_local;
        t_prev = t_target;

        times.push(t_target);
        for idx in 1..circuit.node_count() {
            node_samples[idx].push(x[idx - 1]);
        }
        node_samples[0].push(0.0);
        for (k, samples) in branch_samples.iter_mut().enumerate() {
            samples.push(x[layout.vsource_slot(k)]);
        }
    }

    // Package waveforms.
    let mut signals = WaveformSet::new();
    for (idx, name) in circuit.node_names().iter().enumerate() {
        signals.insert(
            name.clone(),
            Waveform::new(times.clone(), node_samples[idx].clone())?,
        );
    }
    for (k, id) in layout.vsources().iter().enumerate() {
        signals.insert(
            branch_signal_name(*id),
            Waveform::new(times.clone(), branch_samples[k].clone())?,
        );
    }

    Ok(TranResult {
        signals,
        vsource_ids: layout.vsources().to_vec(),
    })
}

/// Attempts a single step to absolute time `t_next` with step `dt`.
/// Returns the new unknown vector and updated capacitor state, or a description
/// of the failure.
#[allow(clippy::too_many_arguments)]
fn advance_step(
    circuit: &Circuit,
    layout: &MnaLayout,
    x_prev: &[f64],
    cap_state: &CapacitorState,
    t_next: f64,
    dt: f64,
    options: &TranOptions,
) -> Result<(Vec<f64>, CapacitorState), String> {
    let mut system = MnaSystem {
        circuit,
        layout,
        mode: AssemblyMode::Transient {
            dt,
            method: options.method,
        },
        time: t_next,
        source_scale: 1.0,
        gmin: options.dc.gmin,
        cap_state: Some(cap_state),
    };
    let (x_new, _) =
        solve_newton(&mut system, x_prev, &options.newton).map_err(|e| e.to_string())?;

    // Update the capacitor history for the accepted step.
    let mut new_state = cap_state.clone();
    for (elem_idx, element) in circuit.elements().iter().enumerate() {
        let branches = capacitive_branches(element);
        let offset = cap_state.offsets[elem_idx];
        for (k, (a, b, c)) in branches.iter().enumerate() {
            let v_new = layout.voltage(&x_new, *a) - layout.voltage(&x_new, *b);
            if *c <= 0.0 {
                new_state.branches[offset + k] = (v_new, 0.0);
                continue;
            }
            let (v_prev, i_prev) = cap_state.branches[offset + k];
            let comp = CapacitorCompanion::new(options.method, *c, dt, v_prev, i_prev);
            let i_new = comp.current(v_new);
            new_state.branches[offset + k] = (v_new, i_new);
        }
    }
    Ok((x_new, new_state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::mosfet::{MosfetGeometry, MosfetKind, MosfetParams};
    use crate::source::SourceWaveform;
    use crate::waveform::propagation_delay;

    fn nmos() -> MosfetParams {
        MosfetParams {
            kind: MosfetKind::Nmos,
            vt0: 0.35,
            n: 1.35,
            k_prime: 300e-6,
            lambda: 0.15,
            gamma: 0.35,
            phi: 0.8,
            cox: 9e-3,
            cgdo: 3e-10,
            cgso: 3e-10,
            cgbo: 1e-10,
            cj: 8e-10,
            thermal_voltage: 0.02585,
        }
    }

    fn pmos() -> MosfetParams {
        MosfetParams {
            kind: MosfetKind::Pmos,
            k_prime: 120e-6,
            ..nmos()
        }
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource(
            inp,
            Circuit::ground(),
            SourceWaveform::SaturatedRamp {
                start: 0.0,
                end: 1.0,
                t_start: 0.0,
                t_transition: 1e-12,
            },
        )
        .unwrap();
        c.add_resistor(inp, out, 1_000.0).unwrap();
        c.add_capacitor(out, Circuit::ground(), 1e-12).unwrap();

        let result = transient(&c, &TranOptions::new(5e-9, 5e-12)).unwrap();
        let wave = result.node("out").unwrap();
        // After one time constant (1 ns) the output should be ≈ 63.2 %.
        let v_tau = wave.value_at(1e-9 + 1e-12);
        assert!((v_tau - 0.632).abs() < 0.02, "v(τ) = {v_tau}");
        // Final value approaches 1.
        assert!(wave.final_value() > 0.99);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let c = Circuit::new();
        assert!(transient(&c, &TranOptions::new(0.0, 1e-12)).is_err());
        assert!(transient(&c, &TranOptions::new(1e-9, 0.0)).is_err());
    }

    #[test]
    fn inverter_inverts_a_ramp() {
        let vdd = 1.2;
        let mut c = Circuit::new();
        let vdd_n = c.node("vdd");
        let in_n = c.node("in");
        let out_n = c.node("out");
        c.add_vsource(vdd_n, Circuit::ground(), SourceWaveform::dc(vdd))
            .unwrap();
        c.add_vsource(
            in_n,
            Circuit::ground(),
            SourceWaveform::rising_ramp(vdd, 0.5e-9, 50e-12),
        )
        .unwrap();
        c.add_mosfet(
            out_n,
            in_n,
            Circuit::ground(),
            Circuit::ground(),
            nmos(),
            MosfetGeometry::new(0.4e-6, 0.13e-6),
        )
        .unwrap();
        c.add_mosfet(
            out_n,
            in_n,
            vdd_n,
            vdd_n,
            pmos(),
            MosfetGeometry::new(0.8e-6, 0.13e-6),
        )
        .unwrap();
        // FO-like load.
        c.add_capacitor(out_n, Circuit::ground(), 2e-15).unwrap();

        let result = transient(&c, &TranOptions::new(2e-9, 2e-12)).unwrap();
        let vin = result.node("in").unwrap();
        let vout = result.node("out").unwrap();
        // Starts high, ends low.
        assert!(vout.value_at(0.0) > 0.95 * vdd);
        assert!(vout.final_value() < 0.05 * vdd);
        // Delay is positive and sub-nanosecond for this light load.
        let d = propagation_delay(vin, vout, vdd, true, false).unwrap();
        assert!(d > 0.0 && d < 0.5e-9, "delay = {d}");
    }

    #[test]
    fn inverter_delay_grows_with_load() {
        let vdd = 1.2;
        let delay_with_load = |cl: f64| {
            let mut c = Circuit::new();
            let vdd_n = c.node("vdd");
            let in_n = c.node("in");
            let out_n = c.node("out");
            c.add_vsource(vdd_n, Circuit::ground(), SourceWaveform::dc(vdd))
                .unwrap();
            c.add_vsource(
                in_n,
                Circuit::ground(),
                SourceWaveform::rising_ramp(vdd, 0.5e-9, 50e-12),
            )
            .unwrap();
            c.add_mosfet(
                out_n,
                in_n,
                Circuit::ground(),
                Circuit::ground(),
                nmos(),
                MosfetGeometry::new(0.4e-6, 0.13e-6),
            )
            .unwrap();
            c.add_mosfet(
                out_n,
                in_n,
                vdd_n,
                vdd_n,
                pmos(),
                MosfetGeometry::new(0.8e-6, 0.13e-6),
            )
            .unwrap();
            c.add_capacitor(out_n, Circuit::ground(), cl).unwrap();
            let result = transient(&c, &TranOptions::new(3e-9, 2e-12)).unwrap();
            propagation_delay(
                result.node("in").unwrap(),
                result.node("out").unwrap(),
                vdd,
                true,
                false,
            )
            .unwrap()
        };
        let d_small = delay_with_load(1e-15);
        let d_large = delay_with_load(10e-15);
        assert!(
            d_large > 1.5 * d_small,
            "delay should grow with load: {d_small} vs {d_large}"
        );
    }

    #[test]
    fn vsource_branch_current_is_recorded() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let v = c
            .add_vsource(a, Circuit::ground(), SourceWaveform::dc(1.0))
            .unwrap();
        let r = c.add_resistor(a, Circuit::ground(), 1_000.0).unwrap();
        let result = transient(&c, &TranOptions::new(1e-10, 1e-11)).unwrap();
        let i = result.vsource_current(v).unwrap();
        // 1 mA flows out of the + terminal, so the into-terminal current is −1 mA.
        assert!((i.final_value() + 1e-3).abs() < 1e-6);
        assert!(result.vsource_current(r).is_err());
        assert!(result.node("a").is_ok());
        assert!(result.node("zz").is_err());
    }

    #[test]
    fn backward_euler_also_converges() {
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource(inp, Circuit::ground(), SourceWaveform::dc(1.0))
            .unwrap();
        c.add_resistor(inp, out, 1_000.0).unwrap();
        c.add_capacitor(out, Circuit::ground(), 1e-12).unwrap();
        let mut opts = TranOptions::new(5e-9, 10e-12);
        opts.method = CompanionMethod::BackwardEuler;
        let result = transient(&c, &opts).unwrap();
        assert!(result.node("out").unwrap().final_value() > 0.98);
    }
}
