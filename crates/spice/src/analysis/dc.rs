//! DC operating-point analysis and sweeps.
//!
//! The operating point solves the nonlinear MNA system with all capacitors open.
//! If a cold-start Newton fails (strongly nonlinear circuits, floating stack
//! nodes), the solver falls back to *source stepping*: all independent sources
//! are ramped from zero to their full value in a sequence of Newton solves, each
//! warm-started from the previous one.

use super::{AssemblyMode, MnaLayout, MnaSystem};
use crate::circuit::{Circuit, ElementId, NodeId};
use crate::error::SpiceError;
use mcsm_num::newton::{solve_newton, NewtonOptions};

/// Options for the DC operating-point analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DcOptions {
    /// Newton iteration controls.
    pub newton: NewtonOptions,
    /// Minimum conductance from every node to ground (siemens).
    pub gmin: f64,
    /// Number of source-stepping increments used when the cold start fails.
    pub source_steps: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            source_steps: 20,
        }
    }
}

/// A converged DC solution.
#[derive(Debug, Clone, PartialEq)]
pub struct DcSolution {
    /// Node voltages indexed by [`NodeId::index`] (including ground at index 0).
    voltages: Vec<f64>,
    /// Branch currents of the voltage sources, in MNA (insertion) order.
    vsource_currents: Vec<f64>,
    /// The voltage-source elements in the same order as `vsource_currents`.
    vsource_ids: Vec<ElementId>,
    /// The raw unknown vector (useful as a warm start for a following analysis).
    raw: Vec<f64>,
}

impl DcSolution {
    /// Voltage of a node (volts).
    pub fn voltage(&self, node: NodeId) -> f64 {
        self.voltages[node.index()]
    }

    /// Voltage of a node looked up by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if the name does not exist.
    pub fn voltage_by_name(&self, circuit: &Circuit, name: &str) -> Result<f64, SpiceError> {
        Ok(self.voltage(circuit.find_node(name)?))
    }

    /// All node voltages indexed by node id (ground included at index 0).
    pub fn voltages(&self) -> &[f64] {
        &self.voltages
    }

    /// Current flowing *into the positive terminal* of the given voltage source
    /// (amps). The current the source delivers into the circuit at its positive
    /// terminal is the negative of this value.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a voltage source of
    /// this circuit.
    pub fn vsource_current(&self, id: ElementId) -> Result<f64, SpiceError> {
        self.vsource_ids
            .iter()
            .position(|v| *v == id)
            .map(|i| self.vsource_currents[i])
            .ok_or_else(|| {
                SpiceError::InvalidElement(format!(
                    "element #{} is not a voltage source",
                    id.index()
                ))
            })
    }

    /// The raw MNA unknown vector (non-ground node voltages then branch currents).
    pub fn raw_unknowns(&self) -> &[f64] {
        &self.raw
    }
}

fn pack_solution(circuit: &Circuit, layout: &MnaLayout, x: Vec<f64>) -> DcSolution {
    let mut voltages = vec![0.0; circuit.node_count()];
    voltages[1..circuit.node_count()].copy_from_slice(&x[..circuit.node_count() - 1]);
    let vsource_ids = layout.vsources().to_vec();
    let vsource_currents = (0..vsource_ids.len())
        .map(|k| x[layout.vsource_slot(k)])
        .collect();
    DcSolution {
        voltages,
        vsource_currents,
        vsource_ids,
        raw: x,
    }
}

/// Computes the DC operating point of a circuit (sources evaluated at `t = 0`).
///
/// # Errors
///
/// Returns [`SpiceError::DcConvergence`] if neither the cold start nor source
/// stepping converges, or a numerical error for structurally broken circuits.
pub fn operating_point(circuit: &Circuit, options: &DcOptions) -> Result<DcSolution, SpiceError> {
    operating_point_with_guess(circuit, options, None)
}

/// Computes the DC operating point, optionally warm-starting from a previous
/// solution's raw unknown vector (useful for sweeps).
///
/// # Errors
///
/// Returns [`SpiceError::DcConvergence`] if the analysis does not converge.
pub fn operating_point_with_guess(
    circuit: &Circuit,
    options: &DcOptions,
    guess: Option<&[f64]>,
) -> Result<DcSolution, SpiceError> {
    let layout = MnaLayout::new(circuit);
    let n = layout.unknowns();
    let x0: Vec<f64> = match guess {
        Some(g) if g.len() == n => g.to_vec(),
        _ => vec![0.0; n],
    };

    // Cold (or warm) start at full source strength.
    let mut system = MnaSystem {
        circuit,
        layout: &layout,
        mode: AssemblyMode::Dc,
        time: 0.0,
        source_scale: 1.0,
        gmin: options.gmin,
        cap_state: None,
    };
    if let Ok((x, _)) = solve_newton(&mut system, &x0, &options.newton) {
        return Ok(pack_solution(circuit, &layout, x));
    }

    // Source stepping fallback.
    let mut x = vec![0.0; n];
    let steps = options.source_steps.max(2);
    let mut last_err = String::from("source stepping failed at the first step");
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        let mut system = MnaSystem {
            circuit,
            layout: &layout,
            mode: AssemblyMode::Dc,
            time: 0.0,
            source_scale: scale,
            gmin: options.gmin,
            cap_state: None,
        };
        match solve_newton(&mut system, &x, &options.newton) {
            Ok((next, _)) => x = next,
            Err(e) => {
                last_err = format!("scale {scale:.2}: {e}");
                return Err(SpiceError::DcConvergence { detail: last_err });
            }
        }
    }
    let _ = last_err;
    Ok(pack_solution(circuit, &layout, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::devices::mosfet::{MosfetGeometry, MosfetKind, MosfetParams};
    use crate::source::SourceWaveform;

    fn nmos() -> MosfetParams {
        MosfetParams {
            kind: MosfetKind::Nmos,
            vt0: 0.35,
            n: 1.35,
            k_prime: 300e-6,
            lambda: 0.15,
            gamma: 0.35,
            phi: 0.8,
            cox: 9e-3,
            cgdo: 3e-10,
            cgso: 3e-10,
            cgbo: 1e-10,
            cj: 8e-10,
            thermal_voltage: 0.02585,
        }
    }

    fn pmos() -> MosfetParams {
        MosfetParams {
            kind: MosfetKind::Pmos,
            k_prime: 120e-6,
            ..nmos()
        }
    }

    #[test]
    fn resistive_divider() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        let v = c
            .add_vsource(top, Circuit::ground(), SourceWaveform::dc(1.2))
            .unwrap();
        c.add_resistor(top, mid, 1_000.0).unwrap();
        c.add_resistor(mid, Circuit::ground(), 3_000.0).unwrap();
        let sol = operating_point(&c, &DcOptions::default()).unwrap();
        assert!((sol.voltage(top) - 1.2).abs() < 1e-9);
        assert!((sol.voltage(mid) - 0.9).abs() < 1e-9);
        // 1.2 V across 4 kΩ → 0.3 mA flowing out of the source's + terminal,
        // i.e. −0.3 mA into it.
        let i = sol.vsource_current(v).unwrap();
        assert!((i + 0.3e-3).abs() < 1e-9, "i = {i}");
        assert!((sol.voltage_by_name(&c, "mid").unwrap() - 0.9).abs() < 1e-9);
        assert!(sol.voltage_by_name(&c, "nope").is_err());
    }

    #[test]
    fn current_source_into_resistor() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        c.add_isource(Circuit::ground(), n1, SourceWaveform::dc(1e-3))
            .unwrap();
        c.add_resistor(n1, Circuit::ground(), 2_000.0).unwrap();
        let sol = operating_point(&c, &DcOptions::default()).unwrap();
        assert!((sol.voltage(n1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_settles_to_ground_via_gmin() {
        let mut c = Circuit::new();
        let lonely = c.node("lonely");
        let driven = c.node("driven");
        c.add_vsource(driven, Circuit::ground(), SourceWaveform::dc(1.0))
            .unwrap();
        c.add_resistor(driven, Circuit::ground(), 1e3).unwrap();
        // `lonely` is only connected through a capacitor — open in DC.
        c.add_capacitor(lonely, driven, 1e-15).unwrap();
        let sol = operating_point(&c, &DcOptions::default()).unwrap();
        assert!(sol.voltage(lonely).abs() < 1e-6);
    }

    #[test]
    fn cmos_inverter_transfer_points() {
        // A minimum inverter: NMOS pulls down, PMOS pulls up.
        let vdd = 1.2;
        let build = |vin: f64| {
            let mut c = Circuit::new();
            let vdd_n = c.node("vdd");
            let in_n = c.node("in");
            let out_n = c.node("out");
            c.add_vsource(vdd_n, Circuit::ground(), SourceWaveform::dc(vdd))
                .unwrap();
            c.add_vsource(in_n, Circuit::ground(), SourceWaveform::dc(vin))
                .unwrap();
            c.add_mosfet(
                out_n,
                in_n,
                Circuit::ground(),
                Circuit::ground(),
                nmos(),
                MosfetGeometry::new(0.4e-6, 0.13e-6),
            )
            .unwrap();
            c.add_mosfet(
                out_n,
                in_n,
                vdd_n,
                vdd_n,
                pmos(),
                MosfetGeometry::new(0.8e-6, 0.13e-6),
            )
            .unwrap();
            let out = c.find_node("out").unwrap();
            (c, out)
        };

        let (c_low, out_low) = build(0.0);
        let sol_low = operating_point(&c_low, &DcOptions::default()).unwrap();
        assert!(
            sol_low.voltage(out_low) > 0.95 * vdd,
            "inverter with low input should output ~Vdd, got {}",
            sol_low.voltage(out_low)
        );

        let (c_high, out_high) = build(vdd);
        let sol_high = operating_point(&c_high, &DcOptions::default()).unwrap();
        assert!(
            sol_high.voltage(out_high) < 0.05 * vdd,
            "inverter with high input should output ~0, got {}",
            sol_high.voltage(out_high)
        );

        // Mid-rail input should land somewhere strictly between the rails.
        let (c_mid, out_mid) = build(0.6);
        let sol_mid = operating_point(&c_mid, &DcOptions::default()).unwrap();
        let v = sol_mid.voltage(out_mid);
        assert!(v > 0.05 * vdd && v < 0.95 * vdd, "mid output {v}");
    }

    #[test]
    fn warm_start_reuses_previous_solution() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource(a, Circuit::ground(), SourceWaveform::dc(1.0))
            .unwrap();
        c.add_resistor(a, Circuit::ground(), 1e3).unwrap();
        let opts = DcOptions::default();
        let first = operating_point(&c, &opts).unwrap();
        let second = operating_point_with_guess(&c, &opts, Some(first.raw_unknowns())).unwrap();
        assert!((second.voltage(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vsource_current_rejects_non_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let r = c.add_resistor(a, Circuit::ground(), 1e3).unwrap();
        c.add_vsource(a, Circuit::ground(), SourceWaveform::dc(1.0))
            .unwrap();
        let sol = operating_point(&c, &DcOptions::default()).unwrap();
        assert!(sol.vsource_current(r).is_err());
    }
}
