//! Circuit analyses: DC operating point / sweeps and transient simulation.
//!
//! Both analyses share the same modified-nodal-analysis (MNA) assembly
//! implemented in this module: unknowns are the non-ground node voltages plus
//! one branch current per voltage source, and every element "stamps" its
//! contribution into the Jacobian and residual of a Newton iteration.

pub mod dc;
pub mod tran;

pub use dc::{operating_point, operating_point_with_guess, DcOptions, DcSolution};
pub use tran::{transient, TranOptions, TranResult};

use crate::circuit::{Circuit, Element, ElementId, NodeId};
use crate::devices::mosfet::{device_caps, evaluate_ids};
use mcsm_num::integrate::{CapacitorCompanion, CompanionMethod};
use mcsm_num::matrix::DenseMatrix;
use mcsm_num::{NewtonSystem, NumError};

/// Mapping from circuit nodes / voltage sources to MNA unknown slots.
#[derive(Debug, Clone)]
pub(crate) struct MnaLayout {
    node_count: usize,
    vsources: Vec<ElementId>,
}

impl MnaLayout {
    pub(crate) fn new(circuit: &Circuit) -> Self {
        MnaLayout {
            node_count: circuit.node_count(),
            vsources: circuit.vsource_elements(),
        }
    }

    /// Total number of unknowns.
    pub(crate) fn unknowns(&self) -> usize {
        (self.node_count - 1) + self.vsources.len()
    }

    /// Unknown slot of a node voltage, or `None` for ground.
    pub(crate) fn node_slot(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown slot of the branch current of the `k`-th voltage source.
    pub(crate) fn vsource_slot(&self, ordinal: usize) -> usize {
        (self.node_count - 1) + ordinal
    }

    /// Ordinal (position among voltage sources) of a voltage-source element.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn vsource_ordinal(&self, id: ElementId) -> Option<usize> {
        self.vsources.iter().position(|v| *v == id)
    }

    /// The voltage-source elements in MNA order.
    pub(crate) fn vsources(&self) -> &[ElementId] {
        &self.vsources
    }

    /// Voltage of `node` in the unknown vector `x` (ground reads as 0).
    pub(crate) fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.node_slot(node) {
            Some(slot) => x[slot],
            None => 0.0,
        }
    }
}

/// Per-element capacitive branch descriptions used by the transient analysis.
///
/// Each branch is `(positive node, negative node, capacitance)`.
pub(crate) fn capacitive_branches(element: &Element) -> Vec<(NodeId, NodeId, f64)> {
    match element {
        Element::Capacitor { a, b, farads } => vec![(*a, *b, *farads)],
        Element::Mosfet {
            drain,
            gate,
            source,
            bulk,
            params,
            geometry,
        } => {
            let caps = device_caps(params, geometry);
            vec![
                (*gate, *source, caps.cgs),
                (*gate, *drain, caps.cgd),
                (*gate, *bulk, caps.cgb),
                (*drain, *bulk, caps.cdb),
                (*source, *bulk, caps.csb),
            ]
        }
        _ => vec![],
    }
}

/// Companion-model state for one transient step: for every capacitive branch the
/// voltage across it and the current through it at the previous accepted time
/// point.
#[derive(Debug, Clone, Default)]
pub(crate) struct CapacitorState {
    /// Flattened per-branch `(v_prev, i_prev)` pairs, in element order.
    pub branches: Vec<(f64, f64)>,
    /// Offset of each element's first branch in `branches`.
    pub offsets: Vec<usize>,
}

impl CapacitorState {
    pub(crate) fn new(circuit: &Circuit) -> Self {
        let mut offsets = Vec::with_capacity(circuit.elements().len());
        let mut total = 0usize;
        for e in circuit.elements() {
            offsets.push(total);
            total += e.capacitive_branches();
        }
        CapacitorState {
            branches: vec![(0.0, 0.0); total],
            offsets,
        }
    }

    /// Initializes the branch voltages from a DC solution (currents start at 0).
    pub(crate) fn initialize(&mut self, circuit: &Circuit, layout: &MnaLayout, x: &[f64]) {
        for (idx, element) in circuit.elements().iter().enumerate() {
            let branches = capacitive_branches(element);
            for (k, (a, b, _)) in branches.iter().enumerate() {
                let v = layout.voltage(x, *a) - layout.voltage(x, *b);
                self.branches[self.offsets[idx] + k] = (v, 0.0);
            }
        }
    }
}

/// What the assembly is being used for.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AssemblyMode {
    /// DC: capacitors are open circuits; sources may be scaled for continuation.
    Dc,
    /// Transient: capacitors are replaced by companion models for a step of `dt`
    /// ending at time `time`.
    Transient {
        /// Step size (seconds).
        dt: f64,
        /// Integration method.
        method: CompanionMethod,
    },
}

/// The MNA system handed to the shared Newton solver.
pub(crate) struct MnaSystem<'a> {
    pub circuit: &'a Circuit,
    pub layout: &'a MnaLayout,
    pub mode: AssemblyMode,
    /// Absolute time at which sources are evaluated.
    pub time: f64,
    /// Scale factor applied to all independent sources (source stepping).
    pub source_scale: f64,
    /// Minimum conductance from every node to ground.
    pub gmin: f64,
    /// Previous-step capacitor state (transient only).
    pub cap_state: Option<&'a CapacitorState>,
}

impl<'a> MnaSystem<'a> {
    #[allow(clippy::too_many_arguments)]
    fn stamp_conductance(
        &self,
        jacobian: &mut DenseMatrix,
        residual: &mut [f64],
        a: NodeId,
        b: NodeId,
        g: f64,
        x: &[f64],
        extra_current: f64,
    ) {
        // Branch current a → b: i = g (Va - Vb) + extra_current.
        let va = self.layout.voltage(x, a);
        let vb = self.layout.voltage(x, b);
        let i = g * (va - vb) + extra_current;
        if let Some(ra) = self.layout.node_slot(a) {
            residual[ra] += i;
            jacobian.add(ra, ra, g);
            if let Some(cb) = self.layout.node_slot(b) {
                jacobian.add(ra, cb, -g);
            }
        }
        if let Some(rb) = self.layout.node_slot(b) {
            residual[rb] -= i;
            jacobian.add(rb, rb, g);
            if let Some(ca) = self.layout.node_slot(a) {
                jacobian.add(rb, ca, -g);
            }
        }
    }

    fn stamp_current(&self, residual: &mut [f64], from: NodeId, to: NodeId, amps: f64) {
        if let Some(rf) = self.layout.node_slot(from) {
            residual[rf] += amps;
        }
        if let Some(rt) = self.layout.node_slot(to) {
            residual[rt] -= amps;
        }
    }
}

impl<'a> NewtonSystem for MnaSystem<'a> {
    fn dimension(&self) -> usize {
        self.layout.unknowns()
    }

    fn assemble(
        &mut self,
        x: &[f64],
        jacobian: &mut DenseMatrix,
        residual: &mut Vec<f64>,
    ) -> Result<(), NumError> {
        let mut vsource_ordinal = 0usize;
        for (elem_idx, element) in self.circuit.elements().iter().enumerate() {
            match element {
                Element::Resistor { a, b, ohms } => {
                    self.stamp_conductance(jacobian, residual, *a, *b, 1.0 / ohms, x, 0.0);
                }
                Element::Capacitor { .. } | Element::Mosfet { .. } => {
                    // Capacitive branches (transient only) are stamped below; the
                    // MOSFET channel current is stamped here for both modes.
                    if let Element::Mosfet {
                        drain,
                        gate,
                        source,
                        bulk,
                        params,
                        geometry,
                    } = element
                    {
                        let vg = self.layout.voltage(x, *gate);
                        let vd = self.layout.voltage(x, *drain);
                        let vs = self.layout.voltage(x, *source);
                        let vb = self.layout.voltage(x, *bulk);
                        let eval = evaluate_ids(params, geometry, vg, vd, vs, vb);
                        // ids flows drain → source.
                        if let Some(rd) = self.layout.node_slot(*drain) {
                            residual[rd] += eval.ids;
                            for (node, g) in [
                                (*gate, eval.gm_g),
                                (*drain, eval.gm_d),
                                (*source, eval.gm_s),
                                (*bulk, eval.gm_b),
                            ] {
                                if let Some(c) = self.layout.node_slot(node) {
                                    jacobian.add(rd, c, g);
                                }
                            }
                        }
                        if let Some(rs) = self.layout.node_slot(*source) {
                            residual[rs] -= eval.ids;
                            for (node, g) in [
                                (*gate, eval.gm_g),
                                (*drain, eval.gm_d),
                                (*source, eval.gm_s),
                                (*bulk, eval.gm_b),
                            ] {
                                if let Some(c) = self.layout.node_slot(node) {
                                    jacobian.add(rs, c, -g);
                                }
                            }
                        }
                    }
                    // Companion models for the capacitive branches.
                    if let (AssemblyMode::Transient { dt, method }, Some(state)) =
                        (self.mode, self.cap_state)
                    {
                        let branches = capacitive_branches(element);
                        let offset = state.offsets[elem_idx];
                        for (k, (a, b, c)) in branches.iter().enumerate() {
                            if *c <= 0.0 {
                                continue;
                            }
                            let (v_prev, i_prev) = state.branches[offset + k];
                            let comp = CapacitorCompanion::new(method, *c, dt, v_prev, i_prev);
                            self.stamp_conductance(
                                jacobian, residual, *a, *b, comp.g_eq, x, comp.i_eq,
                            );
                        }
                    }
                }
                Element::VoltageSource {
                    plus,
                    minus,
                    waveform,
                } => {
                    let slot = self.layout.vsource_slot(vsource_ordinal);
                    vsource_ordinal += 1;
                    let i_br = x[slot];
                    // Branch current flows into the plus terminal, out of the minus
                    // terminal (through the source).
                    if let Some(rp) = self.layout.node_slot(*plus) {
                        residual[rp] += i_br;
                        jacobian.add(rp, slot, 1.0);
                    }
                    if let Some(rm) = self.layout.node_slot(*minus) {
                        residual[rm] -= i_br;
                        jacobian.add(rm, slot, -1.0);
                    }
                    // Branch equation: V(plus) - V(minus) = value.
                    let value = waveform.eval(self.time) * self.source_scale;
                    let vp = self.layout.voltage(x, *plus);
                    let vm = self.layout.voltage(x, *minus);
                    residual[slot] = vp - vm - value;
                    if let Some(cp) = self.layout.node_slot(*plus) {
                        jacobian.add(slot, cp, 1.0);
                    }
                    if let Some(cm) = self.layout.node_slot(*minus) {
                        jacobian.add(slot, cm, -1.0);
                    }
                }
                Element::CurrentSource { from, to, waveform } => {
                    let amps = waveform.eval(self.time) * self.source_scale;
                    self.stamp_current(residual, *from, *to, amps);
                }
            }
        }

        // gmin from every non-ground node to ground keeps floating nodes solvable.
        for node_idx in 1..self.layout.node_count {
            let slot = node_idx - 1;
            residual[slot] += self.gmin * x[slot];
            jacobian.add(slot, slot, self.gmin);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceWaveform;

    #[test]
    fn layout_maps_nodes_and_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor(a, b, 1.0).unwrap();
        let v = c
            .add_vsource(a, Circuit::ground(), SourceWaveform::dc(1.0))
            .unwrap();
        let layout = MnaLayout::new(&c);
        assert_eq!(layout.unknowns(), 3);
        assert_eq!(layout.node_slot(Circuit::ground()), None);
        assert_eq!(layout.node_slot(a), Some(0));
        assert_eq!(layout.node_slot(b), Some(1));
        assert_eq!(layout.vsource_ordinal(v), Some(0));
        assert_eq!(layout.vsource_slot(0), 2);
        let x = vec![1.0, 0.5, -0.1];
        assert_eq!(layout.voltage(&x, a), 1.0);
        assert_eq!(layout.voltage(&x, Circuit::ground()), 0.0);
    }

    #[test]
    fn capacitor_state_sizing() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_capacitor(a, Circuit::ground(), 1e-15).unwrap();
        c.add_resistor(a, Circuit::ground(), 1e3).unwrap();
        let state = CapacitorState::new(&c);
        assert_eq!(state.branches.len(), 1);
        assert_eq!(state.offsets, vec![0, 1]);
    }
}
