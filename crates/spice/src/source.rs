//! Time-dependent source waveform descriptions.
//!
//! Voltage (and current) sources evaluate one of these analytic waveform shapes
//! at every simulation time point. The saturated ramp — the canonical input
//! stimulus of library characterization — is a first-class variant rather than a
//! special case of PWL so that call sites stay readable.

/// An analytic waveform shape evaluated at absolute simulation time.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// A constant level.
    Dc {
        /// Constant value (volts for voltage sources, amps for current sources).
        level: f64,
    },
    /// A saturated ramp: holds `start` until `t_start`, ramps linearly to `end`
    /// over `t_transition`, then holds `end`.
    SaturatedRamp {
        /// Initial level.
        start: f64,
        /// Final level.
        end: f64,
        /// Time at which the ramp begins (seconds).
        t_start: f64,
        /// Duration of the linear transition (seconds).
        t_transition: f64,
    },
    /// A single pulse: `base` → `peak` → `base`.
    Pulse {
        /// Level before and after the pulse.
        base: f64,
        /// Level during the pulse.
        peak: f64,
        /// Time at which the leading edge starts (seconds).
        t_delay: f64,
        /// Leading edge duration (seconds).
        t_rise: f64,
        /// Time spent at `peak` between the edges (seconds).
        t_width: f64,
        /// Trailing edge duration (seconds).
        t_fall: f64,
    },
    /// Piecewise-linear waveform defined by `(time, value)` breakpoints.
    ///
    /// Before the first breakpoint the waveform holds the first value; after the
    /// last breakpoint it holds the last value.
    Pwl {
        /// Breakpoints sorted by ascending time.
        points: Vec<(f64, f64)>,
    },
}

impl SourceWaveform {
    /// A constant waveform.
    pub fn dc(level: f64) -> Self {
        SourceWaveform::Dc { level }
    }

    /// A rising saturated ramp from 0 to `vdd`.
    pub fn rising_ramp(vdd: f64, t_start: f64, t_transition: f64) -> Self {
        SourceWaveform::SaturatedRamp {
            start: 0.0,
            end: vdd,
            t_start,
            t_transition,
        }
    }

    /// A falling saturated ramp from `vdd` to 0.
    pub fn falling_ramp(vdd: f64, t_start: f64, t_transition: f64) -> Self {
        SourceWaveform::SaturatedRamp {
            start: vdd,
            end: 0.0,
            t_start,
            t_transition,
        }
    }

    /// Evaluates the waveform at absolute time `t` (seconds).
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc { level } => *level,
            SourceWaveform::SaturatedRamp {
                start,
                end,
                t_start,
                t_transition,
            } => {
                if t <= *t_start {
                    *start
                } else if t >= *t_start + *t_transition || *t_transition <= 0.0 {
                    *end
                } else {
                    let frac = (t - t_start) / t_transition;
                    start + frac * (end - start)
                }
            }
            SourceWaveform::Pulse {
                base,
                peak,
                t_delay,
                t_rise,
                t_width,
                t_fall,
            } => {
                let t1 = *t_delay;
                let t2 = t1 + *t_rise;
                let t3 = t2 + *t_width;
                let t4 = t3 + *t_fall;
                if t <= t1 {
                    *base
                } else if t < t2 {
                    base + (peak - base) * (t - t1) / (t2 - t1)
                } else if t <= t3 {
                    *peak
                } else if t < t4 {
                    peak + (base - peak) * (t - t3) / (t4 - t3)
                } else {
                    *base
                }
            }
            SourceWaveform::Pwl { points } => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// Canonical content hash of the analytic shape: a variant tag plus the
    /// exact IEEE-754 bit patterns of the parameters, through the seed-free
    /// hasher in [`mcsm_num::hash`]. Two sources hash equal iff they are the
    /// same variant with bit-identical parameters; an analytic shape and its
    /// sampled equivalent hash *differently* by design (hash equality must
    /// imply bit-identical evaluation, the converse is not required).
    pub fn canonical_hash(&self) -> u64 {
        let mut hasher = mcsm_num::hash::ByteHasher::new();
        match self {
            SourceWaveform::Dc { level } => {
                hasher.write_u8(0);
                hasher.write_f64(*level);
            }
            SourceWaveform::SaturatedRamp {
                start,
                end,
                t_start,
                t_transition,
            } => {
                hasher.write_u8(1);
                hasher.write_f64_slice(&[*start, *end, *t_start, *t_transition]);
            }
            SourceWaveform::Pulse {
                base,
                peak,
                t_delay,
                t_rise,
                t_width,
                t_fall,
            } => {
                hasher.write_u8(2);
                hasher.write_f64_slice(&[*base, *peak, *t_delay, *t_rise, *t_width, *t_fall]);
            }
            SourceWaveform::Pwl { points } => {
                hasher.write_u8(3);
                hasher.write_u64(points.len() as u64);
                for &(t, v) in points {
                    hasher.write_f64(t);
                    hasher.write_f64(v);
                }
            }
        }
        hasher.finish()
    }

    /// Returns the set of time points at which the waveform has a slope break.
    ///
    /// The transient engine forces a time step onto each breakpoint so sharp
    /// edges are never stepped over.
    pub fn breakpoints(&self) -> Vec<f64> {
        match self {
            SourceWaveform::Dc { .. } => vec![],
            SourceWaveform::SaturatedRamp {
                t_start,
                t_transition,
                ..
            } => vec![*t_start, *t_start + *t_transition],
            SourceWaveform::Pulse {
                t_delay,
                t_rise,
                t_width,
                t_fall,
                ..
            } => {
                let t1 = *t_delay;
                let t2 = t1 + *t_rise;
                let t3 = t2 + *t_width;
                let t4 = t3 + *t_fall;
                vec![t1, t2, t3, t4]
            }
            SourceWaveform::Pwl { points } => points.iter().map(|(t, _)| *t).collect(),
        }
    }

    /// The value the waveform settles to as `t → ∞` (used for final-value checks).
    pub fn final_value(&self) -> f64 {
        match self {
            SourceWaveform::Dc { level } => *level,
            SourceWaveform::SaturatedRamp { end, .. } => *end,
            SourceWaveform::Pulse { base, .. } => *base,
            SourceWaveform::Pwl { points } => points.last().map(|(_, v)| *v).unwrap_or(0.0),
        }
    }
}

impl Default for SourceWaveform {
    fn default() -> Self {
        SourceWaveform::Dc { level: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_flat() {
        let w = SourceWaveform::dc(1.2);
        assert_eq!(w.eval(0.0), 1.2);
        assert_eq!(w.eval(1.0), 1.2);
        assert!(w.breakpoints().is_empty());
        assert_eq!(w.final_value(), 1.2);
    }

    #[test]
    fn saturated_ramp_profile() {
        let w = SourceWaveform::rising_ramp(1.2, 1e-9, 100e-12);
        assert_eq!(w.eval(0.0), 0.0);
        assert_eq!(w.eval(1e-9), 0.0);
        assert!((w.eval(1.05e-9) - 0.6).abs() < 1e-12);
        assert!((w.eval(1.1e-9) - 1.2).abs() < 1e-12);
        assert_eq!(w.eval(5e-9), 1.2);
        assert_eq!(w.final_value(), 1.2);
        assert_eq!(w.breakpoints().len(), 2);
    }

    #[test]
    fn falling_ramp_profile() {
        let w = SourceWaveform::falling_ramp(1.2, 0.0, 200e-12);
        assert_eq!(w.eval(0.0), 1.2);
        assert!((w.eval(100e-12) - 0.6).abs() < 1e-12);
        assert_eq!(w.eval(1e-9), 0.0);
    }

    #[test]
    fn zero_transition_ramp_is_a_step() {
        let w = SourceWaveform::SaturatedRamp {
            start: 0.0,
            end: 1.0,
            t_start: 1e-9,
            t_transition: 0.0,
        };
        assert_eq!(w.eval(0.999e-9), 0.0);
        assert_eq!(w.eval(1.001e-9), 1.0);
    }

    #[test]
    fn pulse_profile() {
        let w = SourceWaveform::Pulse {
            base: 0.0,
            peak: 1.2,
            t_delay: 1e-9,
            t_rise: 100e-12,
            t_width: 300e-12,
            t_fall: 100e-12,
        };
        assert_eq!(w.eval(0.5e-9), 0.0);
        assert!((w.eval(1.05e-9) - 0.6).abs() < 1e-12);
        assert_eq!(w.eval(1.2e-9), 1.2);
        assert!((w.eval(1.45e-9) - 0.6).abs() < 1e-12);
        assert_eq!(w.eval(2.0e-9), 0.0);
        assert_eq!(w.breakpoints().len(), 4);
        assert_eq!(w.final_value(), 0.0);
    }

    #[test]
    fn pwl_profile_and_clamping() {
        let w = SourceWaveform::Pwl {
            points: vec![(1.0, 0.0), (2.0, 2.0), (3.0, 1.0)],
        };
        assert_eq!(w.eval(0.0), 0.0);
        assert!((w.eval(1.5) - 1.0).abs() < 1e-12);
        assert!((w.eval(2.5) - 1.5).abs() < 1e-12);
        assert_eq!(w.eval(10.0), 1.0);
        assert_eq!(w.final_value(), 1.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        let w = SourceWaveform::Pwl { points: vec![] };
        assert_eq!(w.eval(1.0), 0.0);
        assert_eq!(w.final_value(), 0.0);
    }
}
