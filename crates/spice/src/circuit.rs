//! Circuit description: nodes, elements and the netlist builder.
//!
//! A [`Circuit`] is a flat netlist of named nodes and elements. The builder API
//! mirrors how one writes a SPICE deck: create (or look up) nodes, then attach
//! resistors, capacitors, sources and MOSFETs between them. Analyses
//! ([`crate::analysis`]) consume the circuit read-only, so a characterized cell
//! netlist can be reused across many sweeps.

use crate::devices::mosfet::{MosfetGeometry, MosfetParams};
use crate::error::SpiceError;
use crate::source::SourceWaveform;
use std::collections::HashMap;

/// Identifier of a circuit node.
///
/// `NodeId::GROUND` is the reference node; every circuit has it implicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground / reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Raw index of the node (0 is ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this is the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of an element within its circuit (index into the element list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

impl ElementId {
    /// Raw index of the element.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A netlist element.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A linear resistor between two nodes.
    Resistor {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Resistance in ohms.
        ohms: f64,
    },
    /// A linear capacitor between two nodes.
    Capacitor {
        /// Positive terminal.
        a: NodeId,
        /// Negative terminal.
        b: NodeId,
        /// Capacitance in farads.
        farads: f64,
    },
    /// An independent voltage source; `plus` is held at `waveform(t)` volts above
    /// `minus`. Contributes one branch-current unknown to the MNA system.
    VoltageSource {
        /// Positive terminal.
        plus: NodeId,
        /// Negative terminal.
        minus: NodeId,
        /// Voltage as a function of time.
        waveform: SourceWaveform,
    },
    /// An independent current source pushing `waveform(t)` amps from `from`
    /// through the source into `to`.
    CurrentSource {
        /// Terminal the current leaves.
        from: NodeId,
        /// Terminal the current enters.
        to: NodeId,
        /// Current as a function of time.
        waveform: SourceWaveform,
    },
    /// A four-terminal MOSFET.
    Mosfet {
        /// Drain terminal.
        drain: NodeId,
        /// Gate terminal.
        gate: NodeId,
        /// Source terminal.
        source: NodeId,
        /// Bulk terminal.
        bulk: NodeId,
        /// Model card.
        params: MosfetParams,
        /// Instance geometry.
        geometry: MosfetGeometry,
    },
}

impl Element {
    /// Number of internal capacitive branches this element contributes to a
    /// transient analysis (used to size the history state).
    pub(crate) fn capacitive_branches(&self) -> usize {
        match self {
            Element::Capacitor { .. } => 1,
            Element::Mosfet { .. } => 5,
            _ => 0,
        }
    }
}

/// A flat netlist of nodes and elements.
///
/// # Example
///
/// ```
/// use mcsm_spice::circuit::Circuit;
/// use mcsm_spice::source::SourceWaveform;
///
/// # fn main() -> Result<(), mcsm_spice::SpiceError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let out = ckt.node("out");
/// ckt.add_vsource(vin, Circuit::ground(), SourceWaveform::dc(1.0))?;
/// ckt.add_resistor(vin, out, 1_000.0)?;
/// ckt.add_resistor(out, Circuit::ground(), 1_000.0)?;
/// assert_eq!(ckt.node_count(), 3); // ground + in + out
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    name_to_node: HashMap<String, NodeId>,
    elements: Vec<Element>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node (named `"0"`).
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: Vec::new(),
            name_to_node: HashMap::new(),
            elements: Vec::new(),
        };
        c.node_names.push("0".to_string());
        c.name_to_node.insert("0".to_string(), NodeId::GROUND);
        c
    }

    /// The ground node.
    pub fn ground() -> NodeId {
        NodeId::GROUND
    }

    /// Returns the node with the given name, creating it if necessary.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.name_to_node.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.name_to_node.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if no node with that name exists.
    pub fn find_node(&self, name: &str) -> Result<NodeId, SpiceError> {
        self.name_to_node
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownNode(name.to_string()))
    }

    /// Name of a node.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if the id is out of range.
    pub fn node_name(&self, node: NodeId) -> Result<&str, SpiceError> {
        self.node_names
            .get(node.0)
            .map(String::as_str)
            .ok_or_else(|| SpiceError::UnknownNode(format!("#{}", node.0)))
    }

    /// Total number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// All elements in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// The element with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if the id is out of range.
    pub fn element(&self, id: ElementId) -> Result<&Element, SpiceError> {
        self.elements
            .get(id.0)
            .ok_or_else(|| SpiceError::InvalidElement(format!("no element #{}", id.0)))
    }

    fn check_node(&self, node: NodeId, context: &str) -> Result<(), SpiceError> {
        if node.0 < self.node_names.len() {
            Ok(())
        } else {
            Err(SpiceError::UnknownNode(format!(
                "{context}: node #{} does not exist",
                node.0
            )))
        }
    }

    fn push(&mut self, element: Element) -> ElementId {
        let id = ElementId(self.elements.len());
        self.elements.push(element);
        id
    }

    /// Adds a resistor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive resistance.
    pub fn add_resistor(
        &mut self,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<ElementId, SpiceError> {
        self.check_node(a, "resistor")?;
        self.check_node(b, "resistor")?;
        if !(ohms > 0.0) || !ohms.is_finite() {
            return Err(SpiceError::InvalidParameter(format!(
                "resistance must be positive and finite, got {ohms}"
            )));
        }
        Ok(self.push(Element::Resistor { a, b, ohms }))
    }

    /// Adds a capacitor between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and negative or non-finite capacitance.
    pub fn add_capacitor(
        &mut self,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<ElementId, SpiceError> {
        self.check_node(a, "capacitor")?;
        self.check_node(b, "capacitor")?;
        if farads < 0.0 || !farads.is_finite() {
            return Err(SpiceError::InvalidParameter(format!(
                "capacitance must be non-negative and finite, got {farads}"
            )));
        }
        Ok(self.push(Element::Capacitor { a, b, farads }))
    }

    /// Adds an independent voltage source holding `plus` at `waveform(t)` volts
    /// above `minus`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and a source shorted onto a single node.
    pub fn add_vsource(
        &mut self,
        plus: NodeId,
        minus: NodeId,
        waveform: SourceWaveform,
    ) -> Result<ElementId, SpiceError> {
        self.check_node(plus, "vsource")?;
        self.check_node(minus, "vsource")?;
        if plus == minus {
            return Err(SpiceError::InvalidElement(
                "voltage source terminals must differ".into(),
            ));
        }
        Ok(self.push(Element::VoltageSource {
            plus,
            minus,
            waveform,
        }))
    }

    /// Adds an independent current source pushing `waveform(t)` amps from `from`
    /// into `to`.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes.
    pub fn add_isource(
        &mut self,
        from: NodeId,
        to: NodeId,
        waveform: SourceWaveform,
    ) -> Result<ElementId, SpiceError> {
        self.check_node(from, "isource")?;
        self.check_node(to, "isource")?;
        Ok(self.push(Element::CurrentSource { from, to, waveform }))
    }

    /// Adds a MOSFET.
    ///
    /// # Errors
    ///
    /// Rejects unknown nodes and non-positive geometry.
    pub fn add_mosfet(
        &mut self,
        drain: NodeId,
        gate: NodeId,
        source: NodeId,
        bulk: NodeId,
        params: MosfetParams,
        geometry: MosfetGeometry,
    ) -> Result<ElementId, SpiceError> {
        self.check_node(drain, "mosfet")?;
        self.check_node(gate, "mosfet")?;
        self.check_node(source, "mosfet")?;
        self.check_node(bulk, "mosfet")?;
        if !(geometry.width > 0.0) || !(geometry.length > 0.0) {
            return Err(SpiceError::InvalidParameter(format!(
                "mosfet geometry must be positive (w = {}, l = {})",
                geometry.width, geometry.length
            )));
        }
        Ok(self.push(Element::Mosfet {
            drain,
            gate,
            source,
            bulk,
            params,
            geometry,
        }))
    }

    /// Replaces the waveform of an existing voltage source (used heavily by
    /// characterization sweeps that re-run the same netlist with new stimuli).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a voltage source.
    pub fn set_vsource_waveform(
        &mut self,
        id: ElementId,
        waveform: SourceWaveform,
    ) -> Result<(), SpiceError> {
        match self.elements.get_mut(id.0) {
            Some(Element::VoltageSource { waveform: w, .. }) => {
                *w = waveform;
                Ok(())
            }
            Some(_) => Err(SpiceError::InvalidElement(format!(
                "element #{} is not a voltage source",
                id.0
            ))),
            None => Err(SpiceError::InvalidElement(format!("no element #{}", id.0))),
        }
    }

    /// Names of all nodes, indexed by [`NodeId::index`].
    pub fn node_names(&self) -> &[String] {
        &self.node_names
    }

    /// Indices (into the MNA unknown vector layout) of all voltage sources, in
    /// insertion order. Used by analyses to map sources to branch currents.
    pub(crate) fn vsource_elements(&self) -> Vec<ElementId> {
        self.elements
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Element::VoltageSource { .. } => Some(ElementId(i)),
                _ => None,
            })
            .collect()
    }

    /// Total number of MNA unknowns: non-ground node voltages plus one branch
    /// current per voltage source.
    pub fn unknown_count(&self) -> usize {
        (self.node_count() - 1) + self.vsource_elements().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::mosfet::{MosfetKind, MosfetParams};

    fn any_params() -> MosfetParams {
        MosfetParams {
            kind: MosfetKind::Nmos,
            vt0: 0.35,
            n: 1.3,
            k_prime: 3e-4,
            lambda: 0.1,
            gamma: 0.3,
            phi: 0.8,
            cox: 9e-3,
            cgdo: 3e-10,
            cgso: 3e-10,
            cgbo: 1e-10,
            cj: 8e-10,
            thermal_voltage: 0.02585,
        }
    }

    #[test]
    fn nodes_are_deduplicated_by_name() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.find_node("a").unwrap(), a);
        assert!(c.find_node("missing").is_err());
        assert_eq!(c.node_name(a).unwrap(), "a");
        assert_eq!(c.node_name(Circuit::ground()).unwrap(), "0");
    }

    #[test]
    fn unknown_count_counts_vsources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor(a, b, 100.0).unwrap();
        assert_eq!(c.unknown_count(), 2);
        c.add_vsource(a, Circuit::ground(), SourceWaveform::dc(1.0))
            .unwrap();
        assert_eq!(c.unknown_count(), 3);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        assert!(c.add_resistor(a, Circuit::ground(), 0.0).is_err());
        assert!(c.add_resistor(a, Circuit::ground(), -5.0).is_err());
        assert!(c.add_capacitor(a, Circuit::ground(), -1e-15).is_err());
        assert!(c.add_vsource(a, a, SourceWaveform::dc(1.0)).is_err());
        assert!(c
            .add_mosfet(a, a, a, a, any_params(), MosfetGeometry::new(0.0, 0.13e-6))
            .is_err());
    }

    #[test]
    fn unknown_nodes_are_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let bogus = NodeId(42);
        assert!(c.add_resistor(a, bogus, 100.0).is_err());
        assert!(c.node_name(bogus).is_err());
    }

    #[test]
    fn set_vsource_waveform_replaces_only_vsources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let r = c.add_resistor(a, Circuit::ground(), 100.0).unwrap();
        let v = c
            .add_vsource(a, Circuit::ground(), SourceWaveform::dc(0.0))
            .unwrap();
        assert!(c.set_vsource_waveform(v, SourceWaveform::dc(1.2)).is_ok());
        assert!(c.set_vsource_waveform(r, SourceWaveform::dc(1.2)).is_err());
        assert!(c
            .set_vsource_waveform(ElementId(99), SourceWaveform::dc(1.2))
            .is_err());
        match c.element(v).unwrap() {
            Element::VoltageSource { waveform, .. } => {
                assert_eq!(waveform.eval(0.0), 1.2);
            }
            _ => panic!("expected voltage source"),
        }
    }

    #[test]
    fn capacitive_branch_counts() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let cap = c.add_capacitor(a, Circuit::ground(), 1e-15).unwrap();
        let res = c.add_resistor(a, Circuit::ground(), 1e3).unwrap();
        let mos = c
            .add_mosfet(
                a,
                a,
                Circuit::ground(),
                Circuit::ground(),
                any_params(),
                MosfetGeometry::new(0.2e-6, 0.13e-6),
            )
            .unwrap();
        assert_eq!(c.element(cap).unwrap().capacitive_branches(), 1);
        assert_eq!(c.element(res).unwrap().capacitive_branches(), 0);
        assert_eq!(c.element(mos).unwrap().capacitive_branches(), 5);
    }

    #[test]
    fn elements_are_returned_in_insertion_order() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_resistor(a, Circuit::ground(), 1.0).unwrap();
        c.add_capacitor(a, Circuit::ground(), 1e-15).unwrap();
        assert_eq!(c.elements().len(), 2);
        assert!(matches!(c.elements()[0], Element::Resistor { .. }));
        assert!(matches!(c.elements()[1], Element::Capacitor { .. }));
    }
}
