//! Device models used by the circuit simulator.
//!
//! Only the MOSFET warrants its own module; the linear elements (resistor,
//! capacitor, sources) are simple enough to live directly in the
//! [`crate::circuit::Element`] enum.

pub mod mosfet;

pub use mosfet::{
    device_caps, evaluate_ids, MosfetCaps, MosfetEval, MosfetGeometry, MosfetKind, MosfetParams,
};
