//! A smooth EKV-style MOSFET compact model.
//!
//! The reproduction does not need a production BSIM model — it needs a model
//! that is (a) smooth enough for Newton to converge reliably and (b) physically
//! rich enough to produce the effects the paper studies:
//!
//! * saturation / triode behaviour and channel-length modulation (output
//!   conductance) so gate delays scale sensibly with load and input slew;
//! * **body effect**, because the internal node of a NOR2 pulled down through
//!   the lower PMOS settles at a body-affected `|Vt,p|` (Section 2.2);
//! * subthreshold conduction so "off" stacks leak a little and floating nodes
//!   behave smoothly;
//! * gate-overlap (Miller) capacitances, because the `ΔV` kicks on the internal
//!   node in Fig. 3 are injected through the gate–drain capacitance of the stack
//!   devices;
//! * source/drain junction capacitances, which form the internal-node
//!   capacitance `C_N` that stores the history charge.
//!
//! The EKV formulation (`I_D = I_S · [F(v_p − v_s) − F(v_p − v_d)]` with
//! `F(v) = ln²(1 + e^{v/2})`) is used because it is symmetric in drain/source
//! (stack devices routinely swap roles) and is smooth across all operating
//! regions, which keeps the Newton iterations robust.

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosfetKind {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Technology-level model card shared by all devices of one polarity.
///
/// All values are in SI units. The defaults in `mcsm-cells` describe a synthetic
/// 130 nm-like process with a 1.2 V supply.
#[derive(Debug, Clone, PartialEq)]
pub struct MosfetParams {
    /// Channel polarity.
    pub kind: MosfetKind,
    /// Zero-bias threshold voltage magnitude (volts, positive for both kinds).
    pub vt0: f64,
    /// Subthreshold slope factor `n` (dimensionless, ≥ 1).
    pub n: f64,
    /// Transconductance parameter `k' = µ C_ox` (A/V²).
    pub k_prime: f64,
    /// Channel-length modulation coefficient λ (1/V).
    pub lambda: f64,
    /// Body-effect coefficient γ (√V).
    pub gamma: f64,
    /// Surface potential 2Φ_F (volts).
    pub phi: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// Gate–drain overlap capacitance per width (F/m).
    pub cgdo: f64,
    /// Gate–source overlap capacitance per width (F/m).
    pub cgso: f64,
    /// Gate–bulk overlap capacitance per length (F/m).
    pub cgbo: f64,
    /// Source/drain junction capacitance per width (F/m); lumps area and
    /// sidewall contributions of a minimum-length diffusion.
    pub cj: f64,
    /// Thermal voltage kT/q at the simulation temperature (volts).
    pub thermal_voltage: f64,
}

impl MosfetParams {
    /// True if this is an N-channel card.
    pub fn is_nmos(&self) -> bool {
        self.kind == MosfetKind::Nmos
    }
}

/// Geometry of one MOSFET instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetGeometry {
    /// Drawn channel width (meters).
    pub width: f64,
    /// Drawn channel length (meters).
    pub length: f64,
}

impl MosfetGeometry {
    /// Creates a geometry, in meters.
    pub fn new(width: f64, length: f64) -> Self {
        MosfetGeometry { width, length }
    }

    /// Width-to-length ratio.
    pub fn aspect(&self) -> f64 {
        self.width / self.length
    }
}

/// Drain current and its partial derivatives with respect to the terminal
/// voltages, as needed by the Newton Jacobian.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosfetEval {
    /// Drain current flowing drain → source through the channel (amps).
    pub ids: f64,
    /// ∂I_DS/∂V_G.
    pub gm_g: f64,
    /// ∂I_DS/∂V_D.
    pub gm_d: f64,
    /// ∂I_DS/∂V_S.
    pub gm_s: f64,
    /// ∂I_DS/∂V_B.
    pub gm_b: f64,
}

/// Linear capacitances contributed by one MOSFET instance (farads).
///
/// These are deliberately bias-independent: the mechanisms the paper relies on
/// (Miller injection into the stack node, diffusion charge storage) only need
/// the capacitances to exist and have sensible magnitudes, and constant values
/// keep the transient Jacobian simple. The *cell-level* capacitances that the
/// MCSM tables store still end up voltage-dependent because different devices
/// dominate in different regions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosfetCaps {
    /// Gate–source capacitance.
    pub cgs: f64,
    /// Gate–drain capacitance.
    pub cgd: f64,
    /// Gate–bulk capacitance.
    pub cgb: f64,
    /// Drain–bulk junction capacitance.
    pub cdb: f64,
    /// Source–bulk junction capacitance.
    pub csb: f64,
}

/// The EKV interpolation function `F(v) = ln²(1 + e^{v/2})` and its derivative.
fn ekv_f(v: f64) -> (f64, f64) {
    // ln(1 + e^{v/2}) computed stably for large |v|.
    let half = 0.5 * v;
    let ln_term = if half > 40.0 {
        half
    } else {
        half.exp().ln_1p()
    };
    // d/dv ln(1+e^{v/2}) = 0.5 * sigmoid(v/2)
    let sigmoid = if half > 40.0 {
        1.0
    } else if half < -40.0 {
        0.0
    } else {
        1.0 / (1.0 + (-half).exp())
    };
    let f = ln_term * ln_term;
    let df = ln_term * sigmoid; // = 2 * ln_term * 0.5 * sigmoid
    (f, df)
}

/// Evaluates the drain current of a MOSFET given its terminal voltages
/// (all referenced to ground) and returns the current with its derivatives.
///
/// The current convention is: positive `ids` flows from the drain terminal into
/// the channel and out of the source terminal. For a conducting NMOS with
/// `V_D > V_S` this is positive; for a conducting PMOS with `V_D < V_S` it is
/// negative (current flows source → drain).
pub fn evaluate_ids(
    params: &MosfetParams,
    geometry: &MosfetGeometry,
    vg: f64,
    vd: f64,
    vs: f64,
    vb: f64,
) -> MosfetEval {
    // Map PMOS onto the NMOS equations by reflecting all voltages; the resulting
    // current is then negated back.
    let sign = if params.is_nmos() { 1.0 } else { -1.0 };
    let (vg, vd, vs, vb) = (sign * vg, sign * vd, sign * vs, sign * vb);

    // EKV works bulk-referenced.
    let vgb = vg - vb;
    let vdb = vd - vb;
    let vsb = vs - vb;

    let ut = params.thermal_voltage;
    let n = params.n;

    // Body effect folded into an effective threshold (classic long-channel form).
    // The argument is floored well above zero so the square root stays smooth even
    // if a transient iterate briefly drives the source below the bulk.
    let body_arg = (params.phi + vsb).max(1e-3);
    let sqrt_term = body_arg.sqrt();
    let vt = params.vt0 + params.gamma * (sqrt_term - params.phi.sqrt());
    let dvt_dvsb = if body_arg > 1e-3 {
        0.5 * params.gamma / sqrt_term
    } else {
        0.0
    };

    // Pinch-off voltage.
    let vp = (vgb - vt) / n;
    // Specific current.
    let beta = params.k_prime * geometry.aspect();
    let i_s = 2.0 * n * beta * ut * ut;

    let (f_fwd, df_fwd) = ekv_f((vp - vsb) / ut);
    let (f_rev, df_rev) = ekv_f((vp - vdb) / ut);

    // Channel-length modulation applied to the saturation (forward-reverse) term.
    let vds = vdb - vsb;
    let clm = 1.0 + params.lambda * vds.abs();
    let ids_core = i_s * (f_fwd - f_rev);
    let ids = ids_core * clm;

    // Derivatives (chain rule). vp depends on vg and, through vt, on vs (body).
    let dvp_dvg = 1.0 / n;
    let dvp_dvb = -1.0 / n + dvt_dvsb / n; // d(vgb)/dvb = -1; d(vt)/dvb = -dvt_dvsb
    let dvp_dvs = -dvt_dvsb / n;

    // f_fwd arg: (vp - vsb)/ut ; f_rev arg: (vp - vdb)/ut
    let d_ids_core_dvg = i_s * (df_fwd - df_rev) * dvp_dvg / ut;
    let d_ids_core_dvd = i_s * df_rev / ut; // d(vdb)/dvd = 1 → arg derivative -1/ut
    let d_ids_core_dvs = i_s * (df_fwd * (dvp_dvs - 1.0) / ut - df_rev * dvp_dvs / ut);
    let d_ids_core_dvb = i_s * (df_fwd * (dvp_dvb + 1.0) / ut - df_rev * (dvp_dvb + 1.0) / ut);

    let dclm_dvd = params.lambda * vds.signum();
    let dclm_dvs = -params.lambda * vds.signum();

    let gm_g = d_ids_core_dvg * clm;
    let gm_d = d_ids_core_dvd * clm + ids_core * dclm_dvd;
    let gm_s = d_ids_core_dvs * clm + ids_core * dclm_dvs;
    let gm_b = d_ids_core_dvb * clm;

    // Undo the polarity reflection: I(original) = sign * I(reflected), and each
    // derivative picks up sign twice (once for the current, once for the voltage),
    // so the conductances keep their sign.
    MosfetEval {
        ids: sign * ids,
        gm_g,
        gm_d,
        gm_s,
        gm_b,
    }
}

/// Computes the (constant) parasitic capacitances of a device instance.
pub fn device_caps(params: &MosfetParams, geometry: &MosfetGeometry) -> MosfetCaps {
    let w = geometry.width;
    let l = geometry.length;
    // Split the channel (intrinsic gate) capacitance evenly between source and
    // drain; a 40/60 Meyer split would not change any conclusion here.
    let c_channel = params.cox * w * l;
    MosfetCaps {
        cgs: params.cgso * w + 0.5 * c_channel,
        cgd: params.cgdo * w + 0.5 * c_channel,
        cgb: params.cgbo * l,
        cdb: params.cj * w,
        csb: params.cj * w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos_params() -> MosfetParams {
        MosfetParams {
            kind: MosfetKind::Nmos,
            vt0: 0.35,
            n: 1.35,
            k_prime: 300e-6,
            lambda: 0.15,
            gamma: 0.35,
            phi: 0.8,
            cox: 9e-3,
            cgdo: 3.0e-10,
            cgso: 3.0e-10,
            cgbo: 1.0e-10,
            cj: 8.0e-10,
            thermal_voltage: 0.02585,
        }
    }

    fn pmos_params() -> MosfetParams {
        MosfetParams {
            kind: MosfetKind::Pmos,
            ..nmos_params()
        }
    }

    fn geom() -> MosfetGeometry {
        MosfetGeometry::new(0.4e-6, 0.13e-6)
    }

    #[test]
    fn nmos_off_below_threshold() {
        let eval = evaluate_ids(&nmos_params(), &geom(), 0.0, 1.2, 0.0, 0.0);
        assert!(eval.ids.abs() < 1e-8, "off current {} too high", eval.ids);
        let on = evaluate_ids(&nmos_params(), &geom(), 1.2, 1.2, 0.0, 0.0);
        assert!(on.ids > 1e-5, "on current {} too low", on.ids);
        assert!(on.ids / eval.ids.max(1e-30) > 1e4, "on/off ratio too small");
    }

    #[test]
    fn nmos_current_increases_with_vgs_and_vds() {
        let p = nmos_params();
        let g = geom();
        let low_gate = evaluate_ids(&p, &g, 0.6, 1.2, 0.0, 0.0).ids;
        let high_gate = evaluate_ids(&p, &g, 1.2, 1.2, 0.0, 0.0).ids;
        assert!(high_gate > low_gate);
        let low_drain = evaluate_ids(&p, &g, 1.2, 0.1, 0.0, 0.0).ids;
        let high_drain = evaluate_ids(&p, &g, 1.2, 1.2, 0.0, 0.0).ids;
        assert!(high_drain > low_drain);
    }

    #[test]
    fn nmos_current_reverses_with_swapped_terminals() {
        let p = nmos_params();
        let g = geom();
        let fwd = evaluate_ids(&p, &g, 1.2, 1.0, 0.2, 0.0).ids;
        let rev = evaluate_ids(&p, &g, 1.2, 0.2, 1.0, 0.0).ids;
        assert!(fwd > 0.0);
        assert!(rev < 0.0);
    }

    #[test]
    fn pmos_conducts_with_low_gate() {
        let p = pmos_params();
        let g = geom();
        // Source at Vdd, drain low, gate low → conducting, current flows source→drain,
        // i.e. ids (drain→source) is negative.
        let on = evaluate_ids(&p, &g, 0.0, 0.0, 1.2, 1.2);
        assert!(on.ids < -1e-6, "pmos on current {}", on.ids);
        // Gate high → off.
        let off = evaluate_ids(&p, &g, 1.2, 0.0, 1.2, 1.2);
        assert!(off.ids.abs() < 1e-8);
    }

    #[test]
    fn body_effect_raises_threshold_and_lowers_current() {
        let p = nmos_params();
        let g = geom();
        // Same Vgs and Vds, but source lifted above bulk → body effect → less current.
        let no_body = evaluate_ids(&p, &g, 1.2, 1.2, 0.0, 0.0).ids;
        let with_body = evaluate_ids(&p, &g, 1.2 + 0.4, 1.2 + 0.4, 0.4, 0.0).ids;
        assert!(
            with_body < no_body,
            "body effect should reduce current: {with_body} !< {no_body}"
        );
    }

    #[test]
    fn channel_length_modulation_gives_output_conductance() {
        let p = nmos_params();
        let g = geom();
        let a = evaluate_ids(&p, &g, 1.2, 0.9, 0.0, 0.0).ids;
        let b = evaluate_ids(&p, &g, 1.2, 1.2, 0.0, 0.0).ids;
        // Both points are in saturation; the difference is the λ term.
        assert!(b > a);
        assert!((b - a) / a < 0.2, "CLM effect unreasonably large");
    }

    #[test]
    fn analytic_derivatives_match_finite_differences() {
        let p = nmos_params();
        let g = geom();
        let h = 1e-7;
        let cases = [
            (0.8, 0.6, 0.1, 0.0),
            (1.2, 1.2, 0.0, 0.0),
            (0.3, 0.05, 0.0, 0.0),
            (1.0, 0.2, 0.5, 0.0),
        ];
        for (vg, vd, vs, vb) in cases {
            let base = evaluate_ids(&p, &g, vg, vd, vs, vb);
            let num_gm_g = (evaluate_ids(&p, &g, vg + h, vd, vs, vb).ids
                - evaluate_ids(&p, &g, vg - h, vd, vs, vb).ids)
                / (2.0 * h);
            let num_gm_d = (evaluate_ids(&p, &g, vg, vd + h, vs, vb).ids
                - evaluate_ids(&p, &g, vg, vd - h, vs, vb).ids)
                / (2.0 * h);
            let num_gm_s = (evaluate_ids(&p, &g, vg, vd, vs + h, vb).ids
                - evaluate_ids(&p, &g, vg, vd, vs - h, vb).ids)
                / (2.0 * h);
            let scale = base.ids.abs().max(1e-9);
            assert!(
                (base.gm_g - num_gm_g).abs() / scale.max(num_gm_g.abs()) < 2e-2,
                "gm_g mismatch at {vg},{vd},{vs}: {} vs {}",
                base.gm_g,
                num_gm_g
            );
            assert!(
                (base.gm_d - num_gm_d).abs() / scale.max(num_gm_d.abs()) < 2e-2,
                "gm_d mismatch at {vg},{vd},{vs}: {} vs {}",
                base.gm_d,
                num_gm_d
            );
            assert!(
                (base.gm_s - num_gm_s).abs() / scale.max(num_gm_s.abs()) < 6e-2,
                "gm_s mismatch at {vg},{vd},{vs}: {} vs {}",
                base.gm_s,
                num_gm_s
            );
        }
    }

    #[test]
    fn pmos_mirrors_nmos_current_magnitude() {
        let n = nmos_params();
        let p = pmos_params();
        let g = geom();
        let i_n = evaluate_ids(&n, &g, 1.2, 1.2, 0.0, 0.0).ids;
        let i_p = evaluate_ids(&p, &g, 0.0, 0.0, 1.2, 1.2).ids;
        assert!((i_n + i_p).abs() / i_n < 1e-9, "mirror symmetry broken");
    }

    #[test]
    fn caps_scale_with_geometry() {
        let p = nmos_params();
        let small = device_caps(&p, &MosfetGeometry::new(0.2e-6, 0.13e-6));
        let large = device_caps(&p, &MosfetGeometry::new(0.4e-6, 0.13e-6));
        assert!(large.cgs > small.cgs);
        assert!(large.cgd > small.cgd);
        assert!(large.cdb > small.cdb);
        assert!((large.cdb / small.cdb - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ekv_f_is_smooth_and_monotonic() {
        let mut last = 0.0;
        for i in -100..100 {
            let v = i as f64 * 0.5;
            let (f, df) = ekv_f(v);
            assert!(f >= 0.0);
            assert!(df >= 0.0);
            assert!(f >= last - 1e-12, "F must be nondecreasing");
            last = f;
        }
        // Deep subthreshold limit: F(v) ≈ e^v → tiny.
        assert!(ekv_f(-40.0).0 < 1e-15);
        // Strong inversion limit: F(v) ≈ (v/2)^2.
        let (f, _) = ekv_f(60.0);
        assert!((f - 900.0).abs() / 900.0 < 1e-6);
    }
}
