//! Error type for circuit construction and analysis.

use mcsm_num::NumError;
use std::fmt;

/// Errors produced while building or simulating a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// A node name was used before being declared, or an id is out of range.
    UnknownNode(String),
    /// An element referenced itself in an invalid way (e.g. both terminals equal
    /// where that is meaningless).
    InvalidElement(String),
    /// A device or analysis parameter is out of range.
    InvalidParameter(String),
    /// The DC operating point could not be found even with continuation methods.
    DcConvergence {
        /// Description of the last failure.
        detail: String,
    },
    /// A transient time step failed to converge after step-size reduction.
    TranConvergence {
        /// Simulation time at which the failure occurred, in seconds.
        time: f64,
        /// Description of the last failure.
        detail: String,
    },
    /// The requested waveform or measurement does not exist.
    MissingSignal(String),
    /// An underlying numerical error (singular matrix, bad grid…).
    Numerical(NumError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            SpiceError::InvalidElement(msg) => write!(f, "invalid element: {msg}"),
            SpiceError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SpiceError::DcConvergence { detail } => {
                write!(f, "dc operating point did not converge: {detail}")
            }
            SpiceError::TranConvergence { time, detail } => {
                write!(
                    f,
                    "transient step at t = {time:.3e} s did not converge: {detail}"
                )
            }
            SpiceError::MissingSignal(name) => write!(f, "no such signal `{name}`"),
            SpiceError::Numerical(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for SpiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpiceError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for SpiceError {
    fn from(e: NumError) -> Self {
        SpiceError::Numerical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SpiceError::UnknownNode("x".into())
            .to_string()
            .contains("`x`"));
        assert!(SpiceError::DcConvergence { detail: "d".into() }
            .to_string()
            .contains("converge"));
        assert!(SpiceError::TranConvergence {
            time: 1e-9,
            detail: "d".into()
        }
        .to_string()
        .contains("transient"));
        assert!(SpiceError::MissingSignal("out".into())
            .to_string()
            .contains("out"));
    }

    #[test]
    fn numerical_error_is_wrapped_with_source() {
        use std::error::Error;
        let e = SpiceError::from(NumError::SingularMatrix { column: 1 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<SpiceError>();
    }
}
