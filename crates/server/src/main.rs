//! The `mcsm-serve` binary: characterize a cell library, then serve JSON-RPC
//! queries over stdin/stdout (default) or TCP.
//!
//! ```text
//! mcsm-serve [--stdio | --tcp ADDR] [--threads N] [--backend NAME]
//!            [--window SECONDS] [--dt SECONDS] [--max-line BYTES]
//!            [--trace-out PATH]
//! ```
//!
//! `--backend` is one of `sis`, `baseline-mis`, `complete-mcsm` (default) or
//! `selective`. `--max-line` bounds one request line (default 4 MiB).
//! `--trace-out PATH` arms span tracing and writes a Chrome trace-event file
//! to PATH on shutdown (equivalent to `MCSM_TRACE=1 MCSM_TRACE_OUT=PATH`;
//! the `trace` RPC can also dump it mid-session). Set `MCSM_BENCH_FAST=1`
//! for coarse characterization grids (CI smoke mode); set `MCSM_FAULT_SEED`
//! (with optional `MCSM_FAULT_RATE`, `MCSM_FAULT_SITES`,
//! `MCSM_FAULT_LATENCY_MS`) to arm deterministic fault injection for chaos
//! testing. Diagnostics go to stderr; stdout carries only protocol
//! responses.

use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::characterize::RegisterCharacterizationConfig;
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::selective::SelectivePolicy;
use mcsm_num::fault::FaultPlan;
use mcsm_serve::{serve_stdio, serve_tcp, Engine, Session, SessionConfig, TransportOptions};
use mcsm_sta::delaycalc::DelayBackend;
use mcsm_sta::models::ModelLibrary;
use std::io::{BufReader, Write};
use std::process::ExitCode;
use std::sync::Arc;

fn parse_backend(name: &str) -> Option<DelayBackend> {
    match name {
        "sis" => Some(DelayBackend::SisOnly),
        "baseline-mis" => Some(DelayBackend::BaselineMis),
        "complete-mcsm" => Some(DelayBackend::CompleteMcsm),
        "selective" => Some(DelayBackend::Selective(SelectivePolicy::default())),
        _ => None,
    }
}

fn main() -> ExitCode {
    mcsm_obs::init_from_env();
    let mut config = SessionConfig::default();
    let mut tcp_addr: Option<String> = None;
    let mut serve_threads = 0usize;
    let mut transport = TransportOptions::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--stdio" => Ok(()),
            "--tcp" => value("--tcp").map(|v| tcp_addr = Some(v)),
            "--threads" => value("--threads").and_then(|v| {
                v.parse()
                    .map(|n| {
                        config.threads = n;
                        serve_threads = n;
                    })
                    .map_err(|e| format!("--threads: {e}"))
            }),
            "--backend" => value("--backend").and_then(|v| {
                parse_backend(&v)
                    .map(|b| config.backend = b)
                    .ok_or_else(|| format!("unknown backend `{v}`"))
            }),
            "--window" => value("--window").and_then(|v| {
                v.parse()
                    .map(|w| config.window = w)
                    .map_err(|e| format!("--window: {e}"))
            }),
            "--dt" => value("--dt").and_then(|v| {
                v.parse()
                    .map(|dt| config.dt = dt)
                    .map_err(|e| format!("--dt: {e}"))
            }),
            "--max-line" => value("--max-line").and_then(|v| {
                v.parse()
                    .map(|bytes| transport = transport.clone().with_max_line_bytes(bytes))
                    .map_err(|e| format!("--max-line: {e}"))
            }),
            "--trace-out" => value("--trace-out").map(|path| {
                mcsm_obs::set_trace(true);
                mcsm_obs::set_trace_out(&path);
            }),
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("mcsm-serve: {message}");
            eprintln!(
                "usage: mcsm-serve [--stdio | --tcp ADDR] [--threads N] \
                 [--backend sis|baseline-mis|complete-mcsm|selective] \
                 [--window S] [--dt S] [--max-line BYTES] [--trace-out PATH]"
            );
            return ExitCode::FAILURE;
        }
    }

    let characterization = if mcsm_num::par::env_flag("MCSM_BENCH_FAST") {
        CharacterizationConfig::coarse()
    } else {
        CharacterizationConfig::standard()
    };
    let kinds = [CellKind::Inverter, CellKind::Nand2, CellKind::Nor2];
    eprintln!("mcsm-serve: characterizing {} cell kinds ...", kinds.len());
    let technology = Technology::cmos_130nm();
    let mut library = match ModelLibrary::characterize_parallel(
        &technology,
        &kinds,
        &characterization,
        config.threads,
    ) {
        Ok(library) => library,
        Err(e) => {
            eprintln!("mcsm-serve: characterization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let register_config = if mcsm_num::par::env_flag("MCSM_BENCH_FAST") {
        RegisterCharacterizationConfig::coarse()
    } else {
        RegisterCharacterizationConfig::standard()
    };
    let register_kinds = [CellKind::Dff, CellKind::DffRb];
    eprintln!(
        "mcsm-serve: characterizing {} register kinds ...",
        register_kinds.len()
    );
    if let Err(e) = library.characterize_registers(&technology, &register_kinds, &register_config) {
        eprintln!("mcsm-serve: register characterization failed: {e}");
        return ExitCode::FAILURE;
    }
    let fault = FaultPlan::from_env();
    if let Some(plan) = &fault {
        eprintln!(
            "mcsm-serve: fault injection ARMED (seed {}, rate {}) — not for production",
            plan.seed(),
            plan.rate()
        );
    }
    let transport = transport.with_fault(fault.clone());
    let session = Session::new(library, config).with_fault(fault);
    let engine = Arc::new(Engine::with_options(session, transport));

    match tcp_addr {
        Some(addr) => {
            let mut server = match serve_tcp(Arc::clone(&engine), &addr, serve_threads) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("mcsm-serve: bind {addr} failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("mcsm-serve: listening on {}", server.addr());
            // Keep stdin open as the lifetime handle: EOF shuts the server
            // down, so scripted callers can pipe `</dev/null` for one-shot
            // runs or hold the pipe open to keep serving.
            let mut sink = Vec::new();
            let _ = std::io::copy(&mut std::io::stdin().lock(), &mut sink);
            server.stop();
            dump_trace();
            eprintln!("mcsm-serve: shut down");
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("mcsm-serve: ready (stdin/stdout mode)");
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let result = serve_stdio(&engine, BufReader::new(stdin.lock()), stdout.lock());
            dump_trace();
            if let Err(e) = result {
                eprintln!("mcsm-serve: transport error: {e}");
                return ExitCode::FAILURE;
            }
            let _ = std::io::stdout().flush();
            ExitCode::SUCCESS
        }
    }
}

/// Writes the Chrome trace file on shutdown when tracing was armed with an
/// output path (`--trace-out` or `MCSM_TRACE_OUT`). A failed write must not
/// change the exit code — the protocol work already succeeded.
fn dump_trace() {
    match mcsm_obs::dump_trace_if_configured() {
        Some(Ok((path, summary))) => eprintln!(
            "mcsm-serve: wrote {} spans ({} dropped) to {path}",
            summary.spans, summary.dropped
        ),
        Some(Err(e)) => eprintln!("mcsm-serve: trace dump failed: {e}"),
        None => {}
    }
}
