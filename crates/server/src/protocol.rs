//! JSON-RPC 2.0 framing over newline-delimited messages.
//!
//! One request per line, one response line per request:
//!
//! ```text
//! {"jsonrpc":"2.0","id":1,"method":"arrival","params":{"net":"N22"}}
//! {"jsonrpc":"2.0","id":1,"result":{"net":"N22","time_s":1.4e-9,...}}
//! ```
//!
//! The framing layer owns the envelope (id echo, error codes, per-request
//! `timing_us`); everything inside `result` comes from [`Session::handle`].
//! Standard JSON-RPC codes are used: `-32700` parse error, `-32600` invalid
//! request, `-32601` method not found, `-32602` invalid params, `-32000`
//! engine error, `-32001` deadline exceeded.
//!
//! Request timing has one source: the `mcsm_obs` monotonic clock. The same
//! reading stamps `timing_us`, feeds the per-method latency histograms
//! (`server.rpc.<method>.us`) and bounds the `rpc.<method>` span — so the
//! `metrics`/`trace` views and the per-response field can never disagree
//! about what was measured.

use crate::session::Session;
use mcsm_num::fault::site;
use mcsm_num::hash::ByteHasher;
use mcsm_num::json::JsonValue;

pub(crate) fn error_response(id: JsonValue, code: i64, message: String) -> JsonValue {
    JsonValue::Object(vec![
        ("jsonrpc".to_string(), JsonValue::String("2.0".to_string())),
        ("id".to_string(), id),
        (
            "error".to_string(),
            JsonValue::Object(vec![
                ("code".to_string(), JsonValue::Number(code as f64)),
                ("message".to_string(), JsonValue::String(message)),
            ]),
        ),
    ])
}

/// Builds the `-32000` response for a request whose handler panicked: the
/// session has been rolled back to its last committed result, the connection
/// stays up, and `recovered: true` tells the client a retry is safe. The id
/// is recovered from the request line when it still parses.
pub(crate) fn recovered_response(line: &str, panic_msg: &str) -> JsonValue {
    let id = JsonValue::parse(line)
        .ok()
        .and_then(|doc| doc.get("id").cloned())
        .unwrap_or(JsonValue::Null);
    JsonValue::Object(vec![
        ("jsonrpc".to_string(), JsonValue::String("2.0".to_string())),
        ("id".to_string(), id),
        (
            "error".to_string(),
            JsonValue::Object(vec![
                ("code".to_string(), JsonValue::Number(-32000.0)),
                (
                    "message".to_string(),
                    JsonValue::String(format!(
                        "request handler panicked ({panic_msg}); session \
                         rolled back to last committed result"
                    )),
                ),
                ("recovered".to_string(), JsonValue::Bool(true)),
            ]),
        ),
    ])
}

/// Builds the `-32600` response for a request line that exceeded the
/// transport's line-length bound, naming the limit so the client can react.
pub(crate) fn oversize_response(got: usize, limit: usize) -> JsonValue {
    error_response(
        JsonValue::Null,
        -32600,
        format!("request line of {got} bytes exceeds the {limit}-byte limit"),
    )
}

fn hash_line(line: &str) -> u64 {
    let mut hasher = ByteHasher::new();
    hasher.write_bytes(line.as_bytes());
    hasher.finish()
}

/// Handles one request line against a session, returning the response
/// document. Never panics on malformed input — every failure becomes a
/// JSON-RPC error object (with a `null` id when the request's own id could
/// not be read).
pub fn handle_request_line(session: &mut Session, line: &str) -> JsonValue {
    let started_us = mcsm_obs::now_us();
    let line = match session.fault() {
        // Injected parse corruption: drop the tail of the line (keyed by the
        // line's own bytes, so replays corrupt the same requests). The cut
        // backs off to a char boundary so the slice itself cannot panic.
        Some(plan) if plan.fires(site::SERVER_PARSE_FAIL, hash_line(line)) => {
            let mut cut = line.len() / 2;
            while cut > 0 && !line.is_char_boundary(cut) {
                cut -= 1;
            }
            &line[..cut]
        }
        _ => line,
    };
    let doc = match JsonValue::parse(line) {
        Ok(doc) => doc,
        Err(e) => return error_response(JsonValue::Null, -32700, format!("parse error: {}", e.0)),
    };
    let id = doc.get("id").cloned().unwrap_or(JsonValue::Null);
    let method = match doc.get("method").and_then(|m| m.as_str()) {
        Some(method) => method.to_string(),
        None => {
            return error_response(id, -32600, "request has no string `method`".to_string());
        }
    };
    let empty = JsonValue::Object(Vec::new());
    let params = doc.get("params").unwrap_or(&empty);
    let mut rpc_span = mcsm_obs::span_lazy(|| format!("rpc.{method}"));
    let outcome = session.handle(&method, params);
    let elapsed_us = mcsm_obs::now_us().saturating_sub(started_us);
    rpc_span.arg("us", elapsed_us as f64);
    drop(rpc_span);
    // Per-method metric names are minted only for methods the dispatcher
    // recognized (`-32601` means it did not) — an unknown method name from a
    // hostile client must not grow the registry.
    let known_method = !matches!(&outcome, Err(e) if e.code() == -32601);
    if known_method && mcsm_obs::metrics_enabled() {
        mcsm_obs::observe_us(&format!("server.rpc.{method}.us"), elapsed_us);
        mcsm_obs::counter_add(&format!("server.rpc.{method}.calls"), 1);
    }
    match outcome {
        Ok(mut result) => {
            if let JsonValue::Object(fields) = &mut result {
                fields.push((
                    "timing_us".to_string(),
                    JsonValue::Number(elapsed_us as f64),
                ));
            }
            JsonValue::Object(vec![
                ("jsonrpc".to_string(), JsonValue::String("2.0".to_string())),
                ("id".to_string(), id),
                ("result".to_string(), result),
            ])
        }
        Err(e) => {
            mcsm_obs::counter_add("server.rpc_errors", 1);
            error_response(id, e.code(), e.to_string())
        }
    }
}

/// Strips the volatile `timing_us` field from a response document, leaving
/// only deterministic content — what the concurrent stress test compares
/// bit-for-bit against a serial replay.
pub fn strip_timing(response: &JsonValue) -> JsonValue {
    match response {
        JsonValue::Object(fields) => JsonValue::Object(
            fields
                .iter()
                .filter(|(key, _)| key != "timing_us")
                .map(|(key, value)| (key.clone(), strip_timing(value)))
                .collect(),
        ),
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use mcsm_sta::models::ModelLibrary;

    fn empty_session() -> Session {
        Session::new(ModelLibrary::new(1.2), SessionConfig::default())
    }

    #[test]
    fn malformed_lines_become_jsonrpc_errors() {
        let mut session = empty_session();
        let response = handle_request_line(&mut session, "{not json");
        assert_eq!(
            response.get("error").unwrap().get("code").unwrap().as_f64(),
            Some(-32700.0)
        );
        let response = handle_request_line(&mut session, r#"{"id": 7}"#);
        assert_eq!(response.get("id").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            response.get("error").unwrap().get("code").unwrap().as_f64(),
            Some(-32600.0)
        );
        let response = handle_request_line(&mut session, r#"{"id": 8, "method": "nope"}"#);
        assert_eq!(
            response.get("error").unwrap().get("code").unwrap().as_f64(),
            Some(-32601.0)
        );
    }

    #[test]
    fn responses_echo_id_and_carry_timing() {
        let mut session = empty_session();
        let response = handle_request_line(
            &mut session,
            r#"{"id": "a1", "method": "stats", "params": {}}"#,
        );
        assert_eq!(response.get("id").unwrap().as_str(), Some("a1"));
        let result = response.get("result").unwrap();
        assert!(result.get("timing_us").unwrap().as_f64().is_some());
        assert_eq!(result.get("seq").unwrap().as_f64(), Some(1.0));
        // The stripped form is deterministic: no timing field anywhere.
        let stripped = strip_timing(&response);
        assert!(stripped.get("result").unwrap().get("timing_us").is_none());
        assert!(stripped.get("result").unwrap().get("seq").is_some());
    }
}
