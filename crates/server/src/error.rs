//! Error type of the query server, mapped onto JSON-RPC error codes.

use mcsm_net::NetlistError;
use mcsm_netsim::NetsimError;
use mcsm_num::json::JsonError;
use mcsm_seq::SeqError;
use mcsm_sta::StaError;
use std::fmt;

/// Error produced while handling one query.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The request named a method the server does not implement
    /// (JSON-RPC `-32601`).
    MethodNotFound(String),
    /// The request parameters were missing, malformed or referenced something
    /// the resident session does not hold (JSON-RPC `-32602`).
    InvalidParams(String),
    /// The engine failed to evaluate a valid request — characterization,
    /// simulation or netlist-edit errors (JSON-RPC `-32000`).
    Engine(String),
    /// The request's `deadline_ms` budget expired before its computation
    /// finished; the work was abandoned at a cooperative cancellation
    /// checkpoint and committed session state is untouched (JSON-RPC
    /// `-32001`).
    Timeout(String),
}

impl ServeError {
    /// The JSON-RPC error code for this error.
    pub fn code(&self) -> i64 {
        match self {
            ServeError::MethodNotFound(_) => -32601,
            ServeError::InvalidParams(_) => -32602,
            ServeError::Engine(_) => -32000,
            ServeError::Timeout(_) => -32001,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::MethodNotFound(method) => write!(f, "unknown method `{method}`"),
            ServeError::InvalidParams(msg) => write!(f, "invalid params: {msg}"),
            ServeError::Engine(msg) => write!(f, "engine error: {msg}"),
            ServeError::Timeout(msg) => write!(f, "deadline exceeded: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<JsonError> for ServeError {
    fn from(e: JsonError) -> Self {
        ServeError::InvalidParams(e.0)
    }
}

impl From<NetlistError> for ServeError {
    fn from(e: NetlistError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

impl From<NetsimError> for ServeError {
    fn from(e: NetsimError) -> Self {
        match &e {
            // A cancelled sweep is the request's own deadline firing, not an
            // engine failure: report it as a timeout (-32001).
            NetsimError::Cancelled { .. } => ServeError::Timeout(e.to_string()),
            _ => ServeError::Engine(e.to_string()),
        }
    }
}

impl From<StaError> for ServeError {
    fn from(e: StaError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

impl From<SeqError> for ServeError {
    fn from(e: SeqError) -> Self {
        match &e {
            // Bad clock specs / cycle inputs are caller mistakes, not engine
            // failures: report them as invalid params.
            SeqError::InvalidParameter(_) | SeqError::ClockMismatch(_) => {
                ServeError::InvalidParams(e.to_string())
            }
            // A cancelled epoch sweep inside a cycle is the request's own
            // deadline firing: surface the timeout code through the wrapper.
            SeqError::Netsim(NetsimError::Cancelled { .. }) => ServeError::Timeout(e.to_string()),
            _ => ServeError::Engine(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_follow_jsonrpc_conventions() {
        assert_eq!(ServeError::MethodNotFound("x".into()).code(), -32601);
        assert_eq!(ServeError::InvalidParams("x".into()).code(), -32602);
        assert_eq!(ServeError::Engine("x".into()).code(), -32000);
        let e: ServeError = JsonError("bad shape".into()).into();
        assert_eq!(e.code(), -32602);
        assert!(e.to_string().contains("bad shape"));
    }
}
