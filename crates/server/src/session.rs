//! The resident query session: one characterized library, one netlist, one
//! committed simulation result, and the request handlers that keep them
//! consistent.
//!
//! The session is the single-writer core of the server: every request mutates
//! or reads it under one lock (see [`crate::server::Engine`]), and each
//! request is stamped with a monotonically increasing `seq` *under that
//! lock*. That makes any concurrent client interleaving equivalent to the
//! serial replay of the same requests in `seq` order — the property the
//! concurrent stress test pins bit-for-bit.
//!
//! Evaluation is lazy and incremental: edits ([`set_drive`](Session), `eco`)
//! only record which gates they invalidated; the next query needing waveforms
//! re-solves the downstream [cone of influence](mcsm_netsim::cone_of_influence)
//! of those seeds and reuses every committed waveform outside it. Warm
//! repeats additionally hit the whole-gate-solve
//! [`mcsm_sta::WaveformCache`], skipping the numerical engine
//! entirely.

use crate::error::ServeError;
use mcsm_cells::cell::CellKind;
use mcsm_core::selective::SelectivePolicy;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform};
use mcsm_net::{
    balanced_tree, c17, inverter_chain, nand_chain, pipelined_dag, s27, NetRef, Netlist,
};
use mcsm_netsim::{
    resimulate_netlist, seeds_for_drive_change, seeds_for_gate_edit, seeds_for_load_change,
    simulate_netlist_cached, NetsimOptions, NetsimResult, NetsimStats, Observe, SimCaches,
    DEFAULT_EVENT_THRESHOLD,
};
use mcsm_num::fault::{site, Deadline, FaultPlan};
use mcsm_num::json::JsonValue;
use mcsm_seq::{
    analyze_sequential, initial_seq_state, resimulate_cycle, step_cycle, CycleInputs, CycleOutcome,
    SeqNetlist, SeqOptions, SeqState, SeqTimingOptions,
};
use mcsm_sta::delaycalc::{DelayBackend, DelayCache, DelayCalculator, WaveformCache};
use mcsm_sta::models::ModelLibrary;
use mcsm_sta::slack::{ClockSpec, EndpointKind};
use mcsm_sta::TimingOptions;
use std::collections::HashMap;
use std::sync::Arc;

/// Evaluation defaults of a session; individual fields can be overridden per
/// `load_netlist` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Model backend for every gate solve.
    pub backend: DelayBackend,
    /// Simulation window (seconds).
    pub window: f64,
    /// Engine time step (seconds).
    pub dt: f64,
    /// Worker threads for level-parallel gate solves (`0` = auto, `1` =
    /// sequential; results are bit-identical for every value).
    pub threads: usize,
    /// External load on every primary output (farads).
    pub primary_output_load: f64,
    /// Event threshold (volts) of the netlist simulator.
    pub event_threshold: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            backend: DelayBackend::CompleteMcsm,
            window: 4e-9,
            dt: 2e-12,
            threads: 1,
            primary_output_load: 2e-15,
            event_threshold: DEFAULT_EVENT_THRESHOLD,
        }
    }
}

impl SessionConfig {
    fn netsim_options(&self, vdd: f64) -> NetsimOptions {
        let calculator =
            DelayCalculator::new(self.backend, CsmSimOptions::new(self.window, self.dt), vdd);
        NetsimOptions::new(calculator, self.primary_output_load)
            .with_threads(self.threads)
            .with_event_threshold(self.event_threshold)
    }

    fn backend_name(&self) -> &'static str {
        match self.backend {
            DelayBackend::SisOnly => "sis",
            DelayBackend::BaselineMis => "baseline-mis",
            DelayBackend::CompleteMcsm => "complete-mcsm",
            DelayBackend::Selective(_) => "selective",
        }
    }
}

/// What must be re-evaluated before the next waveform-bearing query.
#[derive(Debug, Clone, PartialEq)]
enum Dirty {
    /// No committed result, or an edit (backend swap, fresh load) invalidated
    /// everything: run the full simulator.
    Full,
    /// Edits invalidated these seed gates; re-solve their downstream cone and
    /// reuse the rest of the committed result.
    Seeds(Vec<mcsm_net::GateRef>),
    /// The committed result matches the netlist, drives and config.
    Clean,
}

/// The resident sequential context of a clocked session: the partitioned
/// netlist, the clock, and the carried register state, plus the last
/// committed cycle for epoch-local incremental ECO re-simulation.
#[derive(Debug)]
struct SeqResident {
    seq: SeqNetlist,
    clock: ClockSpec,
    pi_slew: f64,
    state: SeqState,
    last: Option<CycleOutcome>,
}

/// The resident circuit: netlist, drives, committed result, dirt tracking.
#[derive(Debug)]
struct Circuit {
    netlist: Netlist,
    drives: HashMap<NetRef, DriveWaveform>,
    result: Option<NetsimResult>,
    dirty: Dirty,
    /// Streaming observation points (`load_netlist`'s `observe` list), or
    /// `None` for full retention on every net.
    observe: Option<Vec<NetRef>>,
    /// Handoff-thinning bound (volts); `0.0` disables.
    thin_eps: f64,
    /// Clocked sequential context (`load_clock` was called), or `None` for a
    /// purely combinational session.
    sequential: Option<SeqResident>,
}

impl Circuit {
    /// Records that `seeds` must be re-solved. `Full` absorbs everything;
    /// without a committed result only `Full` is possible. Streamed sessions
    /// always re-run in full: a streamed result has released the interior
    /// waveforms incremental reuse depends on.
    fn invalidate(&mut self, seeds: Vec<mcsm_net::GateRef>) {
        if self.observe.is_some() {
            self.dirty = Dirty::Full;
            return;
        }
        match (&mut self.dirty, self.result.is_some()) {
            (Dirty::Full, _) | (_, false) => self.dirty = Dirty::Full,
            (Dirty::Seeds(existing), true) => {
                for seed in seeds {
                    if !existing.contains(&seed) {
                        existing.push(seed);
                    }
                }
            }
            (Dirty::Clean, true) => self.dirty = Dirty::Seeds(seeds),
        }
    }
}

/// How the last evaluation ran, for the `resim` / `stats` responses.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RunMode {
    Full,
    Incremental,
    Noop,
}

impl RunMode {
    fn name(self) -> &'static str {
        match self {
            RunMode::Full => "full",
            RunMode::Incremental => "incremental",
            RunMode::Noop => "noop",
        }
    }
}

/// A resident query session. See the module docs for the model.
#[derive(Debug)]
pub struct Session {
    library: ModelLibrary,
    config: SessionConfig,
    delay: DelayCache,
    waveforms: WaveformCache,
    circuit: Option<Circuit>,
    seq: u64,
    runs: u64,
    last_run: Option<(RunMode, NetsimStats)>,
    /// Fault-injection plan for chaos testing; `None` in production.
    fault: Option<Arc<FaultPlan>>,
    /// The active request's deadline (set from its `deadline_ms` option for
    /// the duration of [`Session::handle`]), threaded into every netsim run
    /// the request triggers.
    deadline: Option<Arc<Deadline>>,
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(value: f64) -> JsonValue {
    JsonValue::Number(value)
}

fn string(value: &str) -> JsonValue {
    JsonValue::String(value.to_string())
}

fn require_str<'p>(params: &'p JsonValue, key: &str) -> Result<&'p str, ServeError> {
    params
        .get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| ServeError::InvalidParams(format!("missing string param `{key}`")))
}

fn require_f64(params: &JsonValue, key: &str) -> Result<f64, ServeError> {
    params
        .get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| ServeError::InvalidParams(format!("missing number param `{key}`")))
}

fn opt_f64(params: &JsonValue, key: &str) -> Option<f64> {
    params.get(key).and_then(|v| v.as_f64())
}

fn seq_options(
    config: &SessionConfig,
    vdd: f64,
    pi_slew: f64,
    initial_state: Option<Vec<bool>>,
) -> SeqOptions {
    let mut options = SeqOptions::new(config.netsim_options(vdd)).with_pi_slew(pi_slew);
    if let Some(state) = initial_state {
        options = options.with_initial_state(state);
    }
    options
}

fn endpoint_json(e: &mcsm_sta::slack::EndpointSlack) -> JsonValue {
    let optional = |value: Option<f64>| value.map_or(JsonValue::Null, num);
    obj(vec![
        ("endpoint", string(&e.endpoint)),
        (
            "kind",
            string(match e.kind {
                EndpointKind::RegisterD => "register-d",
                EndpointKind::PrimaryOutput => "primary-output",
            }),
        ),
        ("arrival_s", optional(e.arrival)),
        ("slew_s", optional(e.slew)),
        ("required_s", num(e.required)),
        ("setup_s", num(e.setup)),
        ("hold_s", num(e.hold)),
        ("setup_slack_s", optional(e.setup_slack)),
        ("hold_slack_s", optional(e.hold_slack)),
    ])
}

fn stats_json(stats: &NetsimStats) -> JsonValue {
    let mut fields = vec![
        ("gates_simulated", num(stats.gates_simulated as f64)),
        ("gates_skipped", num(stats.gates_skipped as f64)),
        ("gates_reused", num(stats.gates_reused as f64)),
        ("events", num(stats.events as f64)),
        ("cache_hits", num(stats.cache_hits as f64)),
        ("cache_misses", num(stats.cache_misses as f64)),
        ("waveform_hits", num(stats.waveform_hits as f64)),
        ("waveform_misses", num(stats.waveform_misses as f64)),
        ("peak_live_waveforms", num(stats.peak_live_waveforms as f64)),
        ("breakpoints_dropped", num(stats.breakpoints_dropped as f64)),
        ("recoveries", num(stats.recoveries.len() as f64)),
    ];
    if !stats.recoveries.is_empty() {
        fields.push((
            "recovery_log",
            JsonValue::Array(
                stats
                    .recoveries
                    .iter()
                    .map(|r| {
                        obj(vec![
                            ("gate", string(&r.gate)),
                            ("net", string(&r.net)),
                            ("resolution", string(r.resolution.label())),
                            ("failure", string(&r.failure)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    obj(fields)
}

impl Session {
    /// Creates a session around a characterized library.
    ///
    /// Arms metric recording unconditionally (one relaxed flag): a server
    /// must always be able to answer its own `metrics` RPC. Span tracing
    /// stays opt-in via `MCSM_TRACE` / `--trace-out`.
    pub fn new(library: ModelLibrary, config: SessionConfig) -> Self {
        mcsm_obs::arm_metrics();
        Session {
            library,
            config,
            delay: DelayCache::new(),
            waveforms: WaveformCache::new(),
            circuit: None,
            seq: 0,
            runs: 0,
            last_run: None,
            fault: None,
            deadline: None,
        }
    }

    /// Arms a fault-injection plan: the request handler and every engine run
    /// it triggers query the plan at their injection sites (chaos testing).
    #[must_use]
    pub fn with_fault(mut self, fault: Option<Arc<FaultPlan>>) -> Self {
        self.fault = fault;
        self
    }

    /// The armed fault plan, if any (queried by the protocol layer's
    /// parse-fault site).
    pub(crate) fn fault(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// Requests handled so far (the last assigned `seq`).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Rolls the session back to its last committed state after a request
    /// handler panicked while holding the session lock.
    ///
    /// The committed anchors — netlist, drives, result, carried register
    /// values — survive a panic (they are only replaced on success); what a
    /// half-finished request can leave behind is *stale bookkeeping*: a dirt
    /// state cleared before its run finished, or a committed cycle outcome
    /// mid-replacement. Recovery forces full re-evaluation on the next
    /// waveform-bearing query and drops the replayable cycle, so every
    /// subsequent answer is recomputed from the committed anchors.
    pub fn recover_after_panic(&mut self) {
        self.deadline = None;
        self.last_run = None;
        if let Some(circuit) = self.circuit.as_mut() {
            circuit.dirty = Dirty::Full;
            if let Some(resident) = circuit.sequential.as_mut() {
                resident.last = None;
            }
        }
    }

    /// Handles one request: assigns the next `seq`, dispatches on `method`,
    /// and stamps the response with the `seq` and this request's cache-counter
    /// deltas. Must be called under the session lock — `seq` order *is* the
    /// serialization order.
    ///
    /// # Errors
    ///
    /// [`ServeError::MethodNotFound`] for unknown methods, and whatever the
    /// handler reports. Failed requests still consume a `seq`.
    pub fn handle(&mut self, method: &str, params: &JsonValue) -> Result<JsonValue, ServeError> {
        self.seq += 1;
        let seq = self.seq;
        // Chaos-testing injection point: the panic fires *under the session
        // lock*, exercising the full poison-recovery path in the transport
        // layer. Keyed by seq so a replay of the same request stream faults
        // the same requests.
        if let Some(plan) = &self.fault {
            if plan.fires(site::SERVER_REQUEST_PANIC, seq) {
                panic!(
                    "injected fault `{}` (seq {seq})",
                    site::SERVER_REQUEST_PANIC
                );
            }
        }
        // Per-request deadline: engine runs triggered by this request poll the
        // token and abandon the sweep when it expires (answered `-32001`).
        self.deadline = opt_f64(params, "deadline_ms").map(Deadline::after_ms);
        let before = (
            self.delay.hits(),
            self.delay.misses(),
            self.waveforms.hits(),
            self.waveforms.misses(),
        );
        let outcome = match method {
            "load_netlist" => self.load_netlist(params),
            "set_drive" => self.set_drive(params),
            "eco" => self.eco(params),
            "arrival" => self.arrival(params),
            "slew" => self.slew(params),
            "waveform" => self.waveform(params),
            "resim" => self.resim(params),
            "load_clock" => self.load_clock(params),
            "cycle" => self.cycle(params),
            "slack" => self.slack(),
            "stats" => self.stats(),
            "metrics" => self.metrics(),
            "trace" => self.trace(params),
            other => Err(ServeError::MethodNotFound(other.to_string())),
        };
        self.deadline = None;
        let mut result = outcome?;
        if let JsonValue::Object(fields) = &mut result {
            fields.push(("seq".to_string(), num(seq as f64)));
            fields.push((
                "cache".to_string(),
                obj(vec![
                    ("delay_hits", num((self.delay.hits() - before.0) as f64)),
                    ("delay_misses", num((self.delay.misses() - before.1) as f64)),
                    (
                        "waveform_hits",
                        num((self.waveforms.hits() - before.2) as f64),
                    ),
                    (
                        "waveform_misses",
                        num((self.waveforms.misses() - before.3) as f64),
                    ),
                ]),
            ));
        }
        Ok(result)
    }

    fn build_builtin(spec: &str) -> Result<Netlist, ServeError> {
        let (name, arg) = match spec.split_once(':') {
            Some((name, arg)) => (name, Some(arg)),
            None => (spec, None),
        };
        let size = |default: usize| -> Result<usize, ServeError> {
            match arg {
                None => Ok(default),
                Some(text) => text.parse().map_err(|_| {
                    ServeError::InvalidParams(format!("bad builtin size in `{spec}`"))
                }),
            }
        };
        match name {
            "c17" => Ok(c17()),
            "s27" => Ok(s27()),
            "nand_chain" => Ok(nand_chain(size(8)?)),
            "inverter_chain" => Ok(inverter_chain(size(8)?)),
            "balanced_tree" => Ok(balanced_tree(size(3)?, CellKind::Nand2)),
            "pipeline" => {
                // `pipeline[:STAGES[:WIDTH[:SEED]]]`, defaults 3:4:7.
                let mut parts = arg.map(|a| a.split(':')).into_iter().flatten();
                let mut field = |name: &str, default: u64| -> Result<u64, ServeError> {
                    match parts.next() {
                        None | Some("") => Ok(default),
                        Some(text) => text.parse().map_err(|_| {
                            ServeError::InvalidParams(format!(
                                "bad pipeline {name} in `{spec}` (expected \
                                 pipeline[:STAGES[:WIDTH[:SEED]]])"
                            ))
                        }),
                    }
                };
                let stages = field("stage count", 3)? as usize;
                let width = field("width", 4)? as usize;
                let seed = field("seed", 7)?;
                Ok(pipelined_dag(stages, width, seed))
            }
            other => Err(ServeError::InvalidParams(format!(
                "unknown builtin `{other}` (expected c17, s27, nand_chain[:N], \
                 inverter_chain[:N], balanced_tree[:D] or \
                 pipeline[:STAGES[:WIDTH[:SEED]]])"
            ))),
        }
    }

    /// `load_netlist {"builtin": "c17"}` or `{"netlist": {...}}`, optional
    /// `"window"` / `"dt"` overrides. Every primary input starts at DC 0 V.
    ///
    /// Streaming: an optional `"observe": ["net", ...]` list keeps full
    /// waveforms only on primary outputs plus the listed nets (bounding
    /// result memory on large netlists; waveform-bearing queries on other
    /// nets are rejected), and `"thin_eps"` (volts) thins fanout handoffs to
    /// an error-bounded piecewise-linear form.
    fn load_netlist(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let netlist = match (params.get("builtin"), params.get("netlist")) {
            (Some(builtin), None) => {
                let spec = builtin.as_str().ok_or_else(|| {
                    ServeError::InvalidParams("`builtin` must be a string".into())
                })?;
                Self::build_builtin(spec)?
            }
            (None, Some(doc)) => Netlist::from_json_value(doc)?,
            _ => {
                return Err(ServeError::InvalidParams(
                    "expected exactly one of `builtin` or `netlist`".into(),
                ))
            }
        };
        for gate in netlist.iter_gates() {
            let characterized = if gate.kind.is_sequential() {
                self.library.contains_register(gate.kind)
            } else {
                self.library.contains(gate.kind)
            };
            if !characterized {
                return Err(ServeError::Engine(format!(
                    "cell {} (gate `{}`) is not characterized in this session's library",
                    gate.kind.name(),
                    gate.name
                )));
            }
        }
        if let Some(window) = opt_f64(params, "window") {
            if !window.is_finite() || window <= 0.0 {
                return Err(ServeError::InvalidParams(format!(
                    "`window` must be a finite positive number of seconds, got {window}"
                )));
            }
            self.config.window = window;
        }
        if let Some(dt) = opt_f64(params, "dt") {
            if !dt.is_finite() || dt <= 0.0 {
                return Err(ServeError::InvalidParams(format!(
                    "`dt` must be a finite positive number of seconds, got {dt}"
                )));
            }
            self.config.dt = dt;
        }
        // Bound the per-gate step count so a hostile (or fuzzed) window/dt
        // pair cannot wedge the single-writer session in one giant solve.
        let steps = self.config.window / self.config.dt;
        if !(steps <= 5e6) {
            return Err(ServeError::InvalidParams(format!(
                "window/dt implies {steps:.0} engine steps per gate solve \
                 (limit 5000000); raise `dt` or shrink `window`"
            )));
        }
        let observe = match params.get("observe") {
            None => None,
            Some(spec) => {
                let names = spec.as_array().ok_or_else(|| {
                    ServeError::InvalidParams("`observe` must be an array of net names".into())
                })?;
                let mut points = Vec::with_capacity(names.len());
                for name in names {
                    let name = name.as_str().ok_or_else(|| {
                        ServeError::InvalidParams("`observe` must be an array of net names".into())
                    })?;
                    points.push(netlist.find_net(name)?);
                }
                Some(points)
            }
        };
        let thin_eps = opt_f64(params, "thin_eps").unwrap_or(0.0);
        let drives = netlist
            .primary_inputs()
            .iter()
            .map(|&pi| (pi, DriveWaveform::dc(0.0)))
            .collect();
        let mut response_fields = vec![
            ("name", string(netlist.name())),
            ("gates", num(netlist.gate_count() as f64)),
            ("nets", num(netlist.net_count() as f64)),
            (
                "primary_inputs",
                JsonValue::Array(
                    netlist
                        .primary_inputs()
                        .iter()
                        .map(|&pi| string(netlist.net_name(pi)))
                        .collect(),
                ),
            ),
            (
                "primary_outputs",
                JsonValue::Array(
                    netlist
                        .primary_outputs()
                        .iter()
                        .map(|&po| string(netlist.net_name(po)))
                        .collect(),
                ),
            ),
        ];
        if let Some(points) = &observe {
            response_fields.push(("observe", num(points.len() as f64)));
        }
        let response = obj(response_fields);
        self.circuit = Some(Circuit {
            netlist,
            drives,
            result: None,
            dirty: Dirty::Full,
            observe,
            thin_eps,
            sequential: None,
        });
        Ok(response)
    }

    fn circuit_mut(&mut self) -> Result<&mut Circuit, ServeError> {
        self.circuit
            .as_mut()
            .ok_or_else(|| ServeError::InvalidParams("no netlist loaded".into()))
    }

    fn parse_drive(&self, params: &JsonValue) -> Result<DriveWaveform, ServeError> {
        let vdd = self.library.vdd();
        let spec = params
            .get("drive")
            .ok_or_else(|| ServeError::InvalidParams("missing `drive` object".into()))?;
        let kind = require_str(spec, "kind")?;
        let t_start = opt_f64(spec, "t_start").unwrap_or(1e-9);
        let transition = opt_f64(spec, "transition").unwrap_or(80e-12);
        match kind {
            "rise" => Ok(DriveWaveform::rising_ramp(vdd, t_start, transition)),
            "fall" => Ok(DriveWaveform::falling_ramp(vdd, t_start, transition)),
            "dc" => Ok(DriveWaveform::dc(require_f64(spec, "level")?)),
            other => Err(ServeError::InvalidParams(format!(
                "unknown drive kind `{other}` (expected rise, fall or dc)"
            ))),
        }
    }

    /// `set_drive {"net": "N1", "drive": {"kind": "fall", "t_start": 1e-9,
    /// "transition": 8e-11}}` — replaces a primary input's stimulus and
    /// invalidates the input's fanout gates.
    fn set_drive(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let drive = self.parse_drive(params)?;
        let name = require_str(params, "net")?.to_string();
        let circuit = self.circuit_mut()?;
        let net = circuit.netlist.find_net(&name)?;
        if !circuit.netlist.is_primary_input(net) {
            return Err(ServeError::InvalidParams(format!(
                "net `{name}` is not a primary input"
            )));
        }
        circuit.drives.insert(net, drive);
        let seeds = seeds_for_drive_change(&circuit.netlist, net);
        let invalidated = seeds.len();
        circuit.invalidate(seeds);
        Ok(obj(vec![
            ("net", string(&name)),
            ("invalidated_gates", num(invalidated as f64)),
        ]))
    }

    /// `eco {"op": "retype_gate" | "set_net_load" | "swap_backend", ...}` —
    /// validated in-place edits; only the invalidated cone is re-solved on the
    /// next evaluation (`swap_backend` invalidates everything).
    fn eco(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let op = require_str(params, "op")?;
        match op {
            "retype_gate" => {
                let gate_name = require_str(params, "gate")?.to_string();
                let cell_name = require_str(params, "cell")?.to_string();
                let kind = CellKind::from_name(&cell_name).ok_or_else(|| {
                    ServeError::InvalidParams(format!("unknown cell `{cell_name}`"))
                })?;
                if !self.library.contains(kind) {
                    return Err(ServeError::Engine(format!(
                        "cell {} is not characterized in this session's library",
                        kind.name()
                    )));
                }
                let circuit = self.circuit_mut()?;
                let gate = circuit.netlist.find_gate(&gate_name)?;
                circuit.netlist.retype_gate(gate, kind)?;
                let seeds = seeds_for_gate_edit(&circuit.netlist, gate);
                let invalidated = seeds.len();
                circuit.invalidate(seeds);
                let clocked = circuit.sequential.is_some();
                let mut fields = vec![
                    ("op", string(op)),
                    ("gate", string(&gate_name)),
                    ("cell", string(kind.name())),
                    ("invalidated_gates", num(invalidated as f64)),
                ];
                if clocked {
                    let mode = self.reseat_sequential(&gate_name)?;
                    fields.push(("sequential", string(mode)));
                }
                Ok(obj(fields))
            }
            "set_net_load" => {
                let net_name = require_str(params, "net")?.to_string();
                let farads = require_f64(params, "farads")?;
                let circuit = self.circuit_mut()?;
                let net = circuit.netlist.find_net(&net_name)?;
                circuit.netlist.set_net_load(net, farads)?;
                let seeds = seeds_for_load_change(&circuit.netlist, net);
                let invalidated = seeds.len();
                circuit.invalidate(seeds);
                if let Some(resident) = circuit.sequential.as_mut() {
                    // Loads change every epoch solve: committed cycles go
                    // stale (the carried Boolean state stays).
                    resident.seq = SeqNetlist::partition(&circuit.netlist)?;
                    resident.last = None;
                }
                Ok(obj(vec![
                    ("op", string(op)),
                    ("net", string(&net_name)),
                    ("farads", num(farads)),
                    ("invalidated_gates", num(invalidated as f64)),
                ]))
            }
            "swap_backend" => {
                let backend = match require_str(params, "backend")? {
                    "sis" => DelayBackend::SisOnly,
                    "baseline-mis" => DelayBackend::BaselineMis,
                    "complete-mcsm" => DelayBackend::CompleteMcsm,
                    "selective" => DelayBackend::Selective(SelectivePolicy::default()),
                    other => {
                        return Err(ServeError::InvalidParams(format!(
                            "unknown backend `{other}` (expected sis, baseline-mis, \
                             complete-mcsm or selective)"
                        )))
                    }
                };
                self.config.backend = backend;
                // Every gate solve depends on the backend: full invalidation.
                // The caches stay — their keys carry the backend, so entries
                // for the previous backend remain valid if it comes back.
                if let Some(circuit) = self.circuit.as_mut() {
                    circuit.dirty = Dirty::Full;
                    if let Some(resident) = circuit.sequential.as_mut() {
                        resident.last = None;
                    }
                }
                Ok(obj(vec![
                    ("op", string(op)),
                    ("backend", string(self.config.backend_name())),
                ]))
            }
            other => Err(ServeError::InvalidParams(format!(
                "unknown eco op `{other}` (expected retype_gate, set_net_load \
                 or swap_backend)"
            ))),
        }
    }

    /// Brings the committed result up to date (full or cone-incremental run,
    /// whichever the dirt tracking calls for) and returns it.
    fn ensure_result(&mut self) -> Result<&NetsimResult, ServeError> {
        let circuit = self
            .circuit
            .as_mut()
            .ok_or_else(|| ServeError::InvalidParams("no netlist loaded".into()))?;
        let mut options = self.config.netsim_options(self.library.vdd());
        if let Some(points) = &circuit.observe {
            options = options.with_observe(Observe::Points(points.clone()));
        }
        options = options
            .with_thin_eps(circuit.thin_eps)
            .with_fault(self.fault.clone())
            .with_deadline(self.deadline.clone());
        let caches = SimCaches {
            delay: &self.delay,
            waveforms: Some(&self.waveforms),
        };
        // Take the dirt, run, and only commit Clean on success: a failed or
        // timed-out run restores the taken dirt so the next request retries
        // the same work instead of silently serving a stale result.
        let dirty = std::mem::replace(&mut circuit.dirty, Dirty::Clean);
        let dirty = match dirty {
            // Seed-dirty with no committed baseline (e.g. a panic rollback
            // dropped the result) cannot run incrementally — promote to full.
            Dirty::Seeds(_) if circuit.result.is_none() => Dirty::Full,
            other => other,
        };
        match dirty {
            Dirty::Clean => {
                self.last_run = Some((RunMode::Noop, NetsimStats::default()));
            }
            Dirty::Full => {
                let run = simulate_netlist_cached(
                    &circuit.netlist,
                    &self.library,
                    &circuit.drives,
                    &options,
                    caches,
                );
                let result = match run {
                    Ok(result) => result,
                    Err(e) => {
                        circuit.dirty = Dirty::Full;
                        return Err(e.into());
                    }
                };
                self.runs += 1;
                self.last_run = Some((RunMode::Full, result.stats()));
                circuit.result = Some(result);
            }
            Dirty::Seeds(seeds) => {
                let Some(previous) = circuit.result.as_ref() else {
                    circuit.dirty = Dirty::Full;
                    return Err(ServeError::Engine(
                        "internal: seed-dirty session lost its committed result".into(),
                    ));
                };
                let run = resimulate_netlist(
                    &circuit.netlist,
                    &self.library,
                    &circuit.drives,
                    &options,
                    caches,
                    previous,
                    &seeds,
                );
                let result = match run {
                    Ok(result) => result,
                    Err(e) => {
                        circuit.dirty = Dirty::Seeds(seeds);
                        return Err(e.into());
                    }
                };
                self.runs += 1;
                self.last_run = Some((RunMode::Incremental, result.stats()));
                circuit.result = Some(result);
            }
        }
        match circuit.result.as_ref() {
            Some(result) => Ok(result),
            None => Err(ServeError::Engine(
                "internal: run committed no result".into(),
            )),
        }
    }

    fn find_result_net(&mut self, params: &JsonValue) -> Result<(String, NetRef), ServeError> {
        let name = require_str(params, "net")?.to_string();
        let circuit = self.circuit_mut()?;
        let net = circuit.netlist.find_net(&name)?;
        Ok((name, net))
    }

    /// Waveform-bearing queries on a streamed session only answer for
    /// observation points; everywhere else the samples were released by
    /// design, so report that instead of a null that looks like "no event".
    fn require_observed(result: &NetsimResult, name: &str, net: NetRef) -> Result<(), ServeError> {
        if result.observed(net) {
            Ok(())
        } else {
            Err(ServeError::InvalidParams(format!(
                "net `{name}` is not an observation point of this streamed \
                 session — its waveform was released; list it in `observe` \
                 when loading the netlist (or load without `observe` to keep \
                 every net)"
            )))
        }
    }

    /// `arrival {"net": "N22"}` — earliest 50 % crossing in either direction;
    /// pass `"rising": true/false` to pin the direction.
    fn arrival(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let (name, net) = self.find_result_net(params)?;
        let direction = params.get("rising").and_then(|v| v.as_bool());
        let result = self.ensure_result()?;
        Self::require_observed(result, &name, net)?;
        let (time, rising) = match direction {
            Some(rising) => (result.arrival_time(net, rising), Some(rising)),
            None => match result.arrival_any(net) {
                Some((t, rising)) => (Some(t), Some(rising)),
                None => (None, None),
            },
        };
        Ok(obj(vec![
            ("net", string(&name)),
            ("time_s", time.map_or(JsonValue::Null, num)),
            ("rising", rising.map_or(JsonValue::Null, JsonValue::Bool)),
        ]))
    }

    /// `slew {"net": "N22", "rising": true}` — 10–90 % transition time.
    fn slew(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let (name, net) = self.find_result_net(params)?;
        let rising = params
            .get("rising")
            .and_then(|v| v.as_bool())
            .ok_or_else(|| ServeError::InvalidParams("missing bool param `rising`".into()))?;
        let result = self.ensure_result()?;
        Self::require_observed(result, &name, net)?;
        Ok(obj(vec![
            ("net", string(&name)),
            ("rising", JsonValue::Bool(rising)),
            (
                "slew_s",
                result.slew(net, rising).map_or(JsonValue::Null, num),
            ),
        ]))
    }

    /// `waveform {"net": "N22"}` — the committed waveform samples. On a
    /// streamed session (`observe` was given at load), only observation
    /// points have samples; other nets are a descriptive error.
    fn waveform(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let (name, net) = self.find_result_net(params)?;
        let result = self.ensure_result()?;
        Self::require_observed(result, &name, net)?;
        let waveform = result.waveform(net).ok_or_else(|| {
            ServeError::Engine(format!(
                "internal: observed net `{name}` has no committed waveform"
            ))
        })?;
        Ok(obj(vec![
            ("net", string(&name)),
            ("samples", num(waveform.len() as f64)),
            ("times_s", JsonValue::from_f64_slice(waveform.times())),
            ("values_v", JsonValue::from_f64_slice(waveform.values())),
        ]))
    }

    /// `resim {}` — brings the result up to date (incremental if possible) and
    /// reports how the run went; `{"full": true}` forces a from-scratch run
    /// (with warm caches, still engine-free on repeats).
    fn resim(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        if params.get("full").and_then(|v| v.as_bool()) == Some(true) {
            self.circuit_mut()?.dirty = Dirty::Full;
        }
        self.ensure_result()?;
        let (mode, stats) = match &self.last_run {
            Some((mode, stats)) => (*mode, stats),
            None => {
                return Err(ServeError::Engine(
                    "internal: run recorded no statistics".into(),
                ))
            }
        };
        Ok(obj(vec![
            ("mode", string(mode.name())),
            ("stats", stats_json(stats)),
        ]))
    }

    /// `load_clock {"clock": "CK", "period": 2e-9}` — partitions the loaded
    /// netlist at its register boundaries, validates the clock against it,
    /// and resets the carried register state. Optional fields: `"slew"`,
    /// `"insertion"`, `"insertion_overrides": {"R6": 4e-11}`, `"pi_slew"`,
    /// and `"initial_state": [true, ...]` (index-aligned with the reported
    /// register list).
    fn load_clock(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let mut clock = ClockSpec::new(
            require_str(params, "clock")?.to_string(),
            require_f64(params, "period")?,
        );
        if let Some(slew) = opt_f64(params, "slew") {
            clock = clock.with_slew(slew);
        }
        if let Some(insertion) = opt_f64(params, "insertion") {
            clock = clock.with_insertion(insertion);
        }
        if let Some(spec) = params.get("insertion_overrides") {
            let JsonValue::Object(members) = spec else {
                return Err(ServeError::InvalidParams(
                    "`insertion_overrides` must be an object of register name -> seconds".into(),
                ));
            };
            for (register, seconds) in members {
                let seconds = seconds.as_f64().ok_or_else(|| {
                    ServeError::InvalidParams(format!(
                        "`insertion_overrides.{register}` must be a number of seconds"
                    ))
                })?;
                clock = clock.with_insertion_override(register.clone(), seconds);
            }
        }
        clock.validate().map_err(ServeError::from)?;
        let pi_slew = opt_f64(params, "pi_slew").unwrap_or(50e-12);
        let initial_state = match params.get("initial_state") {
            None => None,
            Some(spec) => {
                let values = spec.as_array().ok_or_else(|| {
                    ServeError::InvalidParams("`initial_state` must be an array of bools".into())
                })?;
                let mut state = Vec::with_capacity(values.len());
                for value in values {
                    state.push(value.as_bool().ok_or_else(|| {
                        ServeError::InvalidParams(
                            "`initial_state` must be an array of bools".into(),
                        )
                    })?);
                }
                Some(state)
            }
        };

        let Session {
            library,
            config,
            circuit,
            ..
        } = self;
        let circuit = circuit
            .as_mut()
            .ok_or_else(|| ServeError::InvalidParams("no netlist loaded".into()))?;
        let seq = SeqNetlist::partition(&circuit.netlist)?;
        let clock_net = circuit.netlist.net_name(seq.clock_net());
        if clock.clock != clock_net {
            return Err(ServeError::InvalidParams(format!(
                "clock spec names `{}` but the netlist's clock net is `{clock_net}`",
                clock.clock
            )));
        }
        for reg in seq.registers() {
            library.register(reg.kind)?;
        }
        let options = seq_options(config, library.vdd(), pi_slew, initial_state);
        let state = initial_seq_state(&seq, &options)?;
        let response = obj(vec![
            ("clock", string(&clock.clock)),
            ("period_s", num(clock.period)),
            (
                "registers",
                JsonValue::Array(seq.registers().iter().map(|r| string(&r.name)).collect()),
            ),
            (
                "cone_gates",
                num(seq.comb().map_or(0, Netlist::gate_count) as f64),
            ),
        ]);
        circuit.sequential = Some(SeqResident {
            seq,
            clock,
            pi_slew,
            state,
            last: None,
        });
        Ok(response)
    }

    /// `cycle {"inputs": {"G0": true}, "count": 4}` — advances the clocked
    /// session by `count` cycles (default 1): the given primary-input values
    /// apply at the first cycle and hold for the rest; register state carries
    /// across cycles and across `cycle` calls.
    fn cycle(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let count = match params.get("count") {
            None => 1,
            Some(value) => {
                let n = value.as_f64().unwrap_or(-1.0);
                if n < 1.0 || n.fract() != 0.0 {
                    return Err(ServeError::InvalidParams(
                        "`count` must be a positive integer".into(),
                    ));
                }
                if n > 4096.0 {
                    return Err(ServeError::InvalidParams(format!(
                        "`count` is capped at 4096 cycles per request, got {n:.0}; \
                         split the run across requests (state carries over)"
                    )));
                }
                n as usize
            }
        };
        let Session {
            library,
            config,
            delay,
            waveforms,
            circuit,
            fault,
            deadline,
            ..
        } = self;
        let circuit = circuit
            .as_mut()
            .ok_or_else(|| ServeError::InvalidParams("no netlist loaded".into()))?;
        let mut values = HashMap::new();
        if let Some(spec) = params.get("inputs") {
            let JsonValue::Object(members) = spec else {
                return Err(ServeError::InvalidParams(
                    "`inputs` must be an object of primary-input name -> bool".into(),
                ));
            };
            for (name, value) in members {
                let value = value.as_bool().ok_or_else(|| {
                    ServeError::InvalidParams(format!("`inputs.{name}` must be a bool"))
                })?;
                values.insert(circuit.netlist.find_net(name)?, value);
            }
        }
        let resident = circuit.sequential.as_mut().ok_or_else(|| {
            ServeError::InvalidParams("no clock loaded — call load_clock first".into())
        })?;
        let mut options = seq_options(config, library.vdd(), resident.pi_slew, None);
        options.netsim = options
            .netsim
            .with_fault(fault.clone())
            .with_deadline(deadline.clone());
        let caches = SimCaches {
            delay,
            waveforms: Some(waveforms),
        };
        let first = CycleInputs::from_pairs(values);
        let hold = CycleInputs::hold();
        for i in 0..count {
            // Cooperative cancellation between cycles: completed cycles stay
            // committed in the carried register state, the rest are dropped.
            if let Some(d) = deadline.as_ref() {
                if d.expired() {
                    return Err(ServeError::Timeout(format!(
                        "request budget spent after {i} of {count} cycles; \
                         register state holds the last completed cycle"
                    )));
                }
            }
            let inputs = if i == 0 { &first } else { &hold };
            let outcome = step_cycle(
                &resident.seq,
                library,
                &resident.clock,
                inputs,
                &mut resident.state,
                &options,
                caches,
            )?;
            resident.last = Some(outcome);
        }
        let Some(last) = resident.last.as_ref() else {
            return Err(ServeError::Engine(
                "internal: cycle loop committed no outcome".into(),
            ));
        };
        let registers = resident
            .seq
            .registers()
            .iter()
            .zip(&last.states)
            .map(|(reg, state)| (reg.name.clone(), JsonValue::Bool(state.value)))
            .collect();
        let voltages = resident
            .seq
            .registers()
            .iter()
            .zip(&last.states)
            .map(|(reg, state)| (reg.name.clone(), num(state.voltage)))
            .collect();
        let outputs = circuit
            .netlist
            .primary_outputs()
            .iter()
            .zip(&last.po_values)
            .map(|(&po, &value)| {
                (
                    circuit.netlist.net_name(po).to_string(),
                    JsonValue::Bool(value),
                )
            })
            .collect();
        let mut fields = vec![
            ("cycle", num(resident.state.cycle as f64)),
            ("registers", JsonValue::Object(registers)),
            ("voltages_v", JsonValue::Object(voltages)),
            ("outputs", JsonValue::Object(outputs)),
        ];
        if let Some(epoch) = &last.epoch {
            fields.push(("stats", stats_json(&epoch.stats())));
        }
        Ok(obj(fields))
    }

    /// `slack {}` — sequential signoff timing of the loaded netlist against
    /// the loaded clock: per-endpoint setup/hold slack from characterized
    /// register windows, worst endpoint first.
    fn slack(&mut self) -> Result<JsonValue, ServeError> {
        let Session {
            library,
            config,
            circuit,
            ..
        } = self;
        let circuit = circuit
            .as_ref()
            .ok_or_else(|| ServeError::InvalidParams("no netlist loaded".into()))?;
        let resident = circuit.sequential.as_ref().ok_or_else(|| {
            ServeError::InvalidParams("no clock loaded — call load_clock first".into())
        })?;
        let timing = SeqTimingOptions::new(TimingOptions::new(
            config.netsim_options(library.vdd()).calculator,
            config.primary_output_load,
        ))
        .with_pi_slew(resident.pi_slew);
        let report = analyze_sequential(&circuit.netlist, library, &resident.clock, &timing)?;
        let violations = report.violations().count();
        let worst = report.worst().map_or(JsonValue::Null, |e| {
            obj(vec![
                ("endpoint", string(&e.endpoint)),
                ("setup_slack_s", e.setup_slack.map_or(JsonValue::Null, num)),
            ])
        });
        Ok(obj(vec![
            ("period_s", num(resident.clock.period)),
            ("violations", num(violations as f64)),
            ("worst", worst),
            (
                "endpoints",
                JsonValue::Array(report.endpoints.iter().map(endpoint_json).collect()),
            ),
        ]))
    }

    /// After a `retype_gate` ECO on a clocked session: re-partition (ECO
    /// retypes preserve net and gate identities) and, when the edit landed in
    /// the comb cone of a committed cycle, replay the current epoch
    /// incrementally — only the edited gate's cone of influence re-solves —
    /// and re-sample the captures so the carried register state reflects the
    /// edit.
    fn reseat_sequential(&mut self, edited_gate: &str) -> Result<&'static str, ServeError> {
        let Session {
            library,
            config,
            delay,
            waveforms,
            circuit,
            ..
        } = self;
        let Some(circuit) = circuit.as_mut() else {
            return Err(ServeError::Engine(
                "internal: reseat_sequential called with no netlist loaded".into(),
            ));
        };
        match SeqNetlist::partition(&circuit.netlist) {
            Ok(seq) => match circuit.sequential.as_mut() {
                Some(resident) => resident.seq = seq,
                None => {
                    return Err(ServeError::Engine(
                        "internal: reseat_sequential called with no clock loaded".into(),
                    ))
                }
            },
            Err(e) => {
                // The edit made the netlist un-clockable (e.g. introduced an
                // unsupported latch): drop the sequential context rather than
                // leave a stale partition behind.
                circuit.sequential = None;
                return Err(ServeError::Engine(format!(
                    "ECO left the netlist without a valid clock partition \
                     ({e}); sequential context dropped — call load_clock again"
                )));
            }
        }
        let Some(resident) = circuit.sequential.as_mut() else {
            return Err(ServeError::Engine(
                "internal: sequential context vanished during reseat".into(),
            ));
        };
        let Some(comb) = resident.seq.comb() else {
            resident.last = None;
            return Ok("restructured");
        };
        let Ok(gate) = comb.find_gate(edited_gate) else {
            // The edit hit a register, not the cone: committed epochs are
            // stale (the carried Boolean state stays).
            resident.last = None;
            return Ok("stale");
        };
        let Some(last) = resident.last.as_ref() else {
            return Ok("repartitioned");
        };
        let seeds = seeds_for_gate_edit(comb, gate);
        let options = seq_options(config, library.vdd(), resident.pi_slew, None);
        let caches = SimCaches {
            delay,
            waveforms: Some(waveforms),
        };
        let outcome = resimulate_cycle(
            &resident.seq,
            library,
            &resident.clock,
            last,
            &seeds,
            &options,
            caches,
        )?;
        resident.state.reg_values = outcome.states.iter().map(|s| s.value).collect();
        resident.state.reg_toggled = resident
            .state
            .reg_values
            .iter()
            .zip(&outcome.values_before)
            .map(|(new, old)| new != old)
            .collect();
        resident.last = Some(outcome);
        Ok("resimulated")
    }

    /// `metrics {}` — a name-sorted snapshot of the process-global metric
    /// registry: counters (`server.rpc.*`, `netsim.*`, `core.sim.*`, ...),
    /// gauges, and fixed-shape latency-histogram summaries per RPC method.
    /// The key set is a deterministic function of the request history, so
    /// digit-normalized smoke diffs stay stable across runs and threads.
    fn metrics(&mut self) -> Result<JsonValue, ServeError> {
        Ok(mcsm_obs::global().snapshot().to_json())
    }

    /// `trace {path?}` — dumps every recorded span as a Chrome trace-event
    /// file (Perfetto-loadable). The path defaults to `--trace-out` /
    /// `MCSM_TRACE_OUT`. Fixed response shape whether or not tracing is
    /// armed: `{armed, written, path, spans, dropped}`.
    fn trace(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let armed = mcsm_obs::trace_enabled();
        let path = match params.get("path").and_then(|p| p.as_str()) {
            Some(path) => Some(path.to_string()),
            None => mcsm_obs::trace_out_path(),
        };
        let mut written = false;
        let mut spans = 0u64;
        let mut dropped = 0u64;
        if armed {
            if let Some(path) = &path {
                let summary = mcsm_obs::write_trace(path).map_err(|e| {
                    ServeError::Engine(format!("cannot write trace to `{path}`: {e}"))
                })?;
                written = true;
                spans = summary.spans;
                dropped = summary.dropped;
            }
        }
        Ok(obj(vec![
            ("armed", JsonValue::Bool(armed)),
            ("written", JsonValue::Bool(written)),
            (
                "path",
                match &path {
                    Some(path) if written => string(path),
                    _ => JsonValue::Null,
                },
            ),
            ("spans", num(spans as f64)),
            ("dropped", num(dropped as f64)),
        ]))
    }

    /// `stats {}` — session-cumulative cache counters and resident state.
    fn stats(&mut self) -> Result<JsonValue, ServeError> {
        let netlist = match &self.circuit {
            Some(circuit) => {
                let mut fields = vec![
                    ("name", string(circuit.netlist.name())),
                    ("gates", num(circuit.netlist.gate_count() as f64)),
                    ("nets", num(circuit.netlist.net_count() as f64)),
                    (
                        "dirty",
                        string(match circuit.dirty {
                            Dirty::Full => "full",
                            Dirty::Seeds(_) => "seeds",
                            Dirty::Clean => "clean",
                        }),
                    ),
                ];
                if let Some(resident) = &circuit.sequential {
                    fields.push((
                        "sequential",
                        obj(vec![
                            ("clock", string(&resident.clock.clock)),
                            ("period_s", num(resident.clock.period)),
                            ("registers", num(resident.seq.registers().len() as f64)),
                            ("cycles", num(resident.state.cycle as f64)),
                        ]),
                    ));
                }
                obj(fields)
            }
            None => JsonValue::Null,
        };
        let last_run = match &self.last_run {
            Some((mode, stats)) => obj(vec![
                ("mode", string(mode.name())),
                ("stats", stats_json(stats)),
            ]),
            None => JsonValue::Null,
        };
        Ok(obj(vec![
            ("backend", string(self.config.backend_name())),
            ("threads", num(self.config.threads as f64)),
            ("runs", num(self.runs as f64)),
            ("netlist", netlist),
            ("last_run", last_run),
            (
                "delay_cache",
                obj(vec![
                    ("hits", num(self.delay.hits() as f64)),
                    ("misses", num(self.delay.misses() as f64)),
                    ("len", num(self.delay.len() as f64)),
                ]),
            ),
            (
                "waveform_cache",
                obj(vec![
                    ("hits", num(self.waveforms.hits() as f64)),
                    ("misses", num(self.waveforms.misses() as f64)),
                    ("len", num(self.waveforms.len() as f64)),
                ]),
            ),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsm_cells::tech::Technology;
    use mcsm_core::config::CharacterizationConfig;

    fn session() -> Session {
        let library = ModelLibrary::characterize(
            &Technology::cmos_130nm(),
            &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
            &CharacterizationConfig::coarse(),
        )
        .unwrap();
        Session::new(library, SessionConfig::default())
    }

    fn params(text: &str) -> JsonValue {
        JsonValue::parse(text).unwrap()
    }

    #[test]
    fn a_full_query_cycle_on_c17() {
        let mut session = session();
        let loaded = session
            .handle("load_netlist", &params(r#"{"builtin": "c17"}"#))
            .unwrap();
        assert_eq!(loaded.get("gates").unwrap().as_f64(), Some(6.0));
        assert_eq!(loaded.get("seq").unwrap().as_f64(), Some(1.0));

        session
            .handle(
                "set_drive",
                &params(r#"{"net": "N1", "drive": {"kind": "fall"}}"#),
            )
            .unwrap();
        session
            .handle(
                "set_drive",
                &params(r#"{"net": "N3", "drive": {"kind": "dc", "level": 1.2}}"#),
            )
            .unwrap();

        // First waveform-bearing query triggers the (full) evaluation.
        let arrival = session
            .handle("arrival", &params(r#"{"net": "N22"}"#))
            .unwrap();
        assert!(arrival.get("time_s").unwrap().as_f64().unwrap() > 1e-9);
        let resim = session.handle("resim", &params("{}")).unwrap();
        assert_eq!(resim.get("mode").unwrap().as_str(), Some("noop"));

        // Load ECO on a leaf output net: only its driver re-solves.
        session
            .handle(
                "eco",
                &params(r#"{"op": "set_net_load", "net": "N22", "farads": 1e-15}"#),
            )
            .unwrap();
        let resim = session.handle("resim", &params("{}")).unwrap();
        assert_eq!(resim.get("mode").unwrap().as_str(), Some("incremental"));
        let stats = resim.get("stats").unwrap();
        assert_eq!(stats.get("gates_reused").unwrap().as_f64(), Some(5.0));

        let report = session.handle("stats", &params("{}")).unwrap();
        assert_eq!(
            report
                .get("netlist")
                .unwrap()
                .get("dirty")
                .unwrap()
                .as_str(),
            Some("clean")
        );
        assert!(
            report
                .get("waveform_cache")
                .unwrap()
                .get("len")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn errors_carry_jsonrpc_codes_and_still_consume_seq() {
        let mut session = session();
        let err = session.handle("nope", &params("{}")).unwrap_err();
        assert_eq!(err.code(), -32601);
        let err = session
            .handle("arrival", &params(r#"{"net": "N22"}"#))
            .unwrap_err();
        assert_eq!(err.code(), -32602, "no netlist loaded yet: {err}");
        session
            .handle("load_netlist", &params(r#"{"builtin": "c17"}"#))
            .unwrap();
        // Internal nets cannot be driven.
        let err = session
            .handle(
                "set_drive",
                &params(r#"{"net": "N10", "drive": {"kind": "rise"}}"#),
            )
            .unwrap_err();
        assert_eq!(err.code(), -32602);
        // Retyping to a cell with a different pin count is a validated edit.
        let err = session
            .handle(
                "eco",
                &params(r#"{"op": "retype_gate", "gate": "g22", "cell": "INV"}"#),
            )
            .unwrap_err();
        assert_eq!(err.code(), -32000);
        // Sequence advanced on every request, including the failed ones.
        let report = session.handle("stats", &params("{}")).unwrap();
        assert_eq!(report.get("seq").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    fn streamed_sessions_answer_points_and_reject_released_nets() {
        let mut session = session();
        let loaded = session
            .handle(
                "load_netlist",
                &params(r#"{"builtin": "nand_chain:4", "observe": ["n1"], "thin_eps": 0.0}"#),
            )
            .unwrap();
        assert_eq!(loaded.get("observe").unwrap().as_f64(), Some(1.0));
        session
            .handle(
                "set_drive",
                &params(r#"{"net": "in", "drive": {"kind": "rise"}}"#),
            )
            .unwrap();
        // Observation points — the listed net and every primary output —
        // keep their samples.
        let wf = session
            .handle("waveform", &params(r#"{"net": "n1"}"#))
            .unwrap();
        assert!(wf.get("samples").unwrap().as_f64().unwrap() >= 2.0);
        session
            .handle("waveform", &params(r#"{"net": "out"}"#))
            .unwrap();
        // A released interior net is a descriptive error, not a panic or a
        // null that looks like "no event".
        let err = session
            .handle("waveform", &params(r#"{"net": "n0"}"#))
            .unwrap_err();
        assert_eq!(err.code(), -32602);
        assert!(err.to_string().contains("n0"), "{err}");
        assert!(err.to_string().contains("observe"), "{err}");
        let err = session
            .handle("arrival", &params(r#"{"net": "n0"}"#))
            .unwrap_err();
        assert_eq!(err.code(), -32602);
        // Edits on a streamed session force a full re-run: the streamed
        // result released the waveforms incremental reuse needs.
        session
            .handle(
                "eco",
                &params(r#"{"op": "set_net_load", "net": "out", "farads": 1e-15}"#),
            )
            .unwrap();
        let resim = session.handle("resim", &params("{}")).unwrap();
        assert_eq!(resim.get("mode").unwrap().as_str(), Some("full"));
        let stats = resim.get("stats").unwrap();
        assert!(stats.get("peak_live_waveforms").unwrap().as_f64().unwrap() >= 1.0);
        // Unknown observe nets are rejected at load.
        let err = session
            .handle(
                "load_netlist",
                &params(r#"{"builtin": "c17", "observe": ["nope"]}"#),
            )
            .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn builtin_specs_parse_sizes() {
        assert_eq!(Session::build_builtin("c17").unwrap().gate_count(), 6);
        assert_eq!(Session::build_builtin("s27").unwrap().gate_count(), 16);
        assert_eq!(
            Session::build_builtin("nand_chain:5").unwrap().gate_count(),
            5
        );
        // 3 stages x 4 bits, one comb gate and one register per bit per stage.
        assert_eq!(Session::build_builtin("pipeline").unwrap().gate_count(), 24);
        assert_eq!(
            Session::build_builtin("pipeline:2:3:5")
                .unwrap()
                .gate_count(),
            12
        );
        assert!(Session::build_builtin("nand_chain:x").is_err());
        assert!(Session::build_builtin("pipeline:two").is_err());
        assert!(Session::build_builtin("mystery").is_err());
    }

    fn clocked_session() -> Session {
        use mcsm_core::characterize::RegisterCharacterizationConfig;
        let technology = Technology::cmos_130nm();
        let mut library = ModelLibrary::characterize(
            &technology,
            &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
            &CharacterizationConfig::coarse(),
        )
        .unwrap();
        library
            .characterize_registers(
                &technology,
                &[CellKind::Dff],
                &RegisterCharacterizationConfig::coarse(),
            )
            .unwrap();
        Session::new(library, SessionConfig::default())
    }

    #[test]
    fn a_clocked_session_cycles_carries_state_and_reports_slack() {
        let mut session = clocked_session();
        session
            .handle("load_netlist", &params(r#"{"builtin": "s27"}"#))
            .unwrap();
        // Cycling before a clock is loaded is a params error, not a panic.
        let err = session.handle("cycle", &params("{}")).unwrap_err();
        assert_eq!(err.code(), -32602);
        assert!(err.to_string().contains("load_clock"), "{err}");

        let loaded = session
            .handle("load_clock", &params(r#"{"clock": "CK", "period": 2e-9}"#))
            .unwrap();
        let registers = loaded.get("registers").unwrap().as_array().unwrap();
        assert_eq!(registers.len(), 3);
        assert_eq!(registers[0].as_str(), Some("R5"));
        assert_eq!(loaded.get("cone_gates").unwrap().as_f64(), Some(13.0));

        let cycled = session
            .handle(
                "cycle",
                &params(r#"{"inputs": {"G0": true, "G1": true}, "count": 2}"#),
            )
            .unwrap();
        assert_eq!(cycled.get("cycle").unwrap().as_f64(), Some(2.0));
        assert!(cycled.get("registers").unwrap().get("R6").is_some());
        assert!(cycled.get("outputs").unwrap().get("G17").is_some());
        // State carries across `cycle` calls.
        let cycled = session.handle("cycle", &params("{}")).unwrap();
        assert_eq!(cycled.get("cycle").unwrap().as_f64(), Some(3.0));

        let slack = session.handle("slack", &params("{}")).unwrap();
        assert_eq!(slack.get("endpoints").unwrap().as_array().unwrap().len(), 4);
        assert!(slack.get("worst").unwrap().get("endpoint").is_some());
        // A generous 2 ns period leaves no violations on s27.
        assert_eq!(slack.get("violations").unwrap().as_f64(), Some(0.0));

        let stats = session.handle("stats", &params("{}")).unwrap();
        let sequential = stats.get("netlist").unwrap().get("sequential").unwrap();
        assert_eq!(sequential.get("cycles").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn a_retype_eco_resimulates_the_current_epoch_incrementally() {
        let mut session = clocked_session();
        session
            .handle("load_netlist", &params(r#"{"builtin": "s27"}"#))
            .unwrap();
        session
            .handle("load_clock", &params(r#"{"clock": "CK", "period": 2e-9}"#))
            .unwrap();
        session
            .handle("cycle", &params(r#"{"inputs": {"G0": true}}"#))
            .unwrap();
        // Retype a cone gate: the committed epoch replays incrementally
        // (only the edited gate's cone of influence re-solves).
        let eco = session
            .handle(
                "eco",
                &params(r#"{"op": "retype_gate", "gate": "U9", "cell": "NOR2"}"#),
            )
            .unwrap();
        assert_eq!(eco.get("sequential").unwrap().as_str(), Some("resimulated"));
        // The session keeps cycling on the edited netlist.
        let cycled = session.handle("cycle", &params("{}")).unwrap();
        assert_eq!(cycled.get("cycle").unwrap().as_f64(), Some(2.0));
        // Register-aware retype errors name the pin role, not a bare count.
        let err = session
            .handle(
                "eco",
                &params(r#"{"op": "retype_gate", "gate": "R5", "cell": "INV"}"#),
            )
            .unwrap_err();
        assert_eq!(err.code(), -32000);
        assert!(err.to_string().to_lowercase().contains("clock"), "{err}");
    }

    #[test]
    fn load_clock_rejects_registerless_and_misnamed_clocks() {
        let mut session = clocked_session();
        session
            .handle("load_netlist", &params(r#"{"builtin": "c17"}"#))
            .unwrap();
        let err = session
            .handle("load_clock", &params(r#"{"clock": "N1", "period": 2e-9}"#))
            .unwrap_err();
        assert_eq!(err.code(), -32602, "{err}");
        session
            .handle("load_netlist", &params(r#"{"builtin": "s27"}"#))
            .unwrap();
        let err = session
            .handle("load_clock", &params(r#"{"clock": "G0", "period": 2e-9}"#))
            .unwrap_err();
        assert!(err.to_string().contains("CK"), "{err}");
    }
}
