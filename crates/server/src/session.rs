//! The resident query session: one characterized library, one netlist, one
//! committed simulation result, and the request handlers that keep them
//! consistent.
//!
//! The session is the single-writer core of the server: every request mutates
//! or reads it under one lock (see [`crate::server::Engine`]), and each
//! request is stamped with a monotonically increasing `seq` *under that
//! lock*. That makes any concurrent client interleaving equivalent to the
//! serial replay of the same requests in `seq` order — the property the
//! concurrent stress test pins bit-for-bit.
//!
//! Evaluation is lazy and incremental: edits ([`set_drive`](Session), `eco`)
//! only record which gates they invalidated; the next query needing waveforms
//! re-solves the downstream [cone of influence](mcsm_netsim::cone_of_influence)
//! of those seeds and reuses every committed waveform outside it. Warm
//! repeats additionally hit the whole-gate-solve
//! [`mcsm_sta::WaveformCache`], skipping the numerical engine
//! entirely.

use crate::error::ServeError;
use mcsm_cells::cell::CellKind;
use mcsm_core::selective::SelectivePolicy;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform};
use mcsm_net::{balanced_tree, c17, inverter_chain, nand_chain, NetRef, Netlist};
use mcsm_netsim::{
    resimulate_netlist, seeds_for_drive_change, seeds_for_gate_edit, seeds_for_load_change,
    simulate_netlist_cached, NetsimOptions, NetsimResult, NetsimStats, Observe, SimCaches,
    DEFAULT_EVENT_THRESHOLD,
};
use mcsm_num::json::JsonValue;
use mcsm_sta::delaycalc::{DelayBackend, DelayCache, DelayCalculator, WaveformCache};
use mcsm_sta::models::ModelLibrary;
use std::collections::HashMap;

/// Evaluation defaults of a session; individual fields can be overridden per
/// `load_netlist` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Model backend for every gate solve.
    pub backend: DelayBackend,
    /// Simulation window (seconds).
    pub window: f64,
    /// Engine time step (seconds).
    pub dt: f64,
    /// Worker threads for level-parallel gate solves (`0` = auto, `1` =
    /// sequential; results are bit-identical for every value).
    pub threads: usize,
    /// External load on every primary output (farads).
    pub primary_output_load: f64,
    /// Event threshold (volts) of the netlist simulator.
    pub event_threshold: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            backend: DelayBackend::CompleteMcsm,
            window: 4e-9,
            dt: 2e-12,
            threads: 1,
            primary_output_load: 2e-15,
            event_threshold: DEFAULT_EVENT_THRESHOLD,
        }
    }
}

impl SessionConfig {
    fn netsim_options(&self, vdd: f64) -> NetsimOptions {
        let calculator =
            DelayCalculator::new(self.backend, CsmSimOptions::new(self.window, self.dt), vdd);
        NetsimOptions::new(calculator, self.primary_output_load)
            .with_threads(self.threads)
            .with_event_threshold(self.event_threshold)
    }

    fn backend_name(&self) -> &'static str {
        match self.backend {
            DelayBackend::SisOnly => "sis",
            DelayBackend::BaselineMis => "baseline-mis",
            DelayBackend::CompleteMcsm => "complete-mcsm",
            DelayBackend::Selective(_) => "selective",
        }
    }
}

/// What must be re-evaluated before the next waveform-bearing query.
#[derive(Debug, Clone, PartialEq)]
enum Dirty {
    /// No committed result, or an edit (backend swap, fresh load) invalidated
    /// everything: run the full simulator.
    Full,
    /// Edits invalidated these seed gates; re-solve their downstream cone and
    /// reuse the rest of the committed result.
    Seeds(Vec<mcsm_net::GateRef>),
    /// The committed result matches the netlist, drives and config.
    Clean,
}

/// The resident circuit: netlist, drives, committed result, dirt tracking.
#[derive(Debug)]
struct Circuit {
    netlist: Netlist,
    drives: HashMap<NetRef, DriveWaveform>,
    result: Option<NetsimResult>,
    dirty: Dirty,
    /// Streaming observation points (`load_netlist`'s `observe` list), or
    /// `None` for full retention on every net.
    observe: Option<Vec<NetRef>>,
    /// Handoff-thinning bound (volts); `0.0` disables.
    thin_eps: f64,
}

impl Circuit {
    /// Records that `seeds` must be re-solved. `Full` absorbs everything;
    /// without a committed result only `Full` is possible. Streamed sessions
    /// always re-run in full: a streamed result has released the interior
    /// waveforms incremental reuse depends on.
    fn invalidate(&mut self, seeds: Vec<mcsm_net::GateRef>) {
        if self.observe.is_some() {
            self.dirty = Dirty::Full;
            return;
        }
        match (&mut self.dirty, self.result.is_some()) {
            (Dirty::Full, _) | (_, false) => self.dirty = Dirty::Full,
            (Dirty::Seeds(existing), true) => {
                for seed in seeds {
                    if !existing.contains(&seed) {
                        existing.push(seed);
                    }
                }
            }
            (Dirty::Clean, true) => self.dirty = Dirty::Seeds(seeds),
        }
    }
}

/// How the last evaluation ran, for the `resim` / `stats` responses.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RunMode {
    Full,
    Incremental,
    Noop,
}

impl RunMode {
    fn name(self) -> &'static str {
        match self {
            RunMode::Full => "full",
            RunMode::Incremental => "incremental",
            RunMode::Noop => "noop",
        }
    }
}

/// A resident query session. See the module docs for the model.
#[derive(Debug)]
pub struct Session {
    library: ModelLibrary,
    config: SessionConfig,
    delay: DelayCache,
    waveforms: WaveformCache,
    circuit: Option<Circuit>,
    seq: u64,
    runs: u64,
    last_run: Option<(RunMode, NetsimStats)>,
}

fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn num(value: f64) -> JsonValue {
    JsonValue::Number(value)
}

fn string(value: &str) -> JsonValue {
    JsonValue::String(value.to_string())
}

fn require_str<'p>(params: &'p JsonValue, key: &str) -> Result<&'p str, ServeError> {
    params
        .get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| ServeError::InvalidParams(format!("missing string param `{key}`")))
}

fn require_f64(params: &JsonValue, key: &str) -> Result<f64, ServeError> {
    params
        .get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| ServeError::InvalidParams(format!("missing number param `{key}`")))
}

fn opt_f64(params: &JsonValue, key: &str) -> Option<f64> {
    params.get(key).and_then(|v| v.as_f64())
}

fn stats_json(stats: &NetsimStats) -> JsonValue {
    obj(vec![
        ("gates_simulated", num(stats.gates_simulated as f64)),
        ("gates_skipped", num(stats.gates_skipped as f64)),
        ("gates_reused", num(stats.gates_reused as f64)),
        ("events", num(stats.events as f64)),
        ("cache_hits", num(stats.cache_hits as f64)),
        ("cache_misses", num(stats.cache_misses as f64)),
        ("waveform_hits", num(stats.waveform_hits as f64)),
        ("waveform_misses", num(stats.waveform_misses as f64)),
        ("peak_live_waveforms", num(stats.peak_live_waveforms as f64)),
        ("breakpoints_dropped", num(stats.breakpoints_dropped as f64)),
    ])
}

impl Session {
    /// Creates a session around a characterized library.
    pub fn new(library: ModelLibrary, config: SessionConfig) -> Self {
        Session {
            library,
            config,
            delay: DelayCache::new(),
            waveforms: WaveformCache::new(),
            circuit: None,
            seq: 0,
            runs: 0,
            last_run: None,
        }
    }

    /// Requests handled so far (the last assigned `seq`).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Handles one request: assigns the next `seq`, dispatches on `method`,
    /// and stamps the response with the `seq` and this request's cache-counter
    /// deltas. Must be called under the session lock — `seq` order *is* the
    /// serialization order.
    ///
    /// # Errors
    ///
    /// [`ServeError::MethodNotFound`] for unknown methods, and whatever the
    /// handler reports. Failed requests still consume a `seq`.
    pub fn handle(&mut self, method: &str, params: &JsonValue) -> Result<JsonValue, ServeError> {
        self.seq += 1;
        let seq = self.seq;
        let before = (
            self.delay.hits(),
            self.delay.misses(),
            self.waveforms.hits(),
            self.waveforms.misses(),
        );
        let mut result = match method {
            "load_netlist" => self.load_netlist(params),
            "set_drive" => self.set_drive(params),
            "eco" => self.eco(params),
            "arrival" => self.arrival(params),
            "slew" => self.slew(params),
            "waveform" => self.waveform(params),
            "resim" => self.resim(params),
            "stats" => self.stats(),
            other => Err(ServeError::MethodNotFound(other.to_string())),
        }?;
        if let JsonValue::Object(fields) = &mut result {
            fields.push(("seq".to_string(), num(seq as f64)));
            fields.push((
                "cache".to_string(),
                obj(vec![
                    ("delay_hits", num((self.delay.hits() - before.0) as f64)),
                    ("delay_misses", num((self.delay.misses() - before.1) as f64)),
                    (
                        "waveform_hits",
                        num((self.waveforms.hits() - before.2) as f64),
                    ),
                    (
                        "waveform_misses",
                        num((self.waveforms.misses() - before.3) as f64),
                    ),
                ]),
            ));
        }
        Ok(result)
    }

    fn build_builtin(spec: &str) -> Result<Netlist, ServeError> {
        let (name, arg) = match spec.split_once(':') {
            Some((name, arg)) => (name, Some(arg)),
            None => (spec, None),
        };
        let size = |default: usize| -> Result<usize, ServeError> {
            match arg {
                None => Ok(default),
                Some(text) => text.parse().map_err(|_| {
                    ServeError::InvalidParams(format!("bad builtin size in `{spec}`"))
                }),
            }
        };
        match name {
            "c17" => Ok(c17()),
            "nand_chain" => Ok(nand_chain(size(8)?)),
            "inverter_chain" => Ok(inverter_chain(size(8)?)),
            "balanced_tree" => Ok(balanced_tree(size(3)?, CellKind::Nand2)),
            other => Err(ServeError::InvalidParams(format!(
                "unknown builtin `{other}` (expected c17, nand_chain[:N], \
                 inverter_chain[:N] or balanced_tree[:D])"
            ))),
        }
    }

    /// `load_netlist {"builtin": "c17"}` or `{"netlist": {...}}`, optional
    /// `"window"` / `"dt"` overrides. Every primary input starts at DC 0 V.
    ///
    /// Streaming: an optional `"observe": ["net", ...]` list keeps full
    /// waveforms only on primary outputs plus the listed nets (bounding
    /// result memory on large netlists; waveform-bearing queries on other
    /// nets are rejected), and `"thin_eps"` (volts) thins fanout handoffs to
    /// an error-bounded piecewise-linear form.
    fn load_netlist(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let netlist = match (params.get("builtin"), params.get("netlist")) {
            (Some(builtin), None) => {
                let spec = builtin.as_str().ok_or_else(|| {
                    ServeError::InvalidParams("`builtin` must be a string".into())
                })?;
                Self::build_builtin(spec)?
            }
            (None, Some(doc)) => Netlist::from_json_value(doc)?,
            _ => {
                return Err(ServeError::InvalidParams(
                    "expected exactly one of `builtin` or `netlist`".into(),
                ))
            }
        };
        for gate in netlist.iter_gates() {
            if !self.library.contains(gate.kind) {
                return Err(ServeError::Engine(format!(
                    "cell {} (gate `{}`) is not characterized in this session's library",
                    gate.kind.name(),
                    gate.name
                )));
            }
        }
        if let Some(window) = opt_f64(params, "window") {
            self.config.window = window;
        }
        if let Some(dt) = opt_f64(params, "dt") {
            self.config.dt = dt;
        }
        let observe = match params.get("observe") {
            None => None,
            Some(spec) => {
                let names = spec.as_array().ok_or_else(|| {
                    ServeError::InvalidParams("`observe` must be an array of net names".into())
                })?;
                let mut points = Vec::with_capacity(names.len());
                for name in names {
                    let name = name.as_str().ok_or_else(|| {
                        ServeError::InvalidParams("`observe` must be an array of net names".into())
                    })?;
                    points.push(netlist.find_net(name)?);
                }
                Some(points)
            }
        };
        let thin_eps = opt_f64(params, "thin_eps").unwrap_or(0.0);
        let drives = netlist
            .primary_inputs()
            .iter()
            .map(|&pi| (pi, DriveWaveform::dc(0.0)))
            .collect();
        let mut response_fields = vec![
            ("name", string(netlist.name())),
            ("gates", num(netlist.gate_count() as f64)),
            ("nets", num(netlist.net_count() as f64)),
            (
                "primary_inputs",
                JsonValue::Array(
                    netlist
                        .primary_inputs()
                        .iter()
                        .map(|&pi| string(netlist.net_name(pi)))
                        .collect(),
                ),
            ),
            (
                "primary_outputs",
                JsonValue::Array(
                    netlist
                        .primary_outputs()
                        .iter()
                        .map(|&po| string(netlist.net_name(po)))
                        .collect(),
                ),
            ),
        ];
        if let Some(points) = &observe {
            response_fields.push(("observe", num(points.len() as f64)));
        }
        let response = obj(response_fields);
        self.circuit = Some(Circuit {
            netlist,
            drives,
            result: None,
            dirty: Dirty::Full,
            observe,
            thin_eps,
        });
        Ok(response)
    }

    fn circuit_mut(&mut self) -> Result<&mut Circuit, ServeError> {
        self.circuit
            .as_mut()
            .ok_or_else(|| ServeError::InvalidParams("no netlist loaded".into()))
    }

    fn parse_drive(&self, params: &JsonValue) -> Result<DriveWaveform, ServeError> {
        let vdd = self.library.vdd();
        let spec = params
            .get("drive")
            .ok_or_else(|| ServeError::InvalidParams("missing `drive` object".into()))?;
        let kind = require_str(spec, "kind")?;
        let t_start = opt_f64(spec, "t_start").unwrap_or(1e-9);
        let transition = opt_f64(spec, "transition").unwrap_or(80e-12);
        match kind {
            "rise" => Ok(DriveWaveform::rising_ramp(vdd, t_start, transition)),
            "fall" => Ok(DriveWaveform::falling_ramp(vdd, t_start, transition)),
            "dc" => Ok(DriveWaveform::dc(require_f64(spec, "level")?)),
            other => Err(ServeError::InvalidParams(format!(
                "unknown drive kind `{other}` (expected rise, fall or dc)"
            ))),
        }
    }

    /// `set_drive {"net": "N1", "drive": {"kind": "fall", "t_start": 1e-9,
    /// "transition": 8e-11}}` — replaces a primary input's stimulus and
    /// invalidates the input's fanout gates.
    fn set_drive(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let drive = self.parse_drive(params)?;
        let name = require_str(params, "net")?.to_string();
        let circuit = self.circuit_mut()?;
        let net = circuit.netlist.find_net(&name)?;
        if !circuit.netlist.is_primary_input(net) {
            return Err(ServeError::InvalidParams(format!(
                "net `{name}` is not a primary input"
            )));
        }
        circuit.drives.insert(net, drive);
        let seeds = seeds_for_drive_change(&circuit.netlist, net);
        let invalidated = seeds.len();
        circuit.invalidate(seeds);
        Ok(obj(vec![
            ("net", string(&name)),
            ("invalidated_gates", num(invalidated as f64)),
        ]))
    }

    /// `eco {"op": "retype_gate" | "set_net_load" | "swap_backend", ...}` —
    /// validated in-place edits; only the invalidated cone is re-solved on the
    /// next evaluation (`swap_backend` invalidates everything).
    fn eco(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let op = require_str(params, "op")?;
        match op {
            "retype_gate" => {
                let gate_name = require_str(params, "gate")?.to_string();
                let cell_name = require_str(params, "cell")?.to_string();
                let kind = CellKind::from_name(&cell_name).ok_or_else(|| {
                    ServeError::InvalidParams(format!("unknown cell `{cell_name}`"))
                })?;
                if !self.library.contains(kind) {
                    return Err(ServeError::Engine(format!(
                        "cell {} is not characterized in this session's library",
                        kind.name()
                    )));
                }
                let circuit = self.circuit_mut()?;
                let gate = circuit.netlist.find_gate(&gate_name)?;
                circuit.netlist.retype_gate(gate, kind)?;
                let seeds = seeds_for_gate_edit(&circuit.netlist, gate);
                let invalidated = seeds.len();
                circuit.invalidate(seeds);
                Ok(obj(vec![
                    ("op", string(op)),
                    ("gate", string(&gate_name)),
                    ("cell", string(kind.name())),
                    ("invalidated_gates", num(invalidated as f64)),
                ]))
            }
            "set_net_load" => {
                let net_name = require_str(params, "net")?.to_string();
                let farads = require_f64(params, "farads")?;
                let circuit = self.circuit_mut()?;
                let net = circuit.netlist.find_net(&net_name)?;
                circuit.netlist.set_net_load(net, farads)?;
                let seeds = seeds_for_load_change(&circuit.netlist, net);
                let invalidated = seeds.len();
                circuit.invalidate(seeds);
                Ok(obj(vec![
                    ("op", string(op)),
                    ("net", string(&net_name)),
                    ("farads", num(farads)),
                    ("invalidated_gates", num(invalidated as f64)),
                ]))
            }
            "swap_backend" => {
                let backend = match require_str(params, "backend")? {
                    "sis" => DelayBackend::SisOnly,
                    "baseline-mis" => DelayBackend::BaselineMis,
                    "complete-mcsm" => DelayBackend::CompleteMcsm,
                    "selective" => DelayBackend::Selective(SelectivePolicy::default()),
                    other => {
                        return Err(ServeError::InvalidParams(format!(
                            "unknown backend `{other}` (expected sis, baseline-mis, \
                             complete-mcsm or selective)"
                        )))
                    }
                };
                self.config.backend = backend;
                // Every gate solve depends on the backend: full invalidation.
                // The caches stay — their keys carry the backend, so entries
                // for the previous backend remain valid if it comes back.
                if let Some(circuit) = self.circuit.as_mut() {
                    circuit.dirty = Dirty::Full;
                }
                Ok(obj(vec![
                    ("op", string(op)),
                    ("backend", string(self.config.backend_name())),
                ]))
            }
            other => Err(ServeError::InvalidParams(format!(
                "unknown eco op `{other}` (expected retype_gate, set_net_load \
                 or swap_backend)"
            ))),
        }
    }

    /// Brings the committed result up to date (full or cone-incremental run,
    /// whichever the dirt tracking calls for) and returns it.
    fn ensure_result(&mut self) -> Result<&NetsimResult, ServeError> {
        let circuit = self
            .circuit
            .as_mut()
            .ok_or_else(|| ServeError::InvalidParams("no netlist loaded".into()))?;
        let mut options = self.config.netsim_options(self.library.vdd());
        if let Some(points) = &circuit.observe {
            options = options.with_observe(Observe::Points(points.clone()));
        }
        options = options.with_thin_eps(circuit.thin_eps);
        let caches = SimCaches {
            delay: &self.delay,
            waveforms: Some(&self.waveforms),
        };
        match std::mem::replace(&mut circuit.dirty, Dirty::Clean) {
            Dirty::Clean => {
                self.last_run = Some((RunMode::Noop, NetsimStats::default()));
            }
            Dirty::Full => {
                let result = simulate_netlist_cached(
                    &circuit.netlist,
                    &self.library,
                    &circuit.drives,
                    &options,
                    caches,
                )?;
                self.runs += 1;
                self.last_run = Some((RunMode::Full, result.stats()));
                circuit.result = Some(result);
            }
            Dirty::Seeds(seeds) => {
                let previous = circuit
                    .result
                    .as_ref()
                    .expect("seed-dirty state always has a committed result");
                let result = resimulate_netlist(
                    &circuit.netlist,
                    &self.library,
                    &circuit.drives,
                    &options,
                    caches,
                    previous,
                    &seeds,
                )?;
                self.runs += 1;
                self.last_run = Some((RunMode::Incremental, result.stats()));
                circuit.result = Some(result);
            }
        }
        Ok(circuit
            .result
            .as_ref()
            .expect("ensure_result always commits a result"))
    }

    fn find_result_net(&mut self, params: &JsonValue) -> Result<(String, NetRef), ServeError> {
        let name = require_str(params, "net")?.to_string();
        let circuit = self.circuit_mut()?;
        let net = circuit.netlist.find_net(&name)?;
        Ok((name, net))
    }

    /// Waveform-bearing queries on a streamed session only answer for
    /// observation points; everywhere else the samples were released by
    /// design, so report that instead of a null that looks like "no event".
    fn require_observed(result: &NetsimResult, name: &str, net: NetRef) -> Result<(), ServeError> {
        if result.observed(net) {
            Ok(())
        } else {
            Err(ServeError::InvalidParams(format!(
                "net `{name}` is not an observation point of this streamed \
                 session — its waveform was released; list it in `observe` \
                 when loading the netlist (or load without `observe` to keep \
                 every net)"
            )))
        }
    }

    /// `arrival {"net": "N22"}` — earliest 50 % crossing in either direction;
    /// pass `"rising": true/false` to pin the direction.
    fn arrival(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let (name, net) = self.find_result_net(params)?;
        let direction = params.get("rising").and_then(|v| v.as_bool());
        let result = self.ensure_result()?;
        Self::require_observed(result, &name, net)?;
        let (time, rising) = match direction {
            Some(rising) => (result.arrival_time(net, rising), Some(rising)),
            None => match result.arrival_any(net) {
                Some((t, rising)) => (Some(t), Some(rising)),
                None => (None, None),
            },
        };
        Ok(obj(vec![
            ("net", string(&name)),
            ("time_s", time.map_or(JsonValue::Null, num)),
            ("rising", rising.map_or(JsonValue::Null, JsonValue::Bool)),
        ]))
    }

    /// `slew {"net": "N22", "rising": true}` — 10–90 % transition time.
    fn slew(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let (name, net) = self.find_result_net(params)?;
        let rising = params
            .get("rising")
            .and_then(|v| v.as_bool())
            .ok_or_else(|| ServeError::InvalidParams("missing bool param `rising`".into()))?;
        let result = self.ensure_result()?;
        Self::require_observed(result, &name, net)?;
        Ok(obj(vec![
            ("net", string(&name)),
            ("rising", JsonValue::Bool(rising)),
            (
                "slew_s",
                result.slew(net, rising).map_or(JsonValue::Null, num),
            ),
        ]))
    }

    /// `waveform {"net": "N22"}` — the committed waveform samples. On a
    /// streamed session (`observe` was given at load), only observation
    /// points have samples; other nets are a descriptive error.
    fn waveform(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        let (name, net) = self.find_result_net(params)?;
        let result = self.ensure_result()?;
        Self::require_observed(result, &name, net)?;
        let waveform = result
            .waveform(net)
            .expect("observed nets keep their waveform");
        Ok(obj(vec![
            ("net", string(&name)),
            ("samples", num(waveform.len() as f64)),
            ("times_s", JsonValue::from_f64_slice(waveform.times())),
            ("values_v", JsonValue::from_f64_slice(waveform.values())),
        ]))
    }

    /// `resim {}` — brings the result up to date (incremental if possible) and
    /// reports how the run went; `{"full": true}` forces a from-scratch run
    /// (with warm caches, still engine-free on repeats).
    fn resim(&mut self, params: &JsonValue) -> Result<JsonValue, ServeError> {
        if params.get("full").and_then(|v| v.as_bool()) == Some(true) {
            self.circuit_mut()?.dirty = Dirty::Full;
        }
        self.ensure_result()?;
        let (mode, stats) = self.last_run.expect("ensure_result records the run");
        Ok(obj(vec![
            ("mode", string(mode.name())),
            ("stats", stats_json(&stats)),
        ]))
    }

    /// `stats {}` — session-cumulative cache counters and resident state.
    fn stats(&mut self) -> Result<JsonValue, ServeError> {
        let netlist = match &self.circuit {
            Some(circuit) => obj(vec![
                ("name", string(circuit.netlist.name())),
                ("gates", num(circuit.netlist.gate_count() as f64)),
                ("nets", num(circuit.netlist.net_count() as f64)),
                (
                    "dirty",
                    string(match circuit.dirty {
                        Dirty::Full => "full",
                        Dirty::Seeds(_) => "seeds",
                        Dirty::Clean => "clean",
                    }),
                ),
            ]),
            None => JsonValue::Null,
        };
        let last_run = match &self.last_run {
            Some((mode, stats)) => obj(vec![
                ("mode", string(mode.name())),
                ("stats", stats_json(stats)),
            ]),
            None => JsonValue::Null,
        };
        Ok(obj(vec![
            ("backend", string(self.config.backend_name())),
            ("threads", num(self.config.threads as f64)),
            ("runs", num(self.runs as f64)),
            ("netlist", netlist),
            ("last_run", last_run),
            (
                "delay_cache",
                obj(vec![
                    ("hits", num(self.delay.hits() as f64)),
                    ("misses", num(self.delay.misses() as f64)),
                    ("len", num(self.delay.len() as f64)),
                ]),
            ),
            (
                "waveform_cache",
                obj(vec![
                    ("hits", num(self.waveforms.hits() as f64)),
                    ("misses", num(self.waveforms.misses() as f64)),
                    ("len", num(self.waveforms.len() as f64)),
                ]),
            ),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsm_cells::tech::Technology;
    use mcsm_core::config::CharacterizationConfig;

    fn session() -> Session {
        let library = ModelLibrary::characterize(
            &Technology::cmos_130nm(),
            &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
            &CharacterizationConfig::coarse(),
        )
        .unwrap();
        Session::new(library, SessionConfig::default())
    }

    fn params(text: &str) -> JsonValue {
        JsonValue::parse(text).unwrap()
    }

    #[test]
    fn a_full_query_cycle_on_c17() {
        let mut session = session();
        let loaded = session
            .handle("load_netlist", &params(r#"{"builtin": "c17"}"#))
            .unwrap();
        assert_eq!(loaded.get("gates").unwrap().as_f64(), Some(6.0));
        assert_eq!(loaded.get("seq").unwrap().as_f64(), Some(1.0));

        session
            .handle(
                "set_drive",
                &params(r#"{"net": "N1", "drive": {"kind": "fall"}}"#),
            )
            .unwrap();
        session
            .handle(
                "set_drive",
                &params(r#"{"net": "N3", "drive": {"kind": "dc", "level": 1.2}}"#),
            )
            .unwrap();

        // First waveform-bearing query triggers the (full) evaluation.
        let arrival = session
            .handle("arrival", &params(r#"{"net": "N22"}"#))
            .unwrap();
        assert!(arrival.get("time_s").unwrap().as_f64().unwrap() > 1e-9);
        let resim = session.handle("resim", &params("{}")).unwrap();
        assert_eq!(resim.get("mode").unwrap().as_str(), Some("noop"));

        // Load ECO on a leaf output net: only its driver re-solves.
        session
            .handle(
                "eco",
                &params(r#"{"op": "set_net_load", "net": "N22", "farads": 1e-15}"#),
            )
            .unwrap();
        let resim = session.handle("resim", &params("{}")).unwrap();
        assert_eq!(resim.get("mode").unwrap().as_str(), Some("incremental"));
        let stats = resim.get("stats").unwrap();
        assert_eq!(stats.get("gates_reused").unwrap().as_f64(), Some(5.0));

        let report = session.handle("stats", &params("{}")).unwrap();
        assert_eq!(
            report
                .get("netlist")
                .unwrap()
                .get("dirty")
                .unwrap()
                .as_str(),
            Some("clean")
        );
        assert!(
            report
                .get("waveform_cache")
                .unwrap()
                .get("len")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn errors_carry_jsonrpc_codes_and_still_consume_seq() {
        let mut session = session();
        let err = session.handle("nope", &params("{}")).unwrap_err();
        assert_eq!(err.code(), -32601);
        let err = session
            .handle("arrival", &params(r#"{"net": "N22"}"#))
            .unwrap_err();
        assert_eq!(err.code(), -32602, "no netlist loaded yet: {err}");
        session
            .handle("load_netlist", &params(r#"{"builtin": "c17"}"#))
            .unwrap();
        // Internal nets cannot be driven.
        let err = session
            .handle(
                "set_drive",
                &params(r#"{"net": "N10", "drive": {"kind": "rise"}}"#),
            )
            .unwrap_err();
        assert_eq!(err.code(), -32602);
        // Retyping to a cell with a different pin count is a validated edit.
        let err = session
            .handle(
                "eco",
                &params(r#"{"op": "retype_gate", "gate": "g22", "cell": "INV"}"#),
            )
            .unwrap_err();
        assert_eq!(err.code(), -32000);
        // Sequence advanced on every request, including the failed ones.
        let report = session.handle("stats", &params("{}")).unwrap();
        assert_eq!(report.get("seq").unwrap().as_f64(), Some(6.0));
    }

    #[test]
    fn streamed_sessions_answer_points_and_reject_released_nets() {
        let mut session = session();
        let loaded = session
            .handle(
                "load_netlist",
                &params(r#"{"builtin": "nand_chain:4", "observe": ["n1"], "thin_eps": 0.0}"#),
            )
            .unwrap();
        assert_eq!(loaded.get("observe").unwrap().as_f64(), Some(1.0));
        session
            .handle(
                "set_drive",
                &params(r#"{"net": "in", "drive": {"kind": "rise"}}"#),
            )
            .unwrap();
        // Observation points — the listed net and every primary output —
        // keep their samples.
        let wf = session
            .handle("waveform", &params(r#"{"net": "n1"}"#))
            .unwrap();
        assert!(wf.get("samples").unwrap().as_f64().unwrap() >= 2.0);
        session
            .handle("waveform", &params(r#"{"net": "out"}"#))
            .unwrap();
        // A released interior net is a descriptive error, not a panic or a
        // null that looks like "no event".
        let err = session
            .handle("waveform", &params(r#"{"net": "n0"}"#))
            .unwrap_err();
        assert_eq!(err.code(), -32602);
        assert!(err.to_string().contains("n0"), "{err}");
        assert!(err.to_string().contains("observe"), "{err}");
        let err = session
            .handle("arrival", &params(r#"{"net": "n0"}"#))
            .unwrap_err();
        assert_eq!(err.code(), -32602);
        // Edits on a streamed session force a full re-run: the streamed
        // result released the waveforms incremental reuse needs.
        session
            .handle(
                "eco",
                &params(r#"{"op": "set_net_load", "net": "out", "farads": 1e-15}"#),
            )
            .unwrap();
        let resim = session.handle("resim", &params("{}")).unwrap();
        assert_eq!(resim.get("mode").unwrap().as_str(), Some("full"));
        let stats = resim.get("stats").unwrap();
        assert!(stats.get("peak_live_waveforms").unwrap().as_f64().unwrap() >= 1.0);
        // Unknown observe nets are rejected at load.
        let err = session
            .handle(
                "load_netlist",
                &params(r#"{"builtin": "c17", "observe": ["nope"]}"#),
            )
            .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }

    #[test]
    fn builtin_specs_parse_sizes() {
        assert_eq!(Session::build_builtin("c17").unwrap().gate_count(), 6);
        assert_eq!(
            Session::build_builtin("nand_chain:5").unwrap().gate_count(),
            5
        );
        assert!(Session::build_builtin("nand_chain:x").is_err());
        assert!(Session::build_builtin("mystery").is_err());
    }
}
