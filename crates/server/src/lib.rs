//! `mcsm-serve`: an incremental timing/simulation query server.
//!
//! A timing engine spends almost all of its life answering *small questions
//! about an unchanged circuit*: what-if ECO edits, arrival queries after a
//! drive tweak, repeated waveform fetches. Re-running the full netlist
//! simulator for each of them throws away everything the previous run
//! learned. This crate keeps a characterized
//! [`ModelLibrary`](mcsm_sta::models::ModelLibrary), a
//! [`Netlist`](mcsm_net::Netlist) and the last committed
//! [`NetsimResult`](mcsm_netsim::NetsimResult) **resident** and answers
//! JSON-RPC queries against them, three layers deep:
//!
//! * **Session** ([`Session`]) — typed request handlers (`load_netlist`,
//!   `set_drive`, `eco`, `arrival`, `slew`, `waveform`, `resim`, `stats`),
//!   each response stamped with a monotonic `seq` and per-request cache
//!   counters.
//! * **Cone-of-influence re-evaluation** — edits record which gates they
//!   invalidated; the next query re-solves only the downstream cone
//!   ([`mcsm_netsim::resimulate_netlist`]) and reuses every committed
//!   waveform outside it, bit-identical to a from-scratch run.
//! * **Waveform memoization** — whole gate solves are memoized in a
//!   [`WaveformCache`](mcsm_sta::WaveformCache) keyed by exact content
//!   hashes ([`mcsm_num::hash`]), so warm queries skip the numerical engine
//!   entirely.
//!
//! Transports: newline-delimited JSON-RPC over stdin/stdout
//! ([`serve_stdio`]) or threaded TCP ([`serve_tcp`]), both serializing
//! through the [`Engine`] session lock — any concurrent client interleaving
//! is equivalent to the serial replay of the observed `seq` order.
//!
//! The serving path is hardened for long-lived operation: per-request panic
//! isolation with session rollback to the last committed result (`-32000`,
//! `recovered: true`), per-request `deadline_ms` budgets with cooperative
//! cancellation (`-32001`), a bounded request-line length (default 4 MiB),
//! and a deterministic fault-injection harness ([`mcsm_num::fault`], armed
//! via the `MCSM_FAULT_*` environment knobs) to rehearse all of it in tests
//! and CI without touching production defaults.
//!
//! # Example
//!
//! ```
//! use mcsm_serve::{Engine, Session, SessionConfig};
//! use mcsm_sta::models::ModelLibrary;
//!
//! // A session without characterized cells can still answer `stats`.
//! let engine = Engine::new(Session::new(ModelLibrary::new(1.2), SessionConfig::default()));
//! let response = engine.handle_line(r#"{"id": 1, "method": "stats", "params": {}}"#);
//! assert!(response.contains("\"result\""));
//! ```

pub mod error;
pub mod protocol;
pub mod server;
pub mod session;

pub use error::ServeError;
pub use protocol::{handle_request_line, strip_timing};
pub use server::{
    serve_stdio, serve_tcp, Engine, TcpServer, TransportOptions, DEFAULT_MAX_LINE_BYTES,
};
pub use session::{Session, SessionConfig};
