//! Transports: the locked engine plus stdin/stdout and threaded TCP serving.
//!
//! Both transports speak the same newline-delimited JSON-RPC protocol
//! ([`crate::protocol`]). The [`Engine`] wraps the [`Session`] in a mutex:
//! requests from any number of connections serialize through it, each
//! acquiring its `seq` under the lock — so every concurrent interleaving is
//! equivalent to the serial replay of the observed `seq` order.

use crate::protocol::handle_request_line;
use crate::session::Session;
use mcsm_num::par::ThreadPool;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A thread-safe request engine: one resident [`Session`] behind a lock.
#[derive(Debug)]
pub struct Engine {
    session: Mutex<Session>,
}

impl Engine {
    /// Wraps a session for concurrent serving.
    pub fn new(session: Session) -> Self {
        Engine {
            session: Mutex::new(session),
        }
    }

    /// Handles one request line, returning the compact one-line response.
    /// Safe to call from any thread; requests serialize through the session
    /// lock.
    pub fn handle_line(&self, line: &str) -> String {
        let mut session = self.session.lock().expect("session lock poisoned");
        handle_request_line(&mut session, line).to_string_compact()
    }
}

/// Serves newline-delimited requests from `input` to `output` until EOF —
/// the stdin/stdout transport (`mcsm-serve --stdio`). Blank lines are
/// ignored; every request line produces exactly one response line.
///
/// # Errors
///
/// Propagates I/O errors from the reader or writer.
pub fn serve_stdio(engine: &Engine, input: impl BufRead, mut output: impl Write) -> io::Result<()> {
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(output, "{}", engine.handle_line(&line))?;
        output.flush()?;
    }
    Ok(())
}

/// A running TCP server; dropping (or [`TcpServer::stop`]) shuts it down.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// The bound address (useful with a `:0` request to learn the port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit and waits for it. In-flight
    /// connections finish their current request queue (the worker pool joins
    /// before the acceptor exits).
    pub fn stop(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept() call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(engine: &Engine, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{}", engine.handle_line(&line))?;
        writer.flush()?;
    }
    Ok(())
}

/// Binds `addr` and serves connections on a [`ThreadPool`] of `threads`
/// workers (`0` = auto). Each connection occupies one worker for its
/// lifetime, so `threads` bounds the number of concurrently-connected
/// clients; requests still serialize through the engine's session lock
/// regardless of worker count.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_tcp(engine: Arc<Engine>, addr: &str, threads: usize) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_flag = Arc::clone(&shutdown);
    let acceptor = std::thread::spawn(move || {
        let pool = ThreadPool::new(mcsm_num::par::resolve_threads(threads));
        for stream in listener.incoming() {
            if shutdown_flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let engine = Arc::clone(&engine);
            pool.execute(move || {
                let _ = serve_connection(&engine, stream);
            });
        }
        pool.join();
    });
    Ok(TcpServer {
        addr: local,
        shutdown,
        acceptor: Some(acceptor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use mcsm_sta::models::ModelLibrary;

    fn engine() -> Engine {
        Engine::new(Session::new(
            ModelLibrary::new(1.2),
            SessionConfig::default(),
        ))
    }

    #[test]
    fn stdio_transport_answers_line_per_line() {
        let engine = engine();
        let input =
            b"{\"id\":1,\"method\":\"stats\",\"params\":{}}\n\n{\"id\":2,\"method\":\"stats\"}\n";
        let mut output = Vec::new();
        serve_stdio(&engine, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank line ignored: {text}");
        for (i, line) in lines.iter().enumerate() {
            let doc = mcsm_num::json::JsonValue::parse(line).unwrap();
            assert_eq!(doc.get("id").unwrap().as_f64(), Some((i + 1) as f64));
        }
    }

    #[test]
    fn tcp_transport_round_trips() {
        let engine = Arc::new(engine());
        let mut server = serve_tcp(engine, "127.0.0.1:0", 2).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let request = r#"{"id": 41, "method": "stats", "params": {}}"#;
        writeln!(writer, "{request}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let doc = mcsm_num::json::JsonValue::parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_f64(), Some(41.0));
        assert!(doc.get("result").unwrap().get("seq").is_some());
        drop(writer);
        drop(reader);
        server.stop();
    }
}
