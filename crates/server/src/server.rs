//! Transports: the locked engine plus stdin/stdout and threaded TCP serving.
//!
//! Both transports speak the same newline-delimited JSON-RPC protocol
//! ([`crate::protocol`]). The [`Engine`] wraps the [`Session`] in a mutex:
//! requests from any number of connections serialize through it, each
//! acquiring its `seq` under the lock — so every concurrent interleaving is
//! equivalent to the serial replay of the observed `seq` order.
//!
//! The engine is fault-tolerant: a request handler that panics is caught per
//! request (`catch_unwind`), the poisoned session lock is cleared and the
//! session rolled back to its last committed result, and the failed request
//! is answered with `-32000` / `recovered: true` — the server stays up.
//! Request lines are bounded ([`TransportOptions::max_line_bytes`], default
//! 4 MiB): an oversized line is answered with `-32600` naming the limit and
//! the connection keeps serving. TCP connections poll with a short read
//! timeout so [`TcpServer::stop`] drains in-flight requests instead of
//! hanging on idle readers.

use crate::protocol::{handle_request_line, oversize_response, recovered_response};
use crate::session::Session;
use mcsm_num::fault::{site, FaultPlan};
use mcsm_num::par::ThreadPool;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default bound on one request line: 4 MiB.
pub const DEFAULT_MAX_LINE_BYTES: usize = 4 << 20;

/// Transport-level hardening knobs shared by the stdio and TCP servers.
#[derive(Debug, Clone)]
pub struct TransportOptions {
    /// Longest request line accepted, in bytes; longer lines are answered
    /// with `-32600` (naming the limit) without buffering the full payload.
    pub max_line_bytes: usize,
    /// Fault-injection plan for the transport-level sites
    /// (`server.io.latency`, `server.io.truncate`, `server.io.oversize`).
    pub fault: Option<Arc<FaultPlan>>,
}

impl TransportOptions {
    /// The default transport: 4 MiB lines, no fault injection.
    pub fn new() -> Self {
        TransportOptions {
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            fault: None,
        }
    }

    /// Sets the request-line length bound (clamped to at least 64 bytes so
    /// the server can always read a minimal request).
    pub fn with_max_line_bytes(mut self, max_line_bytes: usize) -> Self {
        self.max_line_bytes = max_line_bytes.max(64);
        self
    }

    /// Arms the transport-level fault sites.
    pub fn with_fault(mut self, fault: Option<Arc<FaultPlan>>) -> Self {
        self.fault = fault;
        self
    }
}

impl Default for TransportOptions {
    fn default() -> Self {
        TransportOptions::new()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(msg) = payload.downcast_ref::<&str>() {
        (*msg).to_string()
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        msg.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A thread-safe request engine: one resident [`Session`] behind a lock.
#[derive(Debug)]
pub struct Engine {
    session: Mutex<Session>,
    options: TransportOptions,
    requests: AtomicU64,
}

impl Engine {
    /// Wraps a session for concurrent serving with default transport options.
    pub fn new(session: Session) -> Self {
        Engine::with_options(session, TransportOptions::new())
    }

    /// Wraps a session with explicit transport options.
    pub fn with_options(session: Session, options: TransportOptions) -> Self {
        Engine {
            session: Mutex::new(session),
            options,
            requests: AtomicU64::new(0),
        }
    }

    /// The request-line length bound enforced by [`Engine::handle_line`] and
    /// the transports' bounded readers.
    pub fn max_line_bytes(&self) -> usize {
        self.options.max_line_bytes
    }

    /// Locks the session, recovering from a poisoned lock: a handler panic
    /// unwound through the mutex, so clear the poison and roll the session
    /// back to its last committed result before handing it out.
    fn lock_session(&self) -> MutexGuard<'_, Session> {
        match self.session.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.session.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.recover_after_panic();
                guard
            }
        }
    }

    /// Handles one request line, returning the compact one-line response.
    /// Safe to call from any thread; requests serialize through the session
    /// lock. A panicking handler is confined to its own request: the session
    /// rolls back to the last committed result and the response is `-32000`
    /// with `recovered: true`.
    pub fn handle_line(&self, line: &str) -> String {
        let key = self.requests.fetch_add(1, Ordering::Relaxed);
        mcsm_obs::counter_add("server.requests", 1);
        let mut line = line;
        let inflated;
        if let Some(plan) = &self.options.fault {
            plan.maybe_delay(site::SERVER_IO_LATENCY, key);
            if plan.fires(site::SERVER_IO_TRUNCATE, key) {
                // Simulate a client whose write was cut short mid-line.
                let mut cut = line.len() / 3;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                line = &line[..cut];
            }
            if plan.fires(site::SERVER_IO_OVERSIZE, key) {
                // Simulate a client flooding one line past the bound.
                inflated = format!(
                    "{line}{}",
                    " ".repeat(self.options.max_line_bytes.saturating_sub(line.len()) + 1)
                );
                line = &inflated;
            }
        }
        if line.len() > self.options.max_line_bytes {
            mcsm_obs::counter_add("server.oversize", 1);
            return oversize_response(line.len(), self.options.max_line_bytes).to_string_compact();
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut session = self.lock_session();
            handle_request_line(&mut session, line).to_string_compact()
        }));
        match outcome {
            Ok(response) => response,
            Err(payload) => {
                // Eagerly clear the poison and roll back on the thread that
                // observed the panic, so concurrent requests never see it.
                mcsm_obs::counter_add("server.recovered_panics", 1);
                drop(self.lock_session());
                recovered_response(line, &panic_message(payload.as_ref())).to_string_compact()
            }
        }
    }
}

/// One framing outcome from the bounded line reader.
enum BoundedLine {
    /// A complete line within the bound (CR stripped, may be blank).
    Line(String),
    /// A line that exceeded the bound; payload is its observed byte length
    /// (the excess bytes were discarded, not buffered).
    Oversize(usize),
}

/// Newline framing with a hard per-line byte bound. Oversized lines are
/// drained chunk-by-chunk and reported with their observed length — peak
/// memory stays at `max + one BufRead chunk` no matter what a client sends.
/// Partial lines survive across `WouldBlock`/`TimedOut` reads, so a caller
/// polling a socket with a read timeout can resume mid-line.
struct BoundedLineReader<R> {
    reader: R,
    max: usize,
    buf: Vec<u8>,
    /// Set once the current line exceeded `max`; bytes are counted, not kept.
    overflowing: bool,
    discarded: usize,
}

impl<R: BufRead> BoundedLineReader<R> {
    fn new(reader: R, max: usize) -> Self {
        BoundedLineReader {
            reader,
            max,
            buf: Vec::new(),
            overflowing: false,
            discarded: 0,
        }
    }

    fn take_oversize(&mut self) -> BoundedLine {
        let total = self.discarded;
        self.overflowing = false;
        self.discarded = 0;
        self.buf.clear();
        BoundedLine::Oversize(total)
    }

    fn take_line(&mut self) -> BoundedLine {
        let mut line = std::mem::take(&mut self.buf);
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        BoundedLine::Line(String::from_utf8_lossy(&line).into_owned())
    }

    /// The next framed line, `Ok(None)` at EOF. Timeout-ish errors
    /// (`WouldBlock`, `TimedOut`) surface to the caller with all partial
    /// state intact — call again to resume.
    fn next_line(&mut self) -> io::Result<Option<BoundedLine>> {
        loop {
            let available = match self.reader.fill_buf() {
                Ok(available) => available,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF: flush whatever the unterminated final line held.
                if self.overflowing {
                    return Ok(Some(self.take_oversize()));
                }
                if self.buf.is_empty() {
                    return Ok(None);
                }
                return Ok(Some(self.take_line()));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if self.overflowing {
                        self.discarded += pos;
                        self.reader.consume(pos + 1);
                        return Ok(Some(self.take_oversize()));
                    }
                    self.buf.extend_from_slice(&available[..pos]);
                    self.reader.consume(pos + 1);
                    if self.buf.len() > self.max {
                        self.discarded = self.buf.len();
                        return Ok(Some(self.take_oversize()));
                    }
                    return Ok(Some(self.take_line()));
                }
                None => {
                    let n = available.len();
                    if self.overflowing {
                        self.discarded += n;
                    } else {
                        self.buf.extend_from_slice(available);
                        if self.buf.len() > self.max {
                            self.overflowing = true;
                            self.discarded = self.buf.len();
                            self.buf.clear();
                        }
                    }
                    self.reader.consume(n);
                }
            }
        }
    }
}

/// Serves newline-delimited requests from `input` to `output` until EOF —
/// the stdin/stdout transport (`mcsm-serve --stdio`). Blank lines are
/// ignored; every non-blank request line produces exactly one response line,
/// including lines past the engine's length bound (answered `-32600`).
///
/// # Errors
///
/// Propagates I/O errors from the reader or writer.
pub fn serve_stdio(engine: &Engine, input: impl BufRead, mut output: impl Write) -> io::Result<()> {
    let mut lines = BoundedLineReader::new(input, engine.max_line_bytes());
    while let Some(framed) = lines.next_line()? {
        let response = match framed {
            BoundedLine::Oversize(got) => {
                oversize_response(got, engine.max_line_bytes()).to_string_compact()
            }
            BoundedLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                engine.handle_line(&line)
            }
        };
        writeln!(output, "{response}")?;
        output.flush()?;
    }
    Ok(())
}

/// A running TCP server; dropping (or [`TcpServer::stop`]) shuts it down.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// The bound address (useful with a `:0` request to learn the port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop to exit and waits for it. In-flight requests
    /// drain gracefully: connection loops poll with a short read timeout, so
    /// each finishes its current request, notices the flag, and exits; the
    /// worker pool joins before the acceptor does.
    pub fn stop(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            self.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept() call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// How often an idle connection re-checks the shutdown flag.
const CONNECTION_POLL: Duration = Duration::from_millis(200);

fn serve_connection(engine: &Engine, stream: TcpStream, shutdown: &AtomicBool) -> io::Result<()> {
    stream.set_read_timeout(Some(CONNECTION_POLL))?;
    let mut writer = stream.try_clone()?;
    let mut lines = BoundedLineReader::new(BufReader::new(stream), engine.max_line_bytes());
    loop {
        let framed = match lines.next_line() {
            Ok(framed) => framed,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle poll tick: exit if shutting down, else keep waiting
                // (any partial line is preserved by the reader).
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        let Some(framed) = framed else {
            return Ok(());
        };
        let response = match framed {
            BoundedLine::Oversize(got) => {
                oversize_response(got, engine.max_line_bytes()).to_string_compact()
            }
            BoundedLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                engine.handle_line(&line)
            }
        };
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
}

/// Binds `addr` and serves connections on a [`ThreadPool`] of `threads`
/// workers (`0` = auto). Each connection occupies one worker for its
/// lifetime, so `threads` bounds the number of concurrently-connected
/// clients; requests still serialize through the engine's session lock
/// regardless of worker count.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_tcp(engine: Arc<Engine>, addr: &str, threads: usize) -> io::Result<TcpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shutdown_flag = Arc::clone(&shutdown);
    let acceptor = std::thread::spawn(move || {
        let pool = ThreadPool::new(mcsm_num::par::resolve_threads(threads));
        for stream in listener.incoming() {
            if shutdown_flag.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown_flag);
            pool.execute(move || {
                let _ = serve_connection(&engine, stream, &shutdown);
            });
        }
        pool.join();
    });
    Ok(TcpServer {
        addr: local,
        shutdown,
        acceptor: Some(acceptor),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use mcsm_sta::models::ModelLibrary;

    fn engine() -> Engine {
        Engine::new(Session::new(
            ModelLibrary::new(1.2),
            SessionConfig::default(),
        ))
    }

    #[test]
    fn stdio_transport_answers_line_per_line() {
        let engine = engine();
        let input =
            b"{\"id\":1,\"method\":\"stats\",\"params\":{}}\n\n{\"id\":2,\"method\":\"stats\"}\n";
        let mut output = Vec::new();
        serve_stdio(&engine, &input[..], &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "blank line ignored: {text}");
        for (i, line) in lines.iter().enumerate() {
            let doc = mcsm_num::json::JsonValue::parse(line).unwrap();
            assert_eq!(doc.get("id").unwrap().as_f64(), Some((i + 1) as f64));
        }
    }

    #[test]
    fn oversized_lines_answer_without_buffering() {
        let engine = Engine::with_options(
            Session::new(ModelLibrary::new(1.2), SessionConfig::default()),
            TransportOptions::new().with_max_line_bytes(256),
        );
        let huge = "x".repeat(10_000);
        let input = format!("{huge}\n{{\"id\":2,\"method\":\"stats\"}}\n");
        let mut output = Vec::new();
        serve_stdio(&engine, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            2,
            "oversize answered, next line served: {text}"
        );
        let doc = mcsm_num::json::JsonValue::parse(lines[0]).unwrap();
        assert_eq!(
            doc.get("error").unwrap().get("code").unwrap().as_f64(),
            Some(-32600.0)
        );
        assert!(lines[0].contains("10000"), "length named: {}", lines[0]);
        assert!(lines[0].contains("256"), "limit named: {}", lines[0]);
        let doc = mcsm_num::json::JsonValue::parse(lines[1]).unwrap();
        assert_eq!(doc.get("id").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn handler_panic_recovers_and_keeps_serving() {
        use mcsm_num::fault::{site, FaultPlan};
        // Rate 1.0 on the request-panic site: every request's handler
        // panics under the lock; the engine must recover each time.
        let plan = Arc::new(FaultPlan::new(7, 1.0).with_sites([site::SERVER_REQUEST_PANIC]));
        let session = Session::new(ModelLibrary::new(1.2), SessionConfig::default())
            .with_fault(Some(Arc::clone(&plan)));
        let engine = Engine::new(session);
        for id in 0..3 {
            let response = engine.handle_line(&format!(
                "{{\"id\":{id},\"method\":\"stats\",\"params\":{{}}}}"
            ));
            let doc = mcsm_num::json::JsonValue::parse(&response).unwrap();
            let error = doc.get("error").unwrap();
            assert_eq!(error.get("code").unwrap().as_f64(), Some(-32000.0));
            assert_eq!(error.get("recovered").unwrap().as_bool(), Some(true));
            assert_eq!(doc.get("id").unwrap().as_f64(), Some(id as f64));
        }
        assert_eq!(plan.fired(site::SERVER_REQUEST_PANIC), 3);
    }

    #[test]
    fn tcp_transport_round_trips() {
        let engine = Arc::new(engine());
        let mut server = serve_tcp(engine, "127.0.0.1:0", 2).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let request = r#"{"id": 41, "method": "stats", "params": {}}"#;
        writeln!(writer, "{request}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let doc = mcsm_num::json::JsonValue::parse(&line).unwrap();
        assert_eq!(doc.get("id").unwrap().as_f64(), Some(41.0));
        assert!(doc.get("result").unwrap().get("seq").is_some());
        drop(writer);
        drop(reader);
        server.stop();
    }

    #[test]
    fn tcp_stop_drains_idle_connections() {
        let engine = Arc::new(engine());
        let mut server = serve_tcp(engine, "127.0.0.1:0", 2).unwrap();
        // An idle connected client must not wedge shutdown: the connection
        // loop polls with a read timeout and notices the flag.
        let stream = TcpStream::connect(server.addr()).unwrap();
        let started = std::time::Instant::now();
        server.stop();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "stop() hung on an idle connection"
        );
        drop(stream);
    }
}
