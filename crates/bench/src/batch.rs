//! The `batch` experiment: parallel whole-library characterization and
//! level-parallel STA, timed sequential-vs-parallel.
//!
//! This is the throughput side of the paper's pitch — current-source models
//! only pay off if characterizing a library and timing a netlist are cheap
//! enough to run at scale. The experiment:
//!
//! 1. characterizes every model family of a cell list twice — once on one
//!    thread, once on `threads` — and checks the stores are **bit-identical**;
//! 2. builds a layered synthetic netlist, propagates waveforms through it
//!    sequentially and level-parallel, and checks every net's waveform is
//!    bit-identical;
//! 3. emits a machine-readable [`BatchReport`] (written by the `batch` binary
//!    to `BENCH_batch.json`) so CI can track the speedup trajectory.
//!
//! Honors `MCSM_BENCH_FAST=1` (see [`crate::report::fast_mode`]) by shrinking
//! grids and netlist sizes so smoke runs finish in seconds.

use crate::report::fast_or;
use mcsm_cells::cell::{CellKind, CellTemplate};
use mcsm_cells::tech::Technology;
use mcsm_core::characterize::{characterization_tasks, characterize_batch};
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform};
use mcsm_net::{Netlist, NetlistBuilder};
use mcsm_num::json::JsonValue;
use mcsm_num::par;
use mcsm_sta::arrival::{propagate, TimingOptions, TimingResult};
use mcsm_sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm_sta::graph::GateGraph;
use mcsm_sta::models::ModelLibrary;
use mcsm_sta::StaError;
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of one batch-experiment run.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker threads for the parallel passes (`0` = auto).
    pub threads: usize,
    /// Cell kinds to characterize.
    pub kinds: Vec<CellKind>,
    /// Characterization grids.
    pub config: CharacterizationConfig,
    /// Width (gates per layer) of the synthetic STA netlist.
    pub sta_width: usize,
    /// Number of layers of the synthetic STA netlist.
    pub sta_layers: usize,
    /// Time step of the per-gate waveform simulations (seconds).
    pub sta_dt: f64,
    /// Timed repetitions per measured pass; the best (minimum) wall clock is
    /// reported, damping scheduler noise on short runs.
    pub repeats: usize,
}

/// The fast-mode characterization grid: between `coarse` and `standard`.
/// Deliberately not as tiny as `coarse` — the CI perf gate compares wall
/// clocks, and sub-200 ms passes would be at the mercy of scheduler noise on
/// shared runners; at roughly a second per pass the speedup measurement is
/// stable while the smoke job still finishes quickly.
fn smoke_config() -> CharacterizationConfig {
    CharacterizationConfig {
        current_grid_points: 7,
        capacitance_grid_points: 4,
        voltage_margin: 0.1,
        probe_delta_v: 0.1,
        probe_ramp_times: vec![20e-12, 40e-12],
        probe_dt: 1.5e-12,
        input_cap_grid_points: 5,
    }
}

impl BatchOptions {
    /// The default experiment for a thread count: the full library with
    /// standard grids, shrunk to mid-size smoke grids and a small netlist
    /// when [`crate::report::fast_mode`] is active.
    pub fn for_threads(threads: usize) -> Self {
        BatchOptions {
            threads,
            kinds: vec![
                CellKind::Inverter,
                CellKind::Nand2,
                CellKind::Nor2,
                CellKind::Nand3,
                CellKind::Nor3,
                CellKind::Aoi21,
            ],
            config: fast_or(smoke_config(), CharacterizationConfig::standard()),
            sta_width: fast_or(6, 12),
            sta_layers: fast_or(3, 6),
            sta_dt: fast_or(4e-12, 1e-12),
            repeats: fast_or(3, 1),
        }
    }
}

/// Measured results of one batch-experiment run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Worker threads the parallel passes ran with (resolved, so never 0).
    pub threads: usize,
    /// Characterized cell names.
    pub cells: Vec<String>,
    /// Number of per-(cell, family) characterization tasks.
    pub characterization_tasks: usize,
    /// Wall-clock seconds of the sequential characterization pass.
    pub characterize_sequential_seconds: f64,
    /// Wall-clock seconds of the parallel characterization pass.
    pub characterize_parallel_seconds: f64,
    /// Whether the parallel stores equal the sequential ones bit-for-bit.
    pub characterization_identical: bool,
    /// Gates in the synthetic STA netlist.
    pub sta_gates: usize,
    /// Topological levels of the synthetic STA netlist.
    pub sta_levels: usize,
    /// Wall-clock seconds of the sequential propagation.
    pub sta_sequential_seconds: f64,
    /// Wall-clock seconds of the level-parallel propagation.
    pub sta_parallel_seconds: f64,
    /// Whether the parallel waveforms equal the sequential ones bit-for-bit.
    pub sta_identical: bool,
    /// Delay-cache hits of the parallel propagation.
    pub sta_cache_hits: usize,
    /// Delay-cache misses of the parallel propagation.
    pub sta_cache_misses: usize,
}

impl BatchReport {
    /// Sequential-over-parallel wall-clock ratio of the characterization pass.
    pub fn characterize_speedup(&self) -> f64 {
        self.characterize_sequential_seconds / self.characterize_parallel_seconds.max(1e-12)
    }

    /// Sequential-over-parallel wall-clock ratio of the STA pass.
    pub fn sta_speedup(&self) -> f64 {
        self.sta_sequential_seconds / self.sta_parallel_seconds.max(1e-12)
    }

    /// The machine-readable report written to `BENCH_batch.json`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("experiment".into(), JsonValue::String("batch".into())),
            (
                "fast_mode".into(),
                JsonValue::Bool(crate::report::fast_mode()),
            ),
            ("threads".into(), JsonValue::Number(self.threads as f64)),
            (
                "characterization".into(),
                JsonValue::Object(vec![
                    (
                        "cells".into(),
                        JsonValue::Array(
                            self.cells
                                .iter()
                                .map(|c| JsonValue::String(c.clone()))
                                .collect(),
                        ),
                    ),
                    (
                        "tasks".into(),
                        JsonValue::Number(self.characterization_tasks as f64),
                    ),
                    (
                        "sequential_seconds".into(),
                        JsonValue::Number(self.characterize_sequential_seconds),
                    ),
                    (
                        "parallel_seconds".into(),
                        JsonValue::Number(self.characterize_parallel_seconds),
                    ),
                    (
                        "speedup".into(),
                        JsonValue::Number(self.characterize_speedup()),
                    ),
                    (
                        "bit_identical".into(),
                        JsonValue::Bool(self.characterization_identical),
                    ),
                ]),
            ),
            (
                "sta".into(),
                JsonValue::Object(vec![
                    ("gates".into(), JsonValue::Number(self.sta_gates as f64)),
                    ("levels".into(), JsonValue::Number(self.sta_levels as f64)),
                    (
                        "sequential_seconds".into(),
                        JsonValue::Number(self.sta_sequential_seconds),
                    ),
                    (
                        "parallel_seconds".into(),
                        JsonValue::Number(self.sta_parallel_seconds),
                    ),
                    ("speedup".into(), JsonValue::Number(self.sta_speedup())),
                    ("bit_identical".into(), JsonValue::Bool(self.sta_identical)),
                    (
                        "cache_hits".into(),
                        JsonValue::Number(self.sta_cache_hits as f64),
                    ),
                    (
                        "cache_misses".into(),
                        JsonValue::Number(self.sta_cache_misses as f64),
                    ),
                ]),
            ),
        ])
    }
}

/// Builds the synthetic layered netlist used by the STA half of the
/// experiment: `width` NOR2 gates over paired primary inputs, then
/// `layers - 1` further layers alternating inverters and neighbor-combining
/// NAND2s. Every layer is `width` gates wide, so level-parallel propagation
/// has real fan-out to chew on.
///
/// The circuit is described once through the [`mcsm_net::Netlist`] IR and
/// lowered to the STA form — the same value could lower to SPICE for a
/// golden-reference run.
pub fn layered_graph(width: usize, layers: usize) -> Result<GateGraph, StaError> {
    layered_netlist(width, layers)
        .map_err(|e| StaError::InvalidGraph(e.to_string()))?
        .to_gate_graph()
}

/// The batch experiment's layered circuit as a backend-neutral
/// [`mcsm_net::Netlist`] (see [`layered_graph`] for the topology).
///
/// # Errors
///
/// Returns a [`mcsm_net::NetlistError`] if the requested shape is degenerate
/// (zero width or layers).
pub fn layered_netlist(width: usize, layers: usize) -> Result<Netlist, mcsm_net::NetlistError> {
    let mut builder = NetlistBuilder::new(&format!("layered_{width}x{layers}"));
    let mut current: Vec<String> = Vec::with_capacity(width);
    for i in 0..width {
        let a = format!("in{i}a");
        let b = format!("in{i}b");
        builder = builder.primary_input(&a).primary_input(&b);
        let out = format!("l0_{i}");
        builder = builder.gate(&format!("u0_{i}"), CellKind::Nor2, &[&a, &b], &out);
        current.push(out);
    }
    for layer in 1..layers {
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let out = format!("l{layer}_{i}");
            if layer % 2 == 1 {
                builder = builder.gate(
                    &format!("u{layer}_{i}"),
                    CellKind::Inverter,
                    &[&current[i]],
                    &out,
                );
            } else {
                builder = builder.gate(
                    &format!("u{layer}_{i}"),
                    CellKind::Nand2,
                    &[&current[i], &current[(i + 1) % width]],
                    &out,
                );
            }
            next.push(out);
        }
        current = next;
    }
    for net in &current {
        builder = builder.primary_output(net);
    }
    builder.build()
}

/// Staggered falling ramps on every primary input (a multiple-input-switching
/// event per first-layer gate, with per-pin skew so the cones differ).
pub fn batch_input_drives(graph: &GateGraph, vdd: f64) -> HashMap<mcsm_sta::NetId, DriveWaveform> {
    graph
        .primary_inputs()
        .iter()
        .enumerate()
        .map(|(i, &pi)| {
            let skew = 20e-12 * (i % 5) as f64;
            (pi, DriveWaveform::falling_ramp(vdd, 1e-9 + skew, 80e-12))
        })
        .collect()
}

fn waveforms_identical(a: &TimingResult, b: &TimingResult) -> bool {
    let mut nets: Vec<_> = a.nets().collect();
    nets.sort();
    nets.into_iter()
        .all(|net| match (a.waveform(net), b.waveform(net)) {
            (Ok(wa), Ok(wb)) => wa == wb,
            _ => false,
        })
}

/// Runs the batch experiment.
///
/// # Errors
///
/// Propagates characterization and propagation failures.
pub fn run_batch(options: &BatchOptions) -> Result<BatchReport, StaError> {
    let threads = par::resolve_threads(options.threads);
    let technology = Technology::cmos_130nm();
    let templates: Vec<CellTemplate> = options
        .kinds
        .iter()
        .map(|&kind| CellTemplate::new(kind, technology.clone()))
        .collect();
    let tasks: usize = options
        .kinds
        .iter()
        .map(|&kind| characterization_tasks(kind).len())
        .sum();

    // Characterization: sequential reference, then the parallel batch. Each
    // pass is timed `repeats` times (best-of) so short fast-mode runs are not
    // at the mercy of scheduler noise.
    let timed = |threads: usize| -> Result<(_, f64), StaError> {
        let mut best = f64::INFINITY;
        let mut stores = None;
        for _ in 0..options.repeats.max(1) {
            let start = Instant::now();
            let result = characterize_batch(&templates, &options.config, threads)?;
            best = best.min(start.elapsed().as_secs_f64());
            stores = Some(result);
        }
        Ok((stores.expect("at least one repeat"), best))
    };
    let (sequential_stores, characterize_sequential_seconds) = timed(1)?;
    let (parallel_stores, characterize_parallel_seconds) = timed(threads)?;
    let characterization_identical = sequential_stores == parallel_stores;

    // STA: the characterized library drives a layered netlist.
    let mut library = ModelLibrary::new(technology.vdd);
    for (&kind, store) in options.kinds.iter().zip(parallel_stores) {
        library.insert(kind, store);
    }
    let graph = layered_graph(options.sta_width, options.sta_layers)?;
    let drives = batch_input_drives(&graph, technology.vdd);
    let window = 2e-9 + 0.4e-9 * options.sta_layers as f64;
    let calculator = DelayCalculator::new(
        DelayBackend::CompleteMcsm,
        CsmSimOptions::new(window, options.sta_dt),
        technology.vdd,
    );
    let sequential_options = TimingOptions::new(calculator, 2e-15);
    let parallel_options = sequential_options.clone().with_threads(threads);

    let timed_sta = |timing_options: &TimingOptions| -> Result<(_, f64), StaError> {
        let mut best = f64::INFINITY;
        let mut timing = None;
        for _ in 0..options.repeats.max(1) {
            let start = Instant::now();
            let result = propagate(&graph, &library, &drives, timing_options)?;
            best = best.min(start.elapsed().as_secs_f64());
            timing = Some(result);
        }
        Ok((timing.expect("at least one repeat"), best))
    };
    let (sequential_timing, sta_sequential_seconds) = timed_sta(&sequential_options)?;
    let (parallel_timing, sta_parallel_seconds) = timed_sta(&parallel_options)?;

    Ok(BatchReport {
        threads,
        cells: options.kinds.iter().map(|k| k.name().to_string()).collect(),
        characterization_tasks: tasks,
        characterize_sequential_seconds,
        characterize_parallel_seconds,
        characterization_identical,
        sta_gates: graph.gates().len(),
        sta_levels: graph.topological_levels()?.len(),
        sta_sequential_seconds,
        sta_parallel_seconds,
        sta_identical: waveforms_identical(&sequential_timing, &parallel_timing),
        sta_cache_hits: parallel_timing.cache_hits(),
        sta_cache_misses: parallel_timing.cache_misses(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_graph_has_the_advertised_shape() {
        // The graph is built through the netlist IR; both views agree.
        let netlist = layered_netlist(4, 3).unwrap();
        assert_eq!(netlist.gate_count(), 12);
        assert_eq!(netlist.primary_inputs().len(), 8);
        let graph = layered_graph(4, 3).unwrap();
        assert_eq!(graph.gates().len(), 12);
        assert_eq!(graph.primary_inputs().len(), 8);
        assert_eq!(graph.primary_outputs().len(), 4);
        let levels = graph.topological_levels().unwrap();
        assert_eq!(levels.len(), 3);
        assert!(levels.iter().all(|level| level.len() == 4));
        let drives = batch_input_drives(&graph, 1.2);
        assert_eq!(drives.len(), 8);
    }

    #[test]
    fn batch_report_serializes_every_field() {
        let report = BatchReport {
            threads: 4,
            cells: vec!["INV".into(), "NOR2".into()],
            characterization_tasks: 5,
            characterize_sequential_seconds: 2.0,
            characterize_parallel_seconds: 0.5,
            characterization_identical: true,
            sta_gates: 12,
            sta_levels: 3,
            sta_sequential_seconds: 1.0,
            sta_parallel_seconds: 0.5,
            sta_identical: true,
            sta_cache_hits: 7,
            sta_cache_misses: 3,
        };
        assert!((report.characterize_speedup() - 4.0).abs() < 1e-9);
        assert!((report.sta_speedup() - 2.0).abs() < 1e-9);
        let json = report.to_json();
        let chr = json.require("characterization").unwrap();
        assert_eq!(chr.require("speedup").unwrap().as_f64(), Some(4.0));
        assert_eq!(chr.require("bit_identical").unwrap().as_bool(), Some(true));
        let sta = json.require("sta").unwrap();
        assert_eq!(sta.require("cache_hits").unwrap().as_f64(), Some(7.0));
        // The report round-trips through the JSON writer/parser.
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn tiny_batch_run_is_identical_and_reports_sane_numbers() {
        let options = BatchOptions {
            threads: 2,
            kinds: vec![CellKind::Inverter, CellKind::Nor2],
            config: CharacterizationConfig::coarse(),
            sta_width: 2,
            sta_layers: 2,
            sta_dt: 8e-12,
            repeats: 1,
        };
        let report = run_batch(&options).unwrap();
        assert!(report.characterization_identical);
        assert!(report.sta_identical);
        assert_eq!(report.characterization_tasks, 5);
        assert_eq!(report.sta_gates, 4);
        assert!(report.characterize_sequential_seconds > 0.0);
        assert!(report.sta_parallel_seconds > 0.0);
    }
}
