//! Small text-report helpers shared by the figure binaries.
//!
//! The binaries print aligned tables to stdout so their output can be pasted
//! into EXPERIMENTS.md or redirected to CSV-ish files; nothing here is specific
//! to one figure.

use mcsm_spice::waveform::Waveform;

/// Formats a time in picoseconds with two decimals.
pub fn ps(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e12)
}

/// Formats a value in percent with two decimals.
pub fn pct(fraction_or_percent: f64) -> String {
    format!("{:.2}", fraction_or_percent)
}

/// Prints a table header followed by an underline of the same width.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    let row = columns.join(" | ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one table row from pre-formatted cells.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}

/// Prints a waveform as `time_ns, voltage` CSV lines, downsampled to at most
/// `max_points` samples, prefixed by a `## name` marker so several waveforms can
/// share one output stream.
pub fn print_waveform_csv(name: &str, waveform: &Waveform, max_points: usize) {
    println!("## waveform: {name}");
    let n = waveform.len();
    let stride = (n / max_points.max(1)).max(1);
    for i in (0..n).step_by(stride) {
        let t = waveform.times()[i];
        let v = waveform.values()[i];
        println!("{:.6}, {:.6}", t * 1e9, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ps(1e-12), "1.00");
        assert_eq!(ps(123.456e-12), "123.46");
        assert_eq!(pct(3.15159), "3.15");
    }

    #[test]
    fn waveform_csv_downsamples() {
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 1e-12).collect();
        let values = vec![0.5; 100];
        let w = Waveform::new(times, values).unwrap();
        // Just exercise the printing path; `print_waveform_csv` writes to stdout.
        print_waveform_csv("test", &w, 10);
        print_header("demo", &["a", "b"]);
        print_row(&["1".to_string(), "2".to_string()]);
    }
}
