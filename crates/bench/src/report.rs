//! Small text-report helpers shared by the figure binaries.
//!
//! The binaries print aligned tables to stdout so their output can be pasted
//! into EXPERIMENTS.md or redirected to CSV-ish files; nothing here is specific
//! to one figure.

use mcsm_num::json::JsonValue;
use mcsm_spice::waveform::Waveform;
use std::path::Path;

/// Whether benchmark/experiment binaries should run in fast smoke mode.
///
/// Controlled by the `MCSM_BENCH_FAST` environment variable: any value other
/// than unset, empty or `0` enables it. CI smoke jobs set it so the fig*
/// binaries and the `batch` experiment finish in seconds (tiny grids, coarse
/// time steps, and for fig05/fig12 trimmed sweeps) instead of the full sweep
/// sizes; the emitted files keep the same *format* either way, but fast runs
/// contain fewer rows/points — don't diff them against full-mode output.
pub fn fast_mode() -> bool {
    mcsm_num::par::env_flag("MCSM_BENCH_FAST")
}

/// Picks `fast` or `full` depending on [`fast_mode`] — sugar for the fig*
/// binaries' "tiny grid in CI, full grid locally" switches.
pub fn fast_or<T>(fast: T, full: T) -> T {
    if fast_mode() {
        fast
    } else {
        full
    }
}

/// Writes a machine-readable JSON report (pretty-printed, trailing newline).
///
/// # Errors
///
/// Returns the underlying I/O error message.
pub fn write_json_report(path: &Path, value: &JsonValue) -> Result<(), String> {
    let mut text = value.to_string_pretty();
    text.push('\n');
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Formats a time in picoseconds with two decimals.
pub fn ps(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e12)
}

/// Formats a value in percent with two decimals.
pub fn pct(fraction_or_percent: f64) -> String {
    format!("{:.2}", fraction_or_percent)
}

/// Prints a table header followed by an underline of the same width.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    let row = columns.join(" | ");
    println!("{row}");
    println!("{}", "-".repeat(row.len()));
}

/// Prints one table row from pre-formatted cells.
pub fn print_row(cells: &[String]) {
    println!("{}", cells.join(" | "));
}

/// Prints a waveform as `time_ns, voltage` CSV lines, downsampled to at most
/// `max_points` samples, prefixed by a `## name` marker so several waveforms can
/// share one output stream.
pub fn print_waveform_csv(name: &str, waveform: &Waveform, max_points: usize) {
    println!("## waveform: {name}");
    let n = waveform.len();
    let stride = (n / max_points.max(1)).max(1);
    for i in (0..n).step_by(stride) {
        let t = waveform.times()[i];
        let v = waveform.values()[i];
        println!("{:.6}, {:.6}", t * 1e9, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ps(1e-12), "1.00");
        assert_eq!(ps(123.456e-12), "123.46");
        assert_eq!(pct(3.15159), "3.15");
    }

    #[test]
    fn waveform_csv_downsamples() {
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 1e-12).collect();
        let values = vec![0.5; 100];
        let w = Waveform::new(times, values).unwrap();
        // Just exercise the printing path; `print_waveform_csv` writes to stdout.
        print_waveform_csv("test", &w, 10);
        print_header("demo", &["a", "b"]);
        print_row(&["1".to_string(), "2".to_string()]);
    }
}
