//! The `seqsim` experiment: clocked sequential simulation throughput
//! (cycles/sec and register-captures/sec) over ISCAS-89 s27 and generated
//! register pipelines.
//!
//! Each circuit runs `mcsm_seq::simulate_sequential` for a fixed number of
//! clock cycles with seeded random input vectors, once sequentially and once
//! level-parallel, and the two runs are checked **bit-identical** (captured
//! Booleans, primary-output samples and the analog capture voltages down to
//! the last mantissa bit). Pipelines put every comb gate of every stage in
//! one topological level — the widest possible epoch — so the
//! level-parallel speedup of the epoch scheduler is what the CI perf gate
//! gets to measure. Honors `MCSM_BENCH_FAST=1` (see
//! [`crate::report::fast_mode`]).

use crate::report::fast_or;
use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::characterize::RegisterCharacterizationConfig;
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::sim::CsmSimOptions;
use mcsm_net::{pipelined_dag, s27, Netlist};
use mcsm_netsim::NetsimOptions;
use mcsm_num::json::JsonValue;
use mcsm_num::par;
use mcsm_num::testrand::TestRng;
use mcsm_seq::{simulate_sequential, CycleInputs, SeqError, SeqNetlist, SeqOptions, SeqResult};
use mcsm_sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm_sta::models::ModelLibrary;
use mcsm_sta::slack::ClockSpec;
use std::time::Instant;

/// Configuration of one seqsim-experiment run.
#[derive(Debug, Clone)]
pub struct SeqsimSweepOptions {
    /// Worker threads for the parallel passes (`0` = auto).
    pub threads: usize,
    /// Clock cycles to simulate per circuit.
    pub cycles: usize,
    /// Pipeline sweep points as `(stages, width)` pairs.
    pub pipelines: Vec<(usize, usize)>,
    /// Characterization grids for the combinational models.
    pub config: CharacterizationConfig,
    /// Characterization settings for the register models.
    pub registers: RegisterCharacterizationConfig,
    /// Time step of the per-gate waveform simulations (seconds).
    pub dt: f64,
    /// Timed repetitions per pass; the best (minimum) wall clock is reported.
    pub repeats: usize,
}

impl SeqsimSweepOptions {
    /// The default sweep for a thread count; `MCSM_BENCH_FAST=1` shrinks the
    /// pipelines and coarsens grids/steps so the smoke run finishes fast.
    pub fn for_threads(threads: usize) -> Self {
        SeqsimSweepOptions {
            threads,
            cycles: fast_or(4, 8),
            pipelines: fast_or(vec![(3, 8), (4, 12)], vec![(3, 8), (4, 16), (6, 24)]),
            config: fast_or(
                CharacterizationConfig::coarse(),
                CharacterizationConfig::standard(),
            ),
            registers: fast_or(
                RegisterCharacterizationConfig::coarse(),
                RegisterCharacterizationConfig::standard(),
            ),
            dt: fast_or(4e-12, 2e-12),
            repeats: fast_or(2, 1),
        }
    }
}

/// One timed case of the sweep.
#[derive(Debug, Clone)]
pub struct SeqsimCase {
    /// Name of the sequential circuit.
    pub circuit: String,
    /// Total gate count (comb gates plus registers).
    pub gates: usize,
    /// Register count.
    pub registers: usize,
    /// Gates in the partitioned comb cone.
    pub cone_gates: usize,
    /// Clock cycles simulated.
    pub cycles: usize,
    /// Comb-cone gate solves the epoch scheduler actually ran.
    pub gates_simulated: usize,
    /// Comb-cone gates resolved to DC without an engine run.
    pub gates_skipped: usize,
    /// Best wall-clock seconds of one sequential run.
    pub seq_seconds: f64,
    /// Best wall-clock seconds of one level-parallel run.
    pub par_seconds: f64,
    /// Whether the parallel run equals the sequential one bit-for-bit.
    pub bit_identical: bool,
}

impl SeqsimCase {
    /// Clock cycles per second of the level-parallel run.
    pub fn cycles_per_second(&self) -> f64 {
        self.cycles as f64 / self.par_seconds.max(1e-12)
    }

    /// Register captures per second of the level-parallel run.
    pub fn registers_per_second(&self) -> f64 {
        (self.registers * self.cycles) as f64 / self.par_seconds.max(1e-12)
    }

    /// Sequential-over-parallel speedup of this case.
    pub fn speedup(&self) -> f64 {
        self.seq_seconds / self.par_seconds.max(1e-12)
    }
}

/// The full experiment result, written to `BENCH_seqsim.json`.
#[derive(Debug, Clone)]
pub struct SeqsimReport {
    /// Worker threads the parallel passes ran with (resolved, so never 0).
    pub threads: usize,
    /// All timed cases, s27 first, then pipelines in sweep order.
    pub cases: Vec<SeqsimCase>,
}

impl SeqsimReport {
    /// Whether every sequential-vs-parallel check passed.
    pub fn all_identical(&self) -> bool {
        self.cases.iter().all(|case| case.bit_identical)
    }

    /// Aggregate sequential-over-parallel speedup across the pipeline cases.
    /// s27's cone is deep and narrow (a handful of gates per level), so level
    /// parallelism cannot help it; the wide pipelines are the gated metric.
    pub fn parallel_speedup(&self) -> f64 {
        let (seq, par) = self
            .cases
            .iter()
            .filter(|case| case.circuit.starts_with("pipe_"))
            .fold((0.0, 0.0), |(s, p), case| {
                (s + case.seq_seconds, p + case.par_seconds)
            });
        seq / par.max(1e-12)
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("experiment".into(), JsonValue::String("seqsim".into())),
            (
                "fast_mode".into(),
                JsonValue::Bool(crate::report::fast_mode()),
            ),
            ("threads".into(), JsonValue::Number(self.threads as f64)),
            (
                "parallel_speedup".into(),
                JsonValue::Number(self.parallel_speedup()),
            ),
            (
                "cases".into(),
                JsonValue::Array(
                    self.cases
                        .iter()
                        .map(|case| {
                            JsonValue::Object(vec![
                                ("circuit".into(), JsonValue::String(case.circuit.clone())),
                                ("gates".into(), JsonValue::Number(case.gates as f64)),
                                ("registers".into(), JsonValue::Number(case.registers as f64)),
                                (
                                    "cone_gates".into(),
                                    JsonValue::Number(case.cone_gates as f64),
                                ),
                                ("cycles".into(), JsonValue::Number(case.cycles as f64)),
                                (
                                    "gates_simulated".into(),
                                    JsonValue::Number(case.gates_simulated as f64),
                                ),
                                (
                                    "gates_skipped".into(),
                                    JsonValue::Number(case.gates_skipped as f64),
                                ),
                                ("seq_seconds".into(), JsonValue::Number(case.seq_seconds)),
                                ("par_seconds".into(), JsonValue::Number(case.par_seconds)),
                                (
                                    "cycles_per_second".into(),
                                    JsonValue::Number(case.cycles_per_second()),
                                ),
                                (
                                    "registers_per_second".into(),
                                    JsonValue::Number(case.registers_per_second()),
                                ),
                                ("speedup".into(), JsonValue::Number(case.speedup())),
                                ("bit_identical".into(), JsonValue::Bool(case.bit_identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Per-cycle input vectors over every non-clock primary input: each input
/// gets a seeded random phase and then toggles every cycle, so every epoch
/// is full-activity (the throughput the experiment is after) while staying
/// reproducible.
pub fn seqsim_cycle_inputs(
    netlist: &Netlist,
    clock: &str,
    cycles: usize,
    seed: u64,
) -> Vec<CycleInputs> {
    let clock = netlist
        .find_net(clock)
        .expect("generated circuits carry their clock net");
    let mut rng = TestRng::new(seed);
    let inputs: Vec<_> = netlist
        .primary_inputs()
        .iter()
        .filter(|&&pi| pi != clock)
        .map(|&pi| (pi, rng.flip()))
        .collect();
    (0..cycles)
        .map(|k| {
            CycleInputs::from_pairs(
                inputs
                    .iter()
                    .map(|&(pi, phase)| (pi, phase ^ (k % 2 == 1)))
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Whether two sequential runs are bit-identical: captured Booleans, primary
/// outputs, and the sampled capture voltages down to the last mantissa bit.
pub fn seq_results_identical(a: &SeqResult, b: &SeqResult) -> bool {
    a.po_values == b.po_values
        && a.states.len() == b.states.len()
        && a.states.iter().zip(&b.states).all(|(sa, sb)| {
            sa.len() == sb.len()
                && sa.iter().zip(sb).all(|(ra, rb)| {
                    ra.value == rb.value && ra.voltage.to_bits() == rb.voltage.to_bits()
                })
        })
}

/// Runs the experiment: characterize once (comb cells plus the DFF register),
/// then time every circuit sequentially and level-parallel.
///
/// # Errors
///
/// Propagates characterization and simulation failures.
pub fn run_seqsim_sweep(options: &SeqsimSweepOptions) -> Result<SeqsimReport, SeqError> {
    let threads = par::resolve_threads(options.threads);
    let technology = Technology::cmos_130nm();
    let mut library = ModelLibrary::characterize_parallel(
        &technology,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &options.config,
        threads,
    )
    .map_err(SeqError::Sta)?;
    library
        .characterize_registers(&technology, &[CellKind::Dff], &options.registers)
        .map_err(SeqError::Sta)?;

    let mut circuits: Vec<(Netlist, &str)> = vec![(s27(), "CK")];
    for (i, &(stages, width)) in options.pipelines.iter().enumerate() {
        circuits.push((pipelined_dag(stages, width, 7 + i as u64), "clk"));
    }

    let mut cases = Vec::new();
    for (netlist, clock_net) in &circuits {
        cases.push(time_case(netlist, clock_net, &library, threads, options)?);
    }
    Ok(SeqsimReport { threads, cases })
}

fn time_case(
    netlist: &Netlist,
    clock_net: &str,
    library: &ModelLibrary,
    threads: usize,
    options: &SeqsimSweepOptions,
) -> Result<SeqsimCase, SeqError> {
    let vdd = library.vdd();
    let clock = ClockSpec::new(clock_net, 2e-9);
    let cycles = seqsim_cycle_inputs(netlist, clock_net, options.cycles, 41);
    let seq = SeqNetlist::partition(netlist)?;

    let timed = |threads: usize| -> Result<(SeqResult, f64), SeqError> {
        let calculator = DelayCalculator::new(
            DelayBackend::CompleteMcsm,
            CsmSimOptions::new(4e-9, options.dt),
            vdd,
        );
        let run_options =
            SeqOptions::new(NetsimOptions::new(calculator, 2e-15).with_threads(threads));
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..options.repeats.max(1) {
            let start = Instant::now();
            let r = simulate_sequential(netlist, library, &clock, &cycles, &run_options)?;
            best = best.min(start.elapsed().as_secs_f64());
            result = Some(r);
        }
        Ok((result.expect("at least one repeat"), best))
    };

    let (sequential, seq_seconds) = timed(1)?;
    let (parallel, par_seconds) = timed(threads)?;

    Ok(SeqsimCase {
        circuit: netlist.name().to_string(),
        gates: netlist.gate_count(),
        registers: seq.registers().len(),
        cone_gates: seq.comb().map_or(0, Netlist::gate_count),
        cycles: options.cycles,
        gates_simulated: parallel.stats.gates_simulated,
        gates_skipped: parallel.stats.gates_skipped,
        seq_seconds,
        par_seconds,
        bit_identical: seq_results_identical(&sequential, &parallel),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_and_gates_on_pipelines() {
        let case = |circuit: &str, seq: f64, par: f64| SeqsimCase {
            circuit: circuit.into(),
            gates: 16,
            registers: 3,
            cone_gates: 13,
            cycles: 4,
            gates_simulated: 40,
            gates_skipped: 12,
            seq_seconds: seq,
            par_seconds: par,
            bit_identical: true,
        };
        let report = SeqsimReport {
            threads: 2,
            cases: vec![
                case("s27", 5.0, 5.0),
                case("pipe_2x4_seed7", 2.0, 1.0),
                case("pipe_3x8_seed8", 4.0, 2.0),
            ],
        };
        assert!(report.all_identical());
        // s27 is excluded from the gated speedup: only the wide pipelines
        // exercise level parallelism.
        assert!((report.parallel_speedup() - 2.0).abs() < 1e-12);
        assert!((report.cases[0].cycles_per_second() - 0.8).abs() < 1e-12);
        assert!((report.cases[0].registers_per_second() - 2.4).abs() < 1e-9);
        let json = report.to_json();
        assert_eq!(
            json.require("parallel_speedup").unwrap().as_f64(),
            Some(2.0)
        );
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn cycle_inputs_are_seeded_and_clock_free() {
        let netlist = s27();
        let a = seqsim_cycle_inputs(&netlist, "CK", 3, 9);
        let b = seqsim_cycle_inputs(&netlist, "CK", 3, 9);
        let clock = netlist.find_net("CK").unwrap();
        assert_eq!(a.len(), 3);
        for (va, vb) in a.iter().zip(&b) {
            assert_eq!(va.values, vb.values);
            assert!(!va.values.contains_key(&clock));
            assert_eq!(va.values.len(), netlist.primary_inputs().len() - 1);
        }
    }

    #[test]
    fn tiny_seqsim_sweep_runs_end_to_end() {
        let options = SeqsimSweepOptions {
            threads: 2,
            cycles: 2,
            pipelines: vec![(2, 3)],
            config: CharacterizationConfig::coarse(),
            registers: RegisterCharacterizationConfig::coarse(),
            dt: 8e-12,
            repeats: 1,
        };
        let report = run_seqsim_sweep(&options).unwrap();
        assert_eq!(report.cases.len(), 2);
        assert!(report.all_identical());
        for case in &report.cases {
            assert!(case.registers > 0 && case.cone_gates > 0);
            assert!(case.seq_seconds > 0.0 && case.par_seconds > 0.0);
            assert!(case.cycles_per_second() > 0.0);
            assert!(case.registers_per_second() >= case.cycles_per_second());
        }
    }
}
