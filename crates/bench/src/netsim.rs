//! The `netsim` experiment: event-driven netlist transient simulation
//! throughput over generated circuits, per model family.
//!
//! For each model family (SIS-only, baseline MIS, complete MCSM) the
//! experiment sweeps the three generator families — NAND chains, balanced
//! NOR trees and random leveled DAGs — at three sizes each, runs the
//! `mcsm-netsim` simulator sequentially and level-parallel on every circuit,
//! checks the two runs **bit-identical**, and reports **gates per second**
//! into `BENCH_netsim.json`.
//!
//! On the largest circuit of each (family, topology) pair a *sparse-activity*
//! case is added — only one primary input switches — showing the event-driven
//! scheduler's skip path: most gates resolve to DC without entering the
//! numerical engine, and throughput rises accordingly. Honors
//! `MCSM_BENCH_FAST=1` (see [`crate::report::fast_mode`]).

use crate::netlist_sweep::sweep_netlists;
use crate::report::fast_or;
use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform};
use mcsm_net::{NetRef, Netlist};
use mcsm_netsim::{simulate_netlist, topological_levels, NetsimError, NetsimOptions, NetsimResult};
use mcsm_num::json::JsonValue;
use mcsm_num::par;
use mcsm_sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm_sta::models::ModelLibrary;
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of one netsim-experiment run.
#[derive(Debug, Clone)]
pub struct NetsimSweepOptions {
    /// Worker threads for the parallel passes (`0` = auto).
    pub threads: usize,
    /// Gate budgets, one sweep point per entry (shared with the STA
    /// `netlist_sweep` so the two experiments time the *same* circuits).
    pub sizes: Vec<usize>,
    /// Characterization grids for the model library.
    pub config: CharacterizationConfig,
    /// Time step of the per-gate waveform simulations (seconds).
    pub dt: f64,
    /// Timed repetitions per pass; the best (minimum) wall clock is reported.
    pub repeats: usize,
}

impl NetsimSweepOptions {
    /// The default sweep for a thread count; `MCSM_BENCH_FAST=1` shrinks the
    /// sizes and coarsens grids/steps so the smoke run finishes in seconds.
    pub fn for_threads(threads: usize) -> Self {
        NetsimSweepOptions {
            threads,
            sizes: fast_or(vec![10, 24, 48], vec![16, 64, 256]),
            config: fast_or(
                CharacterizationConfig::coarse(),
                CharacterizationConfig::standard(),
            ),
            dt: fast_or(4e-12, 2e-12),
            repeats: fast_or(2, 1),
        }
    }
}

/// The model families the experiment sweeps, as `(label, backend)` pairs.
pub fn model_families() -> Vec<(&'static str, DelayBackend)> {
    vec![
        ("sis", DelayBackend::SisOnly),
        ("baseline_mis", DelayBackend::BaselineMis),
        ("complete_mcsm", DelayBackend::CompleteMcsm),
    ]
}

/// Primary-input drives for a netsim run: staggered falling ramps on every
/// input (`full` activity), or a single switching input with everything else
/// parked at the rail (`sparse` activity — the event-driven showcase).
pub fn netsim_input_drives(
    netlist: &Netlist,
    vdd: f64,
    sparse: bool,
) -> HashMap<NetRef, DriveWaveform> {
    netlist
        .primary_inputs()
        .iter()
        .enumerate()
        .map(|(i, &pi)| {
            let drive = if sparse && i > 0 {
                DriveWaveform::dc(vdd)
            } else {
                let skew = 20e-12 * (i % 5) as f64;
                DriveWaveform::falling_ramp(vdd, 1e-9 + skew, 80e-12)
            };
            (pi, drive)
        })
        .collect()
}

/// One timed case of the sweep.
#[derive(Debug, Clone)]
pub struct NetsimCase {
    /// Model family label (`sis`, `baseline_mis`, `complete_mcsm`).
    pub family: String,
    /// Generator family (`chain`, `tree` or `dag`).
    pub topology: String,
    /// Name of the generated circuit.
    pub circuit: String,
    /// Input activity (`full` or `sparse`).
    pub activity: String,
    /// Gate count of the circuit.
    pub gates: usize,
    /// Topological levels of the schedule.
    pub levels: usize,
    /// Gates the event-driven scheduler handed to the engine.
    pub gates_simulated: usize,
    /// Gates resolved to DC without an engine run.
    pub gates_skipped: usize,
    /// Nets whose waveform excursion exceeded the event threshold.
    pub events: usize,
    /// Best wall-clock seconds of one sequential run.
    pub seq_seconds: f64,
    /// Best wall-clock seconds of one level-parallel run.
    pub par_seconds: f64,
    /// Whether the parallel waveforms equal the sequential ones bit-for-bit.
    pub bit_identical: bool,
}

impl NetsimCase {
    /// Netlist-simulation throughput of this case (whole circuit over the
    /// parallel wall clock — skipped gates count, that is the point of the
    /// event-driven schedule).
    pub fn gates_per_second(&self) -> f64 {
        self.gates as f64 / self.par_seconds.max(1e-12)
    }

    /// Sequential-over-parallel speedup of this case.
    pub fn speedup(&self) -> f64 {
        self.seq_seconds / self.par_seconds.max(1e-12)
    }
}

/// The full experiment result, written to `BENCH_netsim.json`.
#[derive(Debug, Clone)]
pub struct NetsimReport {
    /// Worker threads the parallel passes ran with (resolved, so never 0).
    pub threads: usize,
    /// All timed cases, in family-then-topology-then-size order.
    pub cases: Vec<NetsimCase>,
}

impl NetsimReport {
    /// Whether every sequential-vs-parallel check passed.
    pub fn all_identical(&self) -> bool {
        self.cases.iter().all(|case| case.bit_identical)
    }

    /// Aggregate sequential-over-parallel speedup across the full-activity
    /// cases (sparse cases have too few eventful gates to fan out).
    pub fn overall_speedup(&self) -> f64 {
        self.aggregate_speedup(|case| case.activity == "full")
    }

    /// Aggregate speedup over the full-activity cases with level widths worth
    /// fanning out — trees and DAGs. Chains are width-1 by construction, so
    /// level parallelism *cannot* help them; this is the metric the CI perf
    /// gate checks.
    pub fn parallel_speedup(&self) -> f64 {
        self.aggregate_speedup(|case| case.activity == "full" && case.topology != "chain")
    }

    fn aggregate_speedup(&self, keep: impl Fn(&NetsimCase) -> bool) -> f64 {
        let (seq, par) = self
            .cases
            .iter()
            .filter(|case| keep(case))
            .fold((0.0, 0.0), |(s, p), case| {
                (s + case.seq_seconds, p + case.par_seconds)
            });
        seq / par.max(1e-12)
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("experiment".into(), JsonValue::String("netsim".into())),
            (
                "fast_mode".into(),
                JsonValue::Bool(crate::report::fast_mode()),
            ),
            ("threads".into(), JsonValue::Number(self.threads as f64)),
            (
                "overall_speedup".into(),
                JsonValue::Number(self.overall_speedup()),
            ),
            (
                "parallel_speedup".into(),
                JsonValue::Number(self.parallel_speedup()),
            ),
            (
                "cases".into(),
                JsonValue::Array(
                    self.cases
                        .iter()
                        .map(|case| {
                            JsonValue::Object(vec![
                                ("family".into(), JsonValue::String(case.family.clone())),
                                ("topology".into(), JsonValue::String(case.topology.clone())),
                                ("circuit".into(), JsonValue::String(case.circuit.clone())),
                                ("activity".into(), JsonValue::String(case.activity.clone())),
                                ("gates".into(), JsonValue::Number(case.gates as f64)),
                                ("levels".into(), JsonValue::Number(case.levels as f64)),
                                (
                                    "gates_simulated".into(),
                                    JsonValue::Number(case.gates_simulated as f64),
                                ),
                                (
                                    "gates_skipped".into(),
                                    JsonValue::Number(case.gates_skipped as f64),
                                ),
                                ("events".into(), JsonValue::Number(case.events as f64)),
                                ("seq_seconds".into(), JsonValue::Number(case.seq_seconds)),
                                ("par_seconds".into(), JsonValue::Number(case.par_seconds)),
                                (
                                    "gates_per_second".into(),
                                    JsonValue::Number(case.gates_per_second()),
                                ),
                                ("speedup".into(), JsonValue::Number(case.speedup())),
                                ("bit_identical".into(), JsonValue::Bool(case.bit_identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn results_identical(netlist: &Netlist, a: &NetsimResult, b: &NetsimResult) -> bool {
    netlist
        .net_refs()
        .all(|net| a.waveform(net) == b.waveform(net))
}

/// Runs the experiment: characterize once, then time every circuit under
/// every model family.
///
/// # Errors
///
/// Propagates characterization and simulation failures.
pub fn run_netsim_sweep(options: &NetsimSweepOptions) -> Result<NetsimReport, NetsimError> {
    let threads = par::resolve_threads(options.threads);
    let technology = Technology::cmos_130nm();
    let library = ModelLibrary::characterize_parallel(
        &technology,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &options.config,
        threads,
    )?;

    let netlists = sweep_netlists(&options.sizes);
    let mut largest_per_topology: HashMap<String, usize> = HashMap::new();
    for (idx, (topology, netlist)) in netlists.iter().enumerate() {
        let best = largest_per_topology.entry(topology.clone()).or_insert(idx);
        if netlist.gate_count() >= netlists[*best].1.gate_count() {
            *best = idx;
        }
    }

    let mut cases = Vec::new();
    for (family, backend) in model_families() {
        for (idx, (topology, netlist)) in netlists.iter().enumerate() {
            let sparse_too = largest_per_topology[topology] == idx;
            for sparse in [false, true] {
                if sparse && !sparse_too {
                    continue;
                }
                cases.push(time_case(
                    family, backend, topology, netlist, &library, threads, sparse, options,
                )?);
            }
        }
    }

    Ok(NetsimReport { threads, cases })
}

#[allow(clippy::too_many_arguments)]
fn time_case(
    family: &str,
    backend: DelayBackend,
    topology: &str,
    netlist: &Netlist,
    library: &ModelLibrary,
    threads: usize,
    sparse: bool,
    options: &NetsimSweepOptions,
) -> Result<NetsimCase, NetsimError> {
    let vdd = library.vdd();
    let levels = topological_levels(netlist).level_count();
    let drives = netsim_input_drives(netlist, vdd, sparse);
    // The simulated window must cover the accumulated path delay, so it
    // scales with the circuit depth (same rule as the STA sweep).
    let window = 2e-9 + 0.4e-9 * levels as f64;
    let calculator = DelayCalculator::new(backend, CsmSimOptions::new(window, options.dt), vdd);
    let netsim_options = NetsimOptions::new(calculator, 2e-15);

    let timed = |threads: usize| -> Result<(NetsimResult, f64), NetsimError> {
        let run_options = netsim_options.clone().with_threads(threads);
        let mut best = f64::INFINITY;
        let mut result = None;
        for _ in 0..options.repeats.max(1) {
            let start = Instant::now();
            let r = simulate_netlist(netlist, library, &drives, &run_options)?;
            best = best.min(start.elapsed().as_secs_f64());
            result = Some(r);
        }
        Ok((result.expect("at least one repeat"), best))
    };

    let (sequential, seq_seconds) = timed(1)?;
    let (parallel, par_seconds) = timed(threads)?;
    let stats = parallel.stats();

    Ok(NetsimCase {
        family: family.to_string(),
        topology: topology.to_string(),
        circuit: netlist.name().to_string(),
        activity: if sparse { "sparse" } else { "full" }.to_string(),
        gates: netlist.gate_count(),
        levels,
        gates_simulated: stats.gates_simulated,
        gates_skipped: stats.gates_skipped,
        events: stats.events,
        seq_seconds,
        par_seconds,
        bit_identical: results_identical(netlist, &sequential, &parallel),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_and_aggregates() {
        let case = |activity: &str, seq: f64, par: f64| NetsimCase {
            family: "sis".into(),
            topology: "chain".into(),
            circuit: "nand_chain_8".into(),
            activity: activity.into(),
            gates: 8,
            levels: 8,
            gates_simulated: 8,
            gates_skipped: 0,
            events: 9,
            seq_seconds: seq,
            par_seconds: par,
            bit_identical: true,
        };
        let mut tree_case = case("full", 3.0, 1.0);
        tree_case.topology = "tree".into();
        let report = NetsimReport {
            threads: 2,
            cases: vec![
                case("full", 1.0, 0.5),
                case("sparse", 10.0, 10.0),
                tree_case,
            ],
        };
        assert!(report.all_identical());
        // Sparse cases are excluded from the aggregate speedups; the gated
        // metric additionally drops width-1 chains.
        assert!((report.overall_speedup() - 4.0 / 1.5).abs() < 1e-12);
        assert!((report.parallel_speedup() - 3.0).abs() < 1e-12);
        assert!((report.cases[0].gates_per_second() - 16.0).abs() < 1e-9);
        assert!((report.cases[0].speedup() - 2.0).abs() < 1e-12);
        let json = report.to_json();
        assert_eq!(
            json.require("overall_speedup").unwrap().as_f64(),
            Some(4.0 / 1.5)
        );
        assert_eq!(
            json.require("parallel_speedup").unwrap().as_f64(),
            Some(3.0)
        );
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn sparse_drives_switch_exactly_one_input() {
        let netlist = mcsm_net::nand_chain(4);
        let full = netsim_input_drives(&netlist, 1.2, false);
        let sparse = netsim_input_drives(&netlist, 1.2, true);
        assert_eq!(full.len(), netlist.primary_inputs().len());
        let switching = |drives: &HashMap<NetRef, DriveWaveform>| {
            drives
                .values()
                .filter(|d| (d.eval(0.0) - d.eval(10e-9)).abs() > 0.6)
                .count()
        };
        assert_eq!(switching(&full), full.len());
        assert_eq!(switching(&sparse), 1);
    }

    #[test]
    fn tiny_netsim_sweep_runs_end_to_end() {
        let options = NetsimSweepOptions {
            threads: 2,
            sizes: vec![4],
            config: CharacterizationConfig::coarse(),
            dt: 8e-12,
            repeats: 1,
        };
        let report = run_netsim_sweep(&options).unwrap();
        // 3 families x (3 topologies x 1 size + 3 sparse repeats).
        assert_eq!(report.cases.len(), 18);
        assert!(report.all_identical());
        for case in &report.cases {
            assert!(case.gates > 0 && case.levels > 0);
            assert!(case.seq_seconds > 0.0 && case.par_seconds > 0.0);
            assert_eq!(case.gates_simulated + case.gates_skipped, case.gates);
            if case.activity == "sparse" && case.topology != "chain" {
                // With one switching input, trees and DAGs leave most of the
                // circuit quiescent — the event-driven skip path at work.
                assert!(
                    case.gates_skipped > 0,
                    "{} {} skipped nothing",
                    case.family,
                    case.circuit
                );
            }
        }
    }
}
