//! The `server` experiment: query throughput and cache warmth of the
//! `mcsm-serve` session engine over generated circuits.
//!
//! For each circuit of the shared generator sweep (NAND chains, balanced NOR
//! trees, random leveled DAGs) the experiment drives a resident
//! [`mcsm_serve::Engine`] through the JSON-RPC protocol itself —
//! every measured operation is a real request line:
//!
//! * **cold** — the first full evaluation on a fresh session, every gate
//!   solve paying the numerical engine;
//! * **warm** — a forced full re-evaluation on the same session, answered
//!   entirely from the waveform memo (`waveform_misses == 0`);
//! * **queries** — a burst of `arrival` requests against the committed
//!   result, reported as queries per second.
//!
//! The warm-over-cold wall-clock ratio is the memoization payoff the CI gate
//! checks (`--min-warm-ratio`), and the warm waveforms are checked
//! bit-identical to the cold ones. Honors `MCSM_BENCH_FAST=1`.
//!
//! The sweep ends with a **fault drill**: the smallest circuit re-runs on an
//! engine armed with request panics and gate faults (`mcsm_num::fault`), and
//! the report records that the session kept answering (`recovered` errors),
//! logged gate recoveries, and settled to bits identical to a clean session
//! — the robustness contract the hardened server ships with.

use crate::netlist_sweep::sweep_netlists;
use crate::report::fast_or;
use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::config::CharacterizationConfig;
use mcsm_net::Netlist;
use mcsm_netsim::topological_levels;
use mcsm_num::fault::{site, FaultPlan};
use mcsm_num::json::JsonValue;
use mcsm_num::par;
use mcsm_serve::{Engine, Session, SessionConfig};
use mcsm_sta::models::ModelLibrary;
use mcsm_sta::StaError;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one server-experiment run.
#[derive(Debug, Clone)]
pub struct ServerSweepOptions {
    /// Worker threads of the resident session (`0` = auto).
    pub threads: usize,
    /// Gate budgets, one sweep point per entry (shared with the netsim and
    /// STA sweeps so all three experiments time the *same* circuits).
    pub sizes: Vec<usize>,
    /// Characterization grids for the model library.
    pub config: CharacterizationConfig,
    /// Engine time step (seconds).
    pub dt: f64,
    /// Arrival requests per throughput burst.
    pub queries: usize,
}

impl ServerSweepOptions {
    /// The default sweep for a thread count; `MCSM_BENCH_FAST=1` shrinks the
    /// sizes and coarsens grids/steps so the smoke run finishes in seconds.
    pub fn for_threads(threads: usize) -> Self {
        ServerSweepOptions {
            threads,
            sizes: fast_or(vec![10, 24], vec![16, 64]),
            config: fast_or(
                CharacterizationConfig::coarse(),
                CharacterizationConfig::standard(),
            ),
            dt: fast_or(4e-12, 2e-12),
            queries: fast_or(50, 200),
        }
    }
}

/// One timed circuit of the sweep.
#[derive(Debug, Clone)]
pub struct ServerCase {
    /// Generator family (`chain`, `tree` or `dag`).
    pub topology: String,
    /// Name of the generated circuit.
    pub circuit: String,
    /// Gate count of the circuit.
    pub gates: usize,
    /// Wall-clock seconds of the first (cache-cold) full evaluation.
    pub cold_seconds: f64,
    /// Wall-clock seconds of a forced full re-evaluation on the warm session.
    pub warm_seconds: f64,
    /// Waveform-memo misses of the warm run (must be zero).
    pub warm_misses: usize,
    /// Arrival requests in the throughput burst.
    pub queries: usize,
    /// Wall-clock seconds of the whole burst.
    pub query_seconds: f64,
    /// Whether the warm waveforms equal the cold ones bit-for-bit.
    pub bit_identical: bool,
}

impl ServerCase {
    /// Cold-over-warm wall-clock ratio — the waveform-memo payoff.
    pub fn warm_ratio(&self) -> f64 {
        self.cold_seconds / self.warm_seconds.max(1e-12)
    }

    /// Arrival-query throughput against the committed result.
    pub fn queries_per_second(&self) -> f64 {
        self.queries as f64 / self.query_seconds.max(1e-12)
    }
}

/// Outcome of the chaos sanity drill run after the timed sweep.
#[derive(Debug, Clone)]
pub struct FaultDrill {
    /// Circuit the drill ran on (the smallest sweep circuit).
    pub circuit: String,
    /// Requests answered `-32000` with `recovered: true` (handler panics the
    /// engine survived).
    pub recovered_requests: usize,
    /// Per-gate degraded-mode recoveries logged by the final full run.
    pub gate_recoveries: usize,
    /// Whether the post-recovery output waveforms equal a clean session's
    /// bit-for-bit.
    pub bit_identical: bool,
}

/// The full experiment result, written to `BENCH_server.json`.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Worker threads the resident session ran with (resolved, so never 0).
    pub threads: usize,
    /// All timed cases, in topology-then-size order.
    pub cases: Vec<ServerCase>,
    /// The chaos sanity drill on the smallest circuit.
    pub fault_drill: FaultDrill,
}

impl ServerReport {
    /// Whether every warm-vs-cold waveform check passed.
    pub fn all_identical(&self) -> bool {
        self.cases.iter().all(|case| case.bit_identical)
    }

    /// Aggregate cold-over-warm ratio across the sweep — the metric the CI
    /// perf gate checks.
    pub fn overall_warm_ratio(&self) -> f64 {
        let (cold, warm) = self.cases.iter().fold((0.0, 0.0), |(c, w), case| {
            (c + case.cold_seconds, w + case.warm_seconds)
        });
        cold / warm.max(1e-12)
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("experiment".into(), JsonValue::String("server".into())),
            (
                "fast_mode".into(),
                JsonValue::Bool(crate::report::fast_mode()),
            ),
            ("threads".into(), JsonValue::Number(self.threads as f64)),
            (
                "overall_warm_ratio".into(),
                JsonValue::Number(self.overall_warm_ratio()),
            ),
            (
                "cases".into(),
                JsonValue::Array(
                    self.cases
                        .iter()
                        .map(|case| {
                            JsonValue::Object(vec![
                                ("topology".into(), JsonValue::String(case.topology.clone())),
                                ("circuit".into(), JsonValue::String(case.circuit.clone())),
                                ("gates".into(), JsonValue::Number(case.gates as f64)),
                                ("cold_seconds".into(), JsonValue::Number(case.cold_seconds)),
                                ("warm_seconds".into(), JsonValue::Number(case.warm_seconds)),
                                (
                                    "warm_misses".into(),
                                    JsonValue::Number(case.warm_misses as f64),
                                ),
                                ("warm_ratio".into(), JsonValue::Number(case.warm_ratio())),
                                ("queries".into(), JsonValue::Number(case.queries as f64)),
                                (
                                    "query_seconds".into(),
                                    JsonValue::Number(case.query_seconds),
                                ),
                                (
                                    "queries_per_second".into(),
                                    JsonValue::Number(case.queries_per_second()),
                                ),
                                ("bit_identical".into(), JsonValue::Bool(case.bit_identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fault_drill".into(),
                JsonValue::Object(vec![
                    (
                        "circuit".into(),
                        JsonValue::String(self.fault_drill.circuit.clone()),
                    ),
                    (
                        "recovered_requests".into(),
                        JsonValue::Number(self.fault_drill.recovered_requests as f64),
                    ),
                    (
                        "gate_recoveries".into(),
                        JsonValue::Number(self.fault_drill.gate_recoveries as f64),
                    ),
                    (
                        "bit_identical".into(),
                        JsonValue::Bool(self.fault_drill.bit_identical),
                    ),
                ]),
            ),
        ])
    }
}

/// A response's `result` object, panicking with the error message otherwise —
/// in a benchmark any protocol error is a bug worth stopping on.
fn expect_result(response: &str) -> JsonValue {
    let doc = JsonValue::parse(response).expect("response is JSON");
    match doc.get("result") {
        Some(result) => result.clone(),
        None => panic!("request failed: {response}"),
    }
}

/// The setup request lines for one circuit: load the netlist inline (with a
/// depth-scaled window) and put staggered falling ramps on every input.
fn setup_lines(netlist: &Netlist, dt: f64) -> Vec<String> {
    let levels = topological_levels(netlist).level_count();
    let window = 2e-9 + 0.4e-9 * levels as f64;
    let load = JsonValue::Object(vec![
        ("netlist".into(), netlist.to_json_value()),
        ("window".into(), JsonValue::Number(window)),
        ("dt".into(), JsonValue::Number(dt)),
    ]);
    let mut lines = vec![format!(
        r#"{{"id": 0, "method": "load_netlist", "params": {}}}"#,
        load.to_string_compact()
    )];
    for (i, &pi) in netlist.primary_inputs().iter().enumerate() {
        let skew = 20e-12 * (i % 5) as f64;
        lines.push(format!(
            r#"{{"id": 0, "method": "set_drive", "params": {{"net": "{}", "drive": {{"kind": "fall", "t_start": {}, "transition": 8e-11}}}}}}"#,
            netlist.net_name(pi),
            1e-9 + skew
        ));
    }
    lines
}

fn waveform_samples(engine: &Engine, net: &str) -> (JsonValue, JsonValue) {
    let result = expect_result(&engine.handle_line(&format!(
        r#"{{"id": 0, "method": "waveform", "params": {{"net": "{net}"}}}}"#
    )));
    (
        result.get("times_s").expect("samples").clone(),
        result.get("values_v").expect("samples").clone(),
    )
}

/// Runs the experiment: characterize once, then time every circuit through
/// the protocol.
///
/// # Errors
///
/// Propagates characterization failures.
pub fn run_server_sweep(options: &ServerSweepOptions) -> Result<ServerReport, StaError> {
    let threads = par::resolve_threads(options.threads);
    let library = ModelLibrary::characterize_parallel(
        &Technology::cmos_130nm(),
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &options.config,
        threads,
    )?;

    let netlists = sweep_netlists(&options.sizes);
    let mut cases = Vec::new();
    for (topology, netlist) in &netlists {
        cases.push(time_case(topology, netlist, &library, threads, options));
    }
    let smallest = netlists
        .iter()
        .min_by_key(|(_, netlist)| netlist.gate_count())
        .map(|(_, netlist)| netlist)
        .expect("sweep has at least one circuit");
    let fault_drill = run_fault_drill(smallest, &library, threads, options);
    Ok(ServerReport {
        threads,
        cases,
        fault_drill,
    })
}

/// Chaos sanity on the smallest sweep circuit: with request panics and gate
/// faults armed (seeded, 30 % per site), the engine must keep answering —
/// failed requests come back `-32000`/`recovered` and a resilient client
/// retries — and the settled session must match a clean one bit-for-bit.
fn run_fault_drill(
    netlist: &Netlist,
    library: &ModelLibrary,
    threads: usize,
    options: &ServerSweepOptions,
) -> FaultDrill {
    let plan = Arc::new(FaultPlan::new(42, 0.3).with_sites([
        site::SERVER_REQUEST_PANIC,
        site::NETSIM_GATE_PANIC,
        site::NETSIM_GATE_DIVERGE,
    ]));
    let engine = |fault: Option<Arc<FaultPlan>>| {
        let config = SessionConfig {
            threads,
            ..SessionConfig::default()
        };
        Engine::new(Session::new(library.clone(), config).with_fault(fault))
    };
    let faulted = engine(Some(Arc::clone(&plan)));
    let clean = engine(None);
    let mut recovered_requests = 0usize;
    let mut send_resilient = |target: &Engine, line: &str| -> JsonValue {
        for _ in 0..100 {
            let doc = JsonValue::parse(&target.handle_line(line)).expect("response is JSON");
            if let Some(result) = doc.get("result") {
                return result.clone();
            }
            recovered_requests += 1;
        }
        panic!("fault drill: request never succeeded: {line}");
    };
    for line in setup_lines(netlist, options.dt) {
        send_resilient(&faulted, &line);
        send_resilient(&clean, &line);
    }
    let full_resim = r#"{"id": 0, "method": "resim", "params": {"full": true}}"#;
    let run = send_resilient(&faulted, full_resim);
    send_resilient(&clean, full_resim);
    let gate_recoveries = run
        .get("stats")
        .and_then(|stats| stats.get("recoveries"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0) as usize;
    let mut bit_identical = true;
    for &po in netlist.primary_outputs() {
        let query = format!(
            r#"{{"id": 0, "method": "waveform", "params": {{"net": "{}"}}}}"#,
            netlist.net_name(po)
        );
        let a = send_resilient(&faulted, &query);
        let b = send_resilient(&clean, &query);
        bit_identical &=
            a.get("times_s") == b.get("times_s") && a.get("values_v") == b.get("values_v");
    }
    FaultDrill {
        circuit: netlist.name().to_string(),
        recovered_requests,
        gate_recoveries,
        bit_identical,
    }
}

fn time_case(
    topology: &str,
    netlist: &Netlist,
    library: &ModelLibrary,
    threads: usize,
    options: &ServerSweepOptions,
) -> ServerCase {
    let config = SessionConfig {
        threads,
        ..SessionConfig::default()
    };
    let engine = Engine::new(Session::new(library.clone(), config));
    for line in setup_lines(netlist, options.dt) {
        expect_result(&engine.handle_line(&line));
    }
    let outputs: Vec<String> = netlist
        .primary_outputs()
        .iter()
        .map(|&po| netlist.net_name(po).to_string())
        .collect();
    let full_resim = r#"{"id": 0, "method": "resim", "params": {"full": true}}"#;

    // Cold: the first evaluation on this session pays every gate solve.
    let start = Instant::now();
    expect_result(&engine.handle_line(full_resim));
    let cold_seconds = start.elapsed().as_secs_f64();
    let cold_samples: Vec<_> = outputs
        .iter()
        .map(|net| waveform_samples(&engine, net))
        .collect();

    // Warm: a forced full re-evaluation answered from the waveform memo.
    let start = Instant::now();
    let warm = expect_result(&engine.handle_line(full_resim));
    let warm_seconds = start.elapsed().as_secs_f64();
    let warm_misses = warm
        .get("stats")
        .and_then(|s| s.get("waveform_misses"))
        .and_then(|v| v.as_f64())
        .expect("resim reports stats") as usize;
    let warm_samples: Vec<_> = outputs
        .iter()
        .map(|net| waveform_samples(&engine, net))
        .collect();

    // Throughput: a burst of arrival queries against the committed result.
    let start = Instant::now();
    for i in 0..options.queries {
        let net = &outputs[i % outputs.len()];
        expect_result(&engine.handle_line(&format!(
            r#"{{"id": 0, "method": "arrival", "params": {{"net": "{net}"}}}}"#
        )));
    }
    let query_seconds = start.elapsed().as_secs_f64();

    ServerCase {
        topology: topology.to_string(),
        circuit: netlist.name().to_string(),
        gates: netlist.gate_count(),
        cold_seconds,
        warm_seconds,
        warm_misses,
        queries: options.queries,
        query_seconds,
        bit_identical: cold_samples == warm_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_and_aggregates() {
        let case = |cold: f64, warm: f64| ServerCase {
            topology: "chain".into(),
            circuit: "nand_chain_8".into(),
            gates: 8,
            cold_seconds: cold,
            warm_seconds: warm,
            warm_misses: 0,
            queries: 10,
            query_seconds: 0.5,
            bit_identical: true,
        };
        let report = ServerReport {
            threads: 2,
            cases: vec![case(4.0, 1.0), case(2.0, 1.0)],
            fault_drill: FaultDrill {
                circuit: "nand_chain_8".into(),
                recovered_requests: 3,
                gate_recoveries: 2,
                bit_identical: true,
            },
        };
        assert!(report.all_identical());
        assert!((report.overall_warm_ratio() - 3.0).abs() < 1e-12);
        assert!((report.cases[0].warm_ratio() - 4.0).abs() < 1e-12);
        assert!((report.cases[0].queries_per_second() - 20.0).abs() < 1e-9);
        let json = report.to_json();
        assert_eq!(
            json.require("overall_warm_ratio").unwrap().as_f64(),
            Some(3.0)
        );
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn tiny_server_sweep_runs_end_to_end() {
        let options = ServerSweepOptions {
            threads: 2,
            sizes: vec![4],
            config: CharacterizationConfig::coarse(),
            dt: 8e-12,
            queries: 4,
        };
        let report = run_server_sweep(&options).unwrap();
        assert_eq!(report.cases.len(), 3, "chain, tree, dag");
        assert!(report.all_identical());
        assert!(
            report.fault_drill.bit_identical,
            "fault drill settled on clean bits"
        );
        for case in &report.cases {
            assert!(case.gates > 0);
            assert!(case.cold_seconds > 0.0 && case.warm_seconds > 0.0);
            assert_eq!(
                case.warm_misses, 0,
                "{}: warm run hit the engine",
                case.circuit
            );
            assert!(case.queries_per_second() > 0.0);
        }
    }
}
