//! Data generators for every figure of the paper's evaluation section.
//!
//! Each `figNN_*` function reproduces the workload behind the corresponding
//! figure and returns its data series; the binaries in `src/bin/` print them and
//! EXPERIMENTS.md records the measured numbers next to the paper's.

use mcsm_cells::cell::{CellKind, CellTemplate};
use mcsm_cells::load::FanoutLoad;
use mcsm_cells::stimuli::InputHistory;
use mcsm_cells::tech::Technology;
use mcsm_cells::testbench::{CellTestbench, LoadSpec};
use mcsm_core::characterize::{characterize_mcsm, characterize_mis_baseline, characterize_sis};
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::metrics::compare_waveforms;
use mcsm_core::model::{McsmModel, MisBaselineModel, SisModel};
use mcsm_core::sim::{CsmSimOptions, DriveWaveform, Simulation};
use mcsm_core::CsmError;
use mcsm_spice::analysis::TranOptions;
use mcsm_spice::source::SourceWaveform;
use mcsm_spice::waveform::Waveform;
use mcsm_sta::noise::{sweep_injection_times, NoisePoint};
use mcsm_sta::StaError;

/// Shared experimental setup: the technology and the NOR2 cell every figure uses.
#[derive(Debug, Clone)]
pub struct Setup {
    /// The synthetic 130 nm technology (Vdd = 1.2 V).
    pub technology: Technology,
    /// The NOR2 template (the paper's running example).
    pub nor2: CellTemplate,
}

impl Setup {
    /// Creates the default setup.
    pub fn new() -> Self {
        let technology = Technology::cmos_130nm();
        let nor2 = CellTemplate::new(CellKind::Nor2, technology.clone());
        Setup { technology, nor2 }
    }

    /// Characterizes the three model families of the NOR2 with the given grids.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures.
    pub fn characterize_nor2(
        &self,
        config: &CharacterizationConfig,
    ) -> Result<(McsmModel, MisBaselineModel, SisModel), CsmError> {
        let mcsm = characterize_mcsm(&self.nor2, config)?;
        let baseline = characterize_mis_baseline(&self.nor2, config)?;
        let sis = characterize_sis(&self.nor2, 0, config)?;
        Ok((mcsm, baseline, sis))
    }
}

impl Default for Setup {
    fn default() -> Self {
        Setup::new()
    }
}

/// Timing of the canonical input history used by Figs. 3, 4, 5 and 9:
/// the first event at 1 ns, the final `'11' → '00'` transition at 2 ns,
/// edges with a 50 ps transition time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoryTiming {
    /// Time of the first input event (seconds).
    pub t_first: f64,
    /// Time of the final simultaneous falling transition (seconds).
    pub t_final: f64,
    /// Transition (ramp) time of every edge (seconds).
    pub transition: f64,
    /// End of the simulated window (seconds).
    pub t_stop: f64,
}

impl Default for HistoryTiming {
    fn default() -> Self {
        HistoryTiming {
            t_first: 1e-9,
            t_final: 2e-9,
            transition: 50e-12,
            t_stop: 3.2e-9,
        }
    }
}

impl HistoryTiming {
    /// The instant the falling inputs cross 50 % of Vdd — the reference event for
    /// every delay measurement of the history experiments.
    pub fn input_crossing_time(&self) -> f64 {
        self.t_final + 0.5 * self.transition
    }

    fn history(&self, vdd: f64, fast: bool) -> InputHistory {
        if fast {
            InputHistory::nor2_fast_case(vdd, self.transition, self.t_first, self.t_final)
        } else {
            InputHistory::nor2_slow_case(vdd, self.transition, self.t_first, self.t_final)
        }
    }
}

/// A full transistor-level simulation of one NOR2 input-history scenario.
#[derive(Debug, Clone)]
pub struct HistoryReference {
    /// Waveform of input A.
    pub input_a: Waveform,
    /// Waveform of input B.
    pub input_b: Waveform,
    /// Waveform of the internal stack node.
    pub internal: Waveform,
    /// Waveform of the output.
    pub output: Waveform,
}

/// Runs the transistor-level reference for one history case (`fast` selects the
/// `'10' → '11' → '00'` scenario, otherwise `'01' → '11' → '00'`).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_nor2_history_spice(
    setup: &Setup,
    timing: &HistoryTiming,
    fast: bool,
    fanout: usize,
    dt: f64,
) -> Result<HistoryReference, StaError> {
    let vdd = setup.technology.vdd;
    let mut bench =
        CellTestbench::new(&setup.nor2, &LoadSpec::Fanout(fanout)).map_err(StaError::Spice)?;
    bench
        .apply_history(&timing.history(vdd, fast))
        .map_err(StaError::Spice)?;
    let result = bench
        .run_transient(&TranOptions::new(timing.t_stop, dt))
        .map_err(StaError::Spice)?;
    let internal_name = bench.internal_names()[0].clone();
    Ok(HistoryReference {
        input_a: result.node("a").map_err(StaError::Spice)?.clone(),
        input_b: result.node("b").map_err(StaError::Spice)?.clone(),
        internal: result
            .node(&internal_name)
            .map_err(StaError::Spice)?
            .clone(),
        output: result.node("out").map_err(StaError::Spice)?.clone(),
    })
}

/// Figure 3: internal-node voltage waveforms under the two input histories.
#[derive(Debug, Clone)]
pub struct Fig3Data {
    /// Reference run of the fast (`'10' → '11' → '00'`) case.
    pub fast: HistoryReference,
    /// Reference run of the slow (`'01' → '11' → '00'`) case.
    pub slow: HistoryReference,
    /// Internal-node voltage just before the final transition, fast case (volts).
    pub v_internal_fast: f64,
    /// Internal-node voltage just before the final transition, slow case (volts).
    pub v_internal_slow: f64,
}

/// Generates the Fig. 3 data.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig03_internal_node(setup: &Setup, dt: f64) -> Result<Fig3Data, StaError> {
    let timing = HistoryTiming::default();
    let fast = run_nor2_history_spice(setup, &timing, true, 1, dt)?;
    let slow = run_nor2_history_spice(setup, &timing, false, 1, dt)?;
    let probe_time = timing.t_final - 20e-12;
    let v_internal_fast = fast.internal.value_at(probe_time);
    let v_internal_slow = slow.internal.value_at(probe_time);
    Ok(Fig3Data {
        fast,
        slow,
        v_internal_fast,
        v_internal_slow,
    })
}

/// Figure 4: output waveforms of the two histories (FO2 load) and their 50 %
/// delays measured from the falling-input crossing.
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// Reference run of the fast case.
    pub fast: HistoryReference,
    /// Reference run of the slow case.
    pub slow: HistoryReference,
    /// 50 % rising delay of the fast case (seconds).
    pub delay_fast: f64,
    /// 50 % rising delay of the slow case (seconds).
    pub delay_slow: f64,
}

/// Generates the Fig. 4 data.
///
/// # Errors
///
/// Propagates simulation failures, or reports a missing output edge.
pub fn fig04_history_outputs(setup: &Setup, dt: f64) -> Result<Fig4Data, StaError> {
    let timing = HistoryTiming::default();
    let vdd = setup.technology.vdd;
    let event = timing.input_crossing_time();
    let fast = run_nor2_history_spice(setup, &timing, true, 2, dt)?;
    let slow = run_nor2_history_spice(setup, &timing, false, 2, dt)?;
    let delay_of = |w: &Waveform| -> Result<f64, StaError> {
        w.crossing(0.5 * vdd, true)
            .map(|t| t - event)
            .ok_or_else(|| StaError::InvalidParameter("output never rises".into()))
    };
    let delay_fast = delay_of(&fast.output)?;
    let delay_slow = delay_of(&slow.output)?;
    Ok(Fig4Data {
        fast,
        slow,
        delay_fast,
        delay_slow,
    })
}

/// One row of Fig. 5: the history-induced delay difference at one fanout load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Row {
    /// Fanout (number of unit-inverter receivers).
    pub fanout: usize,
    /// 50 % delay of the fast case (seconds).
    pub delay_fast: f64,
    /// 50 % delay of the slow case (seconds).
    pub delay_slow: f64,
    /// Relative difference `(slow − fast) / fast` in percent.
    pub difference_percent: f64,
}

/// Generates the Fig. 5 sweep: delay difference between the two histories for
/// each fanout load.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig05_delay_vs_load(
    setup: &Setup,
    fanouts: &[usize],
    dt: f64,
) -> Result<Vec<Fig5Row>, StaError> {
    let timing = HistoryTiming::default();
    let vdd = setup.technology.vdd;
    let event = timing.input_crossing_time();
    let mut rows = Vec::with_capacity(fanouts.len());
    for &fanout in fanouts {
        let fast = run_nor2_history_spice(setup, &timing, true, fanout, dt)?;
        let slow = run_nor2_history_spice(setup, &timing, false, fanout, dt)?;
        let delay_fast = fast
            .output
            .crossing(0.5 * vdd, true)
            .ok_or_else(|| StaError::InvalidParameter("fast output never rises".into()))?
            - event;
        let delay_slow = slow
            .output
            .crossing(0.5 * vdd, true)
            .ok_or_else(|| StaError::InvalidParameter("slow output never rises".into()))?
            - event;
        rows.push(Fig5Row {
            fanout,
            delay_fast,
            delay_slow,
            difference_percent: 100.0 * (delay_slow - delay_fast) / delay_fast,
        });
    }
    Ok(rows)
}

/// Runs a model (MCSM or baseline) on one history scenario, mirroring the SPICE
/// reference: same input waveforms, lumped-capacitance equivalent of the fanout
/// load, output initially low.
fn model_history_output(
    setup: &Setup,
    timing: &HistoryTiming,
    mcsm: Option<&McsmModel>,
    baseline: Option<&MisBaselineModel>,
    fast: bool,
    fanout: usize,
    dt: f64,
) -> Result<Waveform, CsmError> {
    let vdd = setup.technology.vdd;
    let history = timing.history(vdd, fast);
    let waveforms = history.waveforms();
    let a = DriveWaveform::Analytic(waveforms[0].clone());
    let b = DriveWaveform::Analytic(waveforms[1].clone());
    let load = FanoutLoad::new(setup.technology.clone(), fanout).equivalent_capacitance();
    let options = CsmSimOptions::new(timing.t_stop, dt);
    // Initial output: with one input high in both histories, the NOR2 output is low.
    let v_out0 = 0.0;
    let inputs = [a, b];
    let model: &dyn mcsm_core::CellModel = match mcsm {
        Some(model) => model,
        None => baseline.expect("either an MCSM or a baseline model must be provided"),
    };
    Ok(Simulation::of(model)
        .inputs(&inputs)
        .load(load)
        .initial_output(v_out0)
        .options(options)
        .run()?
        .output)
}

/// One case (fast or slow history) of the Fig. 9 accuracy comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Case {
    /// `"fast"` or `"slow"`.
    pub label: &'static str,
    /// Reference (SPICE) 50 % delay, seconds.
    pub spice_delay: f64,
    /// Complete-MCSM 50 % delay, seconds.
    pub mcsm_delay: f64,
    /// Baseline-MIS 50 % delay, seconds.
    pub baseline_delay: f64,
    /// Relative MCSM delay error, percent.
    pub mcsm_error_percent: f64,
    /// Relative baseline delay error, percent.
    pub baseline_error_percent: f64,
    /// MCSM waveform RMSE normalized to Vdd.
    pub mcsm_nrmse: f64,
    /// Baseline waveform RMSE normalized to Vdd.
    pub baseline_nrmse: f64,
}

/// The Fig. 9 experiment: MCSM and baseline-MIS waveforms against SPICE for the
/// fast and slow input histories (the paper reports 4 % vs. 22 % maximum delay
/// error).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Data {
    /// Per-history comparisons.
    pub cases: Vec<Fig9Case>,
    /// Maximum MCSM delay error over the cases, percent.
    pub max_mcsm_error_percent: f64,
    /// Maximum baseline delay error over the cases, percent.
    pub max_baseline_error_percent: f64,
}

/// Generates the Fig. 9 comparison at the given fanout load.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig09_mcsm_accuracy(
    setup: &Setup,
    mcsm: &McsmModel,
    baseline: &MisBaselineModel,
    fanout: usize,
    spice_dt: f64,
    csm_dt: f64,
) -> Result<Fig9Data, StaError> {
    let timing = HistoryTiming::default();
    let vdd = setup.technology.vdd;
    let event = timing.input_crossing_time();
    let mut cases = Vec::new();
    for (label, fast) in [("fast", true), ("slow", false)] {
        let reference = run_nor2_history_spice(setup, &timing, fast, fanout, spice_dt)?;
        let mcsm_out =
            model_history_output(setup, &timing, Some(mcsm), None, fast, fanout, csm_dt)?;
        let base_out =
            model_history_output(setup, &timing, None, Some(baseline), fast, fanout, csm_dt)?;

        let delay_of = |w: &Waveform| -> Result<f64, StaError> {
            w.crossing(0.5 * vdd, true)
                .map(|t| t - event)
                .ok_or_else(|| StaError::InvalidParameter(format!("{label}: output never rises")))
        };
        let spice_delay = delay_of(&reference.output)?;
        let mcsm_delay = delay_of(&mcsm_out)?;
        let baseline_delay = delay_of(&base_out)?;

        let mcsm_cmp = compare_waveforms(&reference.output, &mcsm_out, vdd, true)?;
        let base_cmp = compare_waveforms(&reference.output, &base_out, vdd, true)?;

        cases.push(Fig9Case {
            label,
            spice_delay,
            mcsm_delay,
            baseline_delay,
            mcsm_error_percent: 100.0 * (mcsm_delay - spice_delay).abs() / spice_delay,
            baseline_error_percent: 100.0 * (baseline_delay - spice_delay).abs() / spice_delay,
            mcsm_nrmse: mcsm_cmp.normalized_rmse,
            baseline_nrmse: base_cmp.normalized_rmse,
        });
    }
    let max_mcsm = cases
        .iter()
        .map(|c| c.mcsm_error_percent)
        .fold(0.0, f64::max);
    let max_base = cases
        .iter()
        .map(|c| c.baseline_error_percent)
        .fold(0.0, f64::max);
    Ok(Fig9Data {
        cases,
        max_mcsm_error_percent: max_mcsm,
        max_baseline_error_percent: max_base,
    })
}

/// Figure 10: an output glitch caused by a narrow input pulse, SPICE vs. MCSM.
#[derive(Debug, Clone)]
pub struct Fig10Data {
    /// Reference output waveform.
    pub spice_output: Waveform,
    /// MCSM-predicted output waveform.
    pub mcsm_output: Waveform,
    /// Deepest excursion of the reference glitch (volts).
    pub spice_glitch_depth: f64,
    /// Deepest excursion of the MCSM glitch (volts).
    pub mcsm_glitch_depth: f64,
    /// Waveform RMSE normalized to Vdd.
    pub normalized_rmse: f64,
}

/// Generates the Fig. 10 glitch comparison: input A static low, input B pulses
/// high for a short time, the FO2-loaded output dips and recovers.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig10_glitch(
    setup: &Setup,
    mcsm: &McsmModel,
    pulse_width: f64,
    spice_dt: f64,
    csm_dt: f64,
) -> Result<Fig10Data, StaError> {
    let vdd = setup.technology.vdd;
    let t_stop = 3e-9;
    let pulse = SourceWaveform::Pulse {
        base: 0.0,
        peak: vdd,
        t_delay: 1e-9,
        t_rise: 50e-12,
        t_width: pulse_width,
        t_fall: 50e-12,
    };

    // Reference: transistor-level testbench with FO2 load.
    let mut bench =
        CellTestbench::new(&setup.nor2, &LoadSpec::Fanout(2)).map_err(StaError::Spice)?;
    bench
        .set_input_waveform(0, SourceWaveform::dc(0.0))
        .map_err(StaError::Spice)?;
    bench
        .set_input_waveform(1, pulse.clone())
        .map_err(StaError::Spice)?;
    let result = bench
        .run_transient(&TranOptions::new(t_stop, spice_dt))
        .map_err(StaError::Spice)?;
    let spice_output = result.node("out").map_err(StaError::Spice)?.clone();

    // MCSM prediction with the lumped-equivalent load.
    let load = FanoutLoad::new(setup.technology.clone(), 2).equivalent_capacitance();
    let a = DriveWaveform::dc(0.0);
    let b = DriveWaveform::Analytic(pulse);
    let options = CsmSimOptions::new(t_stop, csm_dt);
    let mcsm_output = Simulation::of(mcsm)
        .inputs(&[a, b])
        .load(load)
        .initial_output(vdd)
        .options(options)
        .run()
        .map_err(StaError::Model)?
        .output;

    let comparison = compare_waveforms(&spice_output, &mcsm_output, vdd, false)?;
    Ok(Fig10Data {
        spice_glitch_depth: vdd - spice_output.min_value(),
        mcsm_glitch_depth: vdd - mcsm_output.min_value(),
        normalized_rmse: comparison.normalized_rmse,
        spice_output,
        mcsm_output,
    })
}

/// Figure 11: a simultaneous multiple-input-switching event, SPICE vs. MCSM vs.
/// the SIS CSM of reference \[5\].
#[derive(Debug, Clone)]
pub struct Fig11Data {
    /// Reference output waveform.
    pub spice_output: Waveform,
    /// MCSM output waveform.
    pub mcsm_output: Waveform,
    /// SIS-CSM output waveform.
    pub sis_output: Waveform,
    /// MCSM waveform RMSE normalized to Vdd.
    pub mcsm_nrmse: f64,
    /// SIS waveform RMSE normalized to Vdd.
    pub sis_nrmse: f64,
    /// MCSM 50 % delay error vs. SPICE, percent.
    pub mcsm_delay_error_percent: f64,
    /// SIS 50 % delay error vs. SPICE, percent.
    pub sis_delay_error_percent: f64,
}

/// Generates the Fig. 11 comparison: both NOR2 inputs fall simultaneously and
/// the three models are compared against the transistor-level reference.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig11_mis_vs_sis(
    setup: &Setup,
    mcsm: &McsmModel,
    sis: &SisModel,
    fanout: usize,
    spice_dt: f64,
    csm_dt: f64,
) -> Result<Fig11Data, StaError> {
    let vdd = setup.technology.vdd;
    let t_switch = 2e-9;
    let transition = 60e-12;
    let t_stop = 3.2e-9;
    let event = t_switch + 0.5 * transition;

    // Reference.
    let history = InputHistory::simultaneous(
        vdd,
        transition,
        vec![true, true],
        vec![false, false],
        t_switch,
    );
    let mut bench =
        CellTestbench::new(&setup.nor2, &LoadSpec::Fanout(fanout)).map_err(StaError::Spice)?;
    bench.apply_history(&history).map_err(StaError::Spice)?;
    let result = bench
        .run_transient(&TranOptions::new(t_stop, spice_dt))
        .map_err(StaError::Spice)?;
    let spice_output = result.node("out").map_err(StaError::Spice)?.clone();

    // Models.
    let load = FanoutLoad::new(setup.technology.clone(), fanout).equivalent_capacitance();
    let a = DriveWaveform::falling_ramp(vdd, t_switch, transition);
    let b = DriveWaveform::falling_ramp(vdd, t_switch, transition);
    let options = CsmSimOptions::new(t_stop, csm_dt);
    let mcsm_output = Simulation::of(mcsm)
        .inputs(&[a.clone(), b])
        .load(load)
        .initial_output(0.0)
        .options(options.clone())
        .run()
        .map_err(StaError::Model)?
        .output;
    // The SIS model only sees one switching input (the other is assumed stable at
    // its non-controlling value) — exactly the approximation the paper critiques.
    let sis_output = Simulation::of(sis)
        .input(a)
        .load(load)
        .initial_output(0.0)
        .options(options)
        .run()
        .map_err(StaError::Model)?
        .output;

    let delay_of = |w: &Waveform| -> Result<f64, StaError> {
        w.crossing(0.5 * vdd, true)
            .map(|t| t - event)
            .ok_or_else(|| StaError::InvalidParameter("output never rises".into()))
    };
    let d_spice = delay_of(&spice_output)?;
    let d_mcsm = delay_of(&mcsm_output)?;
    let d_sis = delay_of(&sis_output)?;

    let mcsm_cmp = compare_waveforms(&spice_output, &mcsm_output, vdd, true)?;
    let sis_cmp = compare_waveforms(&spice_output, &sis_output, vdd, true)?;

    Ok(Fig11Data {
        spice_output,
        mcsm_output,
        sis_output,
        mcsm_nrmse: mcsm_cmp.normalized_rmse,
        sis_nrmse: sis_cmp.normalized_rmse,
        mcsm_delay_error_percent: 100.0 * (d_mcsm - d_spice).abs() / d_spice,
        sis_delay_error_percent: 100.0 * (d_sis - d_spice).abs() / d_spice,
    })
}

/// Generates the Fig. 12 noise-injection sweep.
///
/// `step` is the spacing of aggressor arrival times between 2 ns and 3 ns
/// (the paper uses 10 ps; coarser steps keep quick runs affordable).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig12_noise_sweep(
    setup: &Setup,
    mcsm: &McsmModel,
    step: f64,
    spice_dt: f64,
    csm_dt: f64,
) -> Result<Vec<NoisePoint>, StaError> {
    let mut times = Vec::new();
    let mut t = 2.0e-9;
    while t <= 3.0e-9 + 1e-15 {
        times.push(t);
        t += step;
    }
    let options = CsmSimOptions::new(4.5e-9, csm_dt);
    sweep_injection_times(&setup.technology, mcsm, &times, spice_dt, &options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_setup() -> (Setup, McsmModel, MisBaselineModel, SisModel) {
        let setup = Setup::new();
        let (mcsm, baseline, sis) = setup
            .characterize_nor2(&CharacterizationConfig::coarse())
            .unwrap();
        (setup, mcsm, baseline, sis)
    }

    #[test]
    fn fig03_internal_node_voltages_differ_between_histories() {
        let setup = Setup::new();
        let data = fig03_internal_node(&setup, 4e-12).unwrap();
        let vdd = setup.technology.vdd;
        assert!(
            data.v_internal_fast > 0.9 * vdd,
            "fast case internal node = {}",
            data.v_internal_fast
        );
        // The slow case sits near the body-affected |Vt,p| plus the Miller kick —
        // well below the supply and far below the fast case.
        assert!(
            data.v_internal_slow < 0.75 * vdd,
            "slow case internal node = {}",
            data.v_internal_slow
        );
        assert!(
            data.v_internal_fast - data.v_internal_slow > 0.3 * vdd,
            "histories should separate the internal node: {} vs {}",
            data.v_internal_fast,
            data.v_internal_slow
        );
    }

    #[test]
    fn fig04_slow_history_has_larger_delay() {
        let setup = Setup::new();
        let data = fig04_history_outputs(&setup, 4e-12).unwrap();
        assert!(data.delay_slow > data.delay_fast);
    }

    #[test]
    fn fig05_difference_is_positive_and_decreases_with_load() {
        let setup = Setup::new();
        let rows = fig05_delay_vs_load(&setup, &[1, 4], 4e-12).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].difference_percent > 0.0);
        assert!(rows[1].difference_percent > 0.0);
        assert!(
            rows[0].difference_percent > rows[1].difference_percent,
            "difference should shrink with load: {:?}",
            rows
        );
    }

    #[test]
    fn fig09_mcsm_beats_baseline_on_the_history_dependent_case() {
        let (setup, mcsm, baseline, _) = quick_setup();
        let data = fig09_mcsm_accuracy(&setup, &mcsm, &baseline, 1, 4e-12, 1e-12).unwrap();
        assert_eq!(data.cases.len(), 2);
        // The slow history is the one whose delay depends on the stored stack
        // charge; there the internal-node-blind baseline must lose.
        let slow = data.cases.iter().find(|c| c.label == "slow").unwrap();
        assert!(
            slow.mcsm_error_percent < slow.baseline_error_percent,
            "slow case: MCSM ({:.1}%) should beat the baseline ({:.1}%)",
            slow.mcsm_error_percent,
            slow.baseline_error_percent
        );
        // And the complete model stays accurate overall even with coarse tables.
        assert!(
            data.max_mcsm_error_percent < 15.0,
            "MCSM max error {:.1}%",
            data.max_mcsm_error_percent
        );
    }

    #[test]
    fn fig10_glitch_is_reproduced() {
        let (setup, mcsm, _, _) = quick_setup();
        let data = fig10_glitch(&setup, &mcsm, 200e-12, 4e-12, 1e-12).unwrap();
        // The reference produces a real glitch and the model sees one too.
        assert!(data.spice_glitch_depth > 0.1);
        assert!(data.mcsm_glitch_depth > 0.05);
        assert!(
            data.normalized_rmse < 0.15,
            "nrmse = {}",
            data.normalized_rmse
        );
    }

    #[test]
    fn fig11_mcsm_tracks_the_mis_event() {
        // For this NOR2 sizing the SIS penalty on a rising (series-stack) output
        // is modest — see EXPERIMENTS.md — so the robust assertions are that the
        // MCSM tracks the reference closely and that the SIS model is not
        // dramatically better than it (which would indicate a bug).
        let (setup, mcsm, _, sis) = quick_setup();
        let data = fig11_mis_vs_sis(&setup, &mcsm, &sis, 2, 4e-12, 1e-12).unwrap();
        assert!(
            data.mcsm_delay_error_percent < 12.0,
            "MCSM delay error {:.1}%",
            data.mcsm_delay_error_percent
        );
        assert!(data.mcsm_nrmse < 0.06, "MCSM nRMSE {:.3}", data.mcsm_nrmse);
        assert!(data.sis_nrmse < 0.1, "SIS nRMSE {:.3}", data.sis_nrmse);
        assert!(
            data.mcsm_delay_error_percent <= data.sis_delay_error_percent + 5.0,
            "MCSM ({:.1}%) should not be clearly worse than SIS ({:.1}%)",
            data.mcsm_delay_error_percent,
            data.sis_delay_error_percent
        );
    }

    #[test]
    fn fig12_sweep_produces_points() {
        let (setup, mcsm, _, _) = quick_setup();
        let points = fig12_noise_sweep(&setup, &mcsm, 0.5e-9, 6e-12, 2e-12).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.normalized_rmse.is_finite());
            assert!(p.normalized_rmse < 0.15);
        }
    }
}
