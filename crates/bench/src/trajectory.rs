//! Merges committed `BENCH_*.json` reports into one performance-trajectory
//! table.
//!
//! Every bench binary writes a `BENCH_<experiment>.json` with a small set of
//! top-level headline scalars (`overall_speedup`, `parallel_speedup`,
//! `overall_warm_ratio`, ...) above its per-case detail arrays. The `report`
//! binary collects whatever `BENCH_*.json` files are present, flattens the
//! headline scalars into long-format rows and emits one markdown table plus a
//! machine-readable JSON mirror — the artifact CI uploads from the bench
//! smoke job so the headline numbers can be tracked across commits without
//! opening each report.

use mcsm_num::json::JsonValue;
use std::path::{Path, PathBuf};

/// One parsed `BENCH_*.json`: its headline scalars plus the sizes of its
/// detail arrays (reported as `<name>_count` so a shrinking sweep is visible
/// in the trajectory even though the per-case rows are not merged).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// File name (not path) the report was read from, e.g. `BENCH_sim.json`.
    pub file: String,
    /// The report's `experiment` tag, or `?` when absent.
    pub experiment: String,
    /// Whether the report was produced under `MCSM_BENCH_FAST=1`. Fast-mode
    /// numbers use trimmed sweeps — comparable to other fast runs only.
    pub fast_mode: bool,
    /// Name-sorted headline scalars: top-level numbers plus one
    /// `<name>_count` per top-level array.
    pub scalars: Vec<(String, f64)>,
}

/// Parses one `BENCH_*.json` file into a [`BenchReport`].
///
/// # Errors
///
/// Returns a message naming the file for unreadable or unparseable input.
pub fn load_report(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc =
        JsonValue::parse(&text).map_err(|e| format!("cannot parse {}: {}", path.display(), e.0))?;
    let JsonValue::Object(fields) = &doc else {
        return Err(format!("{}: top level is not an object", path.display()));
    };
    let file = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let mut report = BenchReport {
        file,
        experiment: "?".to_string(),
        fast_mode: false,
        scalars: Vec::new(),
    };
    for (name, value) in fields {
        match value {
            JsonValue::String(s) if name == "experiment" => report.experiment = s.clone(),
            JsonValue::Bool(b) if name == "fast_mode" => report.fast_mode = *b,
            JsonValue::Number(n) => report.scalars.push((name.clone(), *n)),
            JsonValue::Array(items) => report
                .scalars
                .push((format!("{name}_count"), items.len() as f64)),
            _ => {}
        }
    }
    report.scalars.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(report)
}

/// Finds every `BENCH_*.json` directly inside `dir` (no recursion), sorted by
/// file name so the merged output is directory-order independent.
///
/// # Errors
///
/// Returns a message for an unreadable directory or any unparseable report —
/// a corrupt committed report should fail the CI step, not vanish from the
/// table.
pub fn scan_dir(dir: &Path) -> Result<Vec<BenchReport>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .map(|n| n.to_string_lossy())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    paths.iter().map(|path| load_report(path)).collect()
}

/// Renders the merged trajectory as a long-format markdown table (one row per
/// headline scalar), preceded by a per-report summary list.
pub fn to_markdown(reports: &[BenchReport]) -> String {
    let mut out = String::from("# Benchmark trajectory\n\n");
    if reports.is_empty() {
        out.push_str("No BENCH_*.json reports found.\n");
        return out;
    }
    for report in reports {
        let mode = if report.fast_mode { "fast" } else { "full" };
        out.push_str(&format!(
            "- `{}` — experiment `{}` ({mode} mode, {} headline metrics)\n",
            report.file,
            report.experiment,
            report.scalars.len()
        ));
    }
    out.push_str("\n| report | experiment | mode | metric | value |\n");
    out.push_str("|---|---|---|---|---|\n");
    for report in reports {
        let mode = if report.fast_mode { "fast" } else { "full" };
        for (name, value) in &report.scalars {
            out.push_str(&format!(
                "| {} | {} | {mode} | {name} | {value:.4} |\n",
                report.file, report.experiment
            ));
        }
    }
    out
}

/// Renders the merged trajectory as JSON: an array of per-report objects with
/// name-sorted scalar maps, suitable for machine diffing across commits.
pub fn to_json(reports: &[BenchReport]) -> JsonValue {
    JsonValue::Array(
        reports
            .iter()
            .map(|report| {
                JsonValue::Object(vec![
                    ("file".to_string(), JsonValue::String(report.file.clone())),
                    (
                        "experiment".to_string(),
                        JsonValue::String(report.experiment.clone()),
                    ),
                    ("fast_mode".to_string(), JsonValue::Bool(report.fast_mode)),
                    (
                        "scalars".to_string(),
                        JsonValue::Object(
                            report
                                .scalars
                                .iter()
                                .map(|(name, value)| (name.clone(), JsonValue::Number(*value)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, text: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcsm_trajectory_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn load_flattens_scalars_and_counts_arrays() {
        let path = write_temp(
            "BENCH_demo.json",
            r#"{"experiment":"demo","fast_mode":true,"overall_speedup":2.5,
                "threads":2,"cases":[{"a":1},{"a":2}],"note":"ignored"}"#,
        );
        let report = load_report(&path).unwrap();
        assert_eq!(report.experiment, "demo");
        assert!(report.fast_mode);
        // Name-sorted: cases_count, overall_speedup, threads.
        assert_eq!(
            report.scalars,
            vec![
                ("cases_count".to_string(), 2.0),
                ("overall_speedup".to_string(), 2.5),
                ("threads".to_string(), 2.0),
            ]
        );
        let md = to_markdown(std::slice::from_ref(&report));
        assert!(md.contains("| BENCH_demo.json | demo | fast | overall_speedup | 2.5000 |"));
        let json = to_json(&[report]).to_string_compact();
        assert!(json.contains("\"overall_speedup\""));
    }

    #[test]
    fn scan_rejects_corrupt_reports() {
        let good = write_temp("BENCH_ok.json", r#"{"experiment":"ok","x":1}"#);
        write_temp("BENCH_bad.json", "{not json");
        let dir = good.parent().unwrap();
        let err = scan_dir(dir).unwrap_err();
        assert!(err.contains("BENCH_bad.json"), "{err}");
    }

    #[test]
    fn empty_directory_renders_placeholder() {
        let dir =
            std::env::temp_dir().join(format!("mcsm_trajectory_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let reports = scan_dir(&dir).unwrap();
        assert!(reports.is_empty());
        assert!(to_markdown(&reports).contains("No BENCH_*.json reports"));
    }
}
