//! The `scale` experiment: million-gate netlist capacity of the arena IR and
//! the streaming simulator.
//!
//! Where the `netsim` sweep measures model-fidelity throughput on small
//! circuits, this experiment measures the *data-model* ceiling: for
//! preferential-attachment [`scale_free_dag`] circuits at 10k / 100k / 1M
//! gates it times arena construction and single-pass levelization
//! (gates per second), snapshots peak resident memory (`VmHWM` from
//! `/proc/self/status`, std-only), and — on the tiers marked for simulation —
//! runs the event-driven simulator in **streaming** mode
//! ([`Observe::Points`] with the primary outputs as the only observation
//! points), recording [`peak_live_waveforms`](mcsm_netsim::NetsimStats) as a
//! fraction of the net count.
//!
//! Two gates make the result CI-checkable:
//!
//! * **live fraction** — streamed runs must keep
//!   `peak_live_waveforms / nets` at or below
//!   [`ScaleOptions::max_live_frac`];
//! * **identity** — on the smallest simulated tier, streamed runs at 1, 2
//!   and 8 threads must be bit-identical to a full-retention run on every
//!   primary output.
//!
//! Honors `MCSM_BENCH_FAST=1` (see [`crate::report::fast_mode`]): the fast
//! tiers still build and levelize the 1M-gate circuit but only simulate up
//! to 100k gates.

use crate::report::fast_or;
use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform};
use mcsm_net::{scale_free_dag, NetRef, Netlist, ScaleFreeConfig};
use mcsm_netsim::{
    cone_of_influence, seeds_for_drive_change, simulate_netlist, NetsimError, NetsimOptions,
    Observe,
};
use mcsm_num::json::JsonValue;
use mcsm_num::par;
use mcsm_sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm_sta::models::ModelLibrary;
use std::collections::HashMap;
use std::time::Instant;

/// One size point of the scale sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScaleTier {
    /// Gate budget of the generated circuit.
    pub gates: usize,
    /// Whether to run the streaming simulator on this tier (construction and
    /// levelization are always timed).
    pub simulate: bool,
}

/// Configuration of one scale-experiment run.
#[derive(Debug, Clone)]
pub struct ScaleOptions {
    /// Worker threads for the simulated tiers (`0` = auto).
    pub threads: usize,
    /// Size points, smallest first (peak-RSS is a process high-water mark,
    /// so ascending order keeps each tier's snapshot meaningful).
    pub tiers: Vec<ScaleTier>,
    /// Engine time step (seconds) for the simulated tiers.
    pub dt: f64,
    /// CI gate: maximum allowed `peak_live_waveforms / nets` of a streamed
    /// run.
    pub max_live_frac: f64,
    /// Generator seed (`scale_free_dag` is deterministic per seed).
    pub seed: u64,
}

impl ScaleOptions {
    /// The default sweep for a thread count. Fast mode simulates the 10k and
    /// 100k tiers and build-levelizes the 1M tier; full mode simulates all
    /// three.
    pub fn for_threads(threads: usize) -> Self {
        let tier = |gates: usize, simulate: bool| ScaleTier { gates, simulate };
        ScaleOptions {
            threads,
            tiers: fast_or(
                vec![
                    tier(10_000, true),
                    tier(100_000, true),
                    tier(1_000_000, false),
                ],
                vec![
                    tier(10_000, true),
                    tier(100_000, true),
                    tier(1_000_000, true),
                ],
            ),
            dt: fast_or(16e-12, 8e-12),
            max_live_frac: 0.1,
            seed: 7,
        }
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`, falling back to current residency from
/// `/proc/self/statm`). `None` where procfs is unavailable (non-Linux).
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Ok(kb) = rest.trim().trim_end_matches("kB").trim().parse::<u64>() {
                        return Some(kb * 1024);
                    }
                }
            }
        }
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        Some(pages * 4096)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Streamed-simulation measurements of one tier.
#[derive(Debug, Clone)]
pub struct ScaleSimCase {
    /// Wall-clock seconds of one streamed run at the configured thread count.
    pub sim_seconds: f64,
    /// Whole-circuit throughput (skipped gates count — that is the point of
    /// the event-driven schedule).
    pub gates_per_second: f64,
    /// Gates handed to the numerical engine.
    pub gates_simulated: usize,
    /// Gates resolved to DC without an engine run.
    pub gates_skipped: usize,
    /// Nets whose excursion exceeded the event threshold.
    pub events: usize,
    /// High-water mark of simultaneously live waveforms.
    pub peak_live_waveforms: usize,
    /// `peak_live_waveforms / nets` — the memory-bounding metric the CI gate
    /// checks.
    pub live_fraction: f64,
    /// On the identity tier: whether streamed runs at 1/2/8 threads matched
    /// the full-retention run bit-for-bit on every primary output.
    pub streamed_identical: Option<bool>,
}

/// One tier of the sweep.
#[derive(Debug, Clone)]
pub struct ScaleCase {
    /// Name of the generated circuit.
    pub circuit: String,
    /// Gate count.
    pub gates: usize,
    /// Net count.
    pub nets: usize,
    /// Primary inputs / outputs.
    pub primary_inputs: usize,
    /// Primary outputs (== inputs for `scale_free_dag`, by construction).
    pub primary_outputs: usize,
    /// Topological depth of the schedule.
    pub levels: usize,
    /// Wall-clock seconds to generate + build (validate, CSR-ize) the arena.
    pub build_seconds: f64,
    /// Wall-clock seconds of one single-pass levelization.
    pub levelize_seconds: f64,
    /// Construction throughput: gates / (build + levelize).
    pub build_gates_per_second: f64,
    /// Process peak RSS (bytes) after this tier; `0` where unavailable.
    pub peak_rss_bytes: u64,
    /// Streamed-simulation measurements, when the tier simulates.
    pub sim: Option<ScaleSimCase>,
}

/// The full experiment result, written to `BENCH_scale.json`.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Worker threads the simulated tiers ran with (resolved, never 0).
    pub threads: usize,
    /// Generator seed.
    pub seed: u64,
    /// The live-fraction ceiling the run was gated against.
    pub max_live_frac: f64,
    /// All tiers, ascending by size.
    pub cases: Vec<ScaleCase>,
}

impl ScaleReport {
    /// Gate-check failures: live fractions above the ceiling and identity
    /// mismatches. Empty means the run passes CI.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for case in &self.cases {
            if let Some(sim) = &case.sim {
                if sim.live_fraction > self.max_live_frac {
                    failures.push(format!(
                        "{}: live fraction {:.4} exceeds the {:.4} ceiling",
                        case.circuit, sim.live_fraction, self.max_live_frac
                    ));
                }
                if sim.streamed_identical == Some(false) {
                    failures.push(format!(
                        "{}: streamed waveforms differ from full retention",
                        case.circuit
                    ));
                }
            }
        }
        failures
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> JsonValue {
        let num = JsonValue::Number;
        JsonValue::Object(vec![
            ("experiment".into(), JsonValue::String("scale".into())),
            (
                "fast_mode".into(),
                JsonValue::Bool(crate::report::fast_mode()),
            ),
            ("threads".into(), num(self.threads as f64)),
            ("seed".into(), num(self.seed as f64)),
            ("max_live_frac".into(), num(self.max_live_frac)),
            (
                "gate_failures".into(),
                JsonValue::Array(
                    self.gate_failures()
                        .into_iter()
                        .map(JsonValue::String)
                        .collect(),
                ),
            ),
            (
                "tiers".into(),
                JsonValue::Array(
                    self.cases
                        .iter()
                        .map(|case| {
                            let sim = match &case.sim {
                                None => JsonValue::Null,
                                Some(sim) => JsonValue::Object(vec![
                                    ("sim_seconds".into(), num(sim.sim_seconds)),
                                    ("gates_per_second".into(), num(sim.gates_per_second)),
                                    ("gates_simulated".into(), num(sim.gates_simulated as f64)),
                                    ("gates_skipped".into(), num(sim.gates_skipped as f64)),
                                    ("events".into(), num(sim.events as f64)),
                                    (
                                        "peak_live_waveforms".into(),
                                        num(sim.peak_live_waveforms as f64),
                                    ),
                                    ("live_fraction".into(), num(sim.live_fraction)),
                                    (
                                        "streamed_identical".into(),
                                        sim.streamed_identical
                                            .map_or(JsonValue::Null, JsonValue::Bool),
                                    ),
                                ]),
                            };
                            JsonValue::Object(vec![
                                ("circuit".into(), JsonValue::String(case.circuit.clone())),
                                ("gates".into(), num(case.gates as f64)),
                                ("nets".into(), num(case.nets as f64)),
                                ("primary_inputs".into(), num(case.primary_inputs as f64)),
                                ("primary_outputs".into(), num(case.primary_outputs as f64)),
                                ("levels".into(), num(case.levels as f64)),
                                ("build_seconds".into(), num(case.build_seconds)),
                                ("levelize_seconds".into(), num(case.levelize_seconds)),
                                (
                                    "build_gates_per_second".into(),
                                    num(case.build_gates_per_second),
                                ),
                                ("peak_rss_bytes".into(), num(case.peak_rss_bytes as f64)),
                                ("sim".into(), sim),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Sparse stimulus: every primary input parked at the rail except the one
/// with the smallest non-empty structural cone among the first 64 inputs —
/// deterministic, and bounded engine work even on preferential-attachment
/// topologies whose early nets fan out to most of the circuit.
fn sparse_scale_drives(netlist: &Netlist, vdd: f64) -> HashMap<NetRef, DriveWaveform> {
    let mut best: Option<(usize, NetRef)> = None;
    for &pi in netlist.primary_inputs().iter().take(64) {
        let seeds = seeds_for_drive_change(netlist, pi);
        if seeds.is_empty() {
            continue;
        }
        let cone = cone_of_influence(netlist, &seeds).len();
        if best.is_none_or(|(size, _)| cone < size) {
            best = Some((cone, pi));
        }
    }
    let switching = best.map(|(_, pi)| pi);
    netlist
        .primary_inputs()
        .iter()
        .map(|&pi| {
            let drive = if Some(pi) == switching {
                DriveWaveform::falling_ramp(vdd, 0.5e-9, 80e-12)
            } else {
                DriveWaveform::dc(vdd)
            };
            (pi, drive)
        })
        .collect()
}

/// Runs the experiment: one tier at a time, ascending.
///
/// # Errors
///
/// Propagates characterization and simulation failures.
pub fn run_scale_sweep(options: &ScaleOptions) -> Result<ScaleReport, NetsimError> {
    let threads = par::resolve_threads(options.threads);
    let technology = Technology::cmos_130nm();
    // The scale experiment measures the netlist layer, not model fidelity:
    // the cheapest (SIS) family keeps the engine out of the way.
    let library = ModelLibrary::characterize_parallel(
        &technology,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &CharacterizationConfig::coarse(),
        threads,
    )?;
    let vdd = library.vdd();

    let mut cases = Vec::new();
    let mut identity_pending = true;
    for tier in &options.tiers {
        let start = Instant::now();
        let netlist = scale_free_dag(&ScaleFreeConfig::with_gate_budget(tier.gates, options.seed));
        let build_seconds = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let schedule = netlist.levels();
        let levelize_seconds = start.elapsed().as_secs_f64();
        let levels = schedule.level_count();

        let sim = if tier.simulate {
            let drives = sparse_scale_drives(&netlist, vdd);
            let window = 2e-9 + 0.1e-9 * levels as f64;
            let calculator = DelayCalculator::new(
                DelayBackend::SisOnly,
                CsmSimOptions::new(window, options.dt),
                vdd,
            );
            let netsim_options = NetsimOptions::new(calculator, 2e-15);
            let streamed_options = netsim_options
                .clone()
                .with_observe(Observe::Points(Vec::new()));

            let start = Instant::now();
            let streamed = simulate_netlist(
                &netlist,
                &library,
                &drives,
                &streamed_options.clone().with_threads(threads),
            )?;
            let sim_seconds = start.elapsed().as_secs_f64();
            let stats = streamed.stats();

            // Identity gate, once, on the smallest simulated tier: streamed
            // runs at 1/2/8 threads match full retention on every output.
            let streamed_identical = if identity_pending {
                identity_pending = false;
                let full = simulate_netlist(&netlist, &library, &drives, &netsim_options)?;
                let mut identical = true;
                for check_threads in [1usize, 2, 8] {
                    let run = simulate_netlist(
                        &netlist,
                        &library,
                        &drives,
                        &streamed_options.clone().with_threads(check_threads),
                    )?;
                    identical &= netlist
                        .primary_outputs()
                        .iter()
                        .all(|&po| run.waveform(po) == full.waveform(po));
                }
                Some(identical)
            } else {
                None
            };

            Some(ScaleSimCase {
                sim_seconds,
                gates_per_second: netlist.gate_count() as f64 / sim_seconds.max(1e-12),
                gates_simulated: stats.gates_simulated,
                gates_skipped: stats.gates_skipped,
                events: stats.events,
                peak_live_waveforms: stats.peak_live_waveforms,
                live_fraction: stats.peak_live_waveforms as f64 / netlist.net_count().max(1) as f64,
                streamed_identical,
            })
        } else {
            None
        };

        cases.push(ScaleCase {
            circuit: netlist.name().to_string(),
            gates: netlist.gate_count(),
            nets: netlist.net_count(),
            primary_inputs: netlist.primary_inputs().len(),
            primary_outputs: netlist.primary_outputs().len(),
            levels,
            build_seconds,
            levelize_seconds,
            build_gates_per_second: netlist.gate_count() as f64
                / (build_seconds + levelize_seconds).max(1e-12),
            peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
            sim,
        });
    }

    Ok(ScaleReport {
        threads,
        seed: options.seed,
        max_live_frac: options.max_live_frac,
        cases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_reads_procfs_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap() > 0);
        }
    }

    #[test]
    fn tiny_scale_sweep_passes_its_own_gates() {
        let options = ScaleOptions {
            threads: 2,
            tiers: vec![
                ScaleTier {
                    gates: 300,
                    simulate: true,
                },
                ScaleTier {
                    gates: 600,
                    simulate: false,
                },
            ],
            dt: 16e-12,
            max_live_frac: 0.9,
            seed: 7,
        };
        let report = run_scale_sweep(&options).unwrap();
        assert_eq!(report.cases.len(), 2);
        let first = &report.cases[0];
        assert_eq!(first.gates, 300);
        assert!(first.levels > 1);
        assert!(first.build_gates_per_second > 0.0);
        let sim = first.sim.as_ref().unwrap();
        assert_eq!(sim.gates_simulated + sim.gates_skipped, first.gates);
        // The identity check ran on the smallest simulated tier and passed.
        assert_eq!(sim.streamed_identical, Some(true));
        assert!(sim.live_fraction < 0.9, "live {}", sim.live_fraction);
        assert!(report.cases[1].sim.is_none());
        assert!(report.gate_failures().is_empty());
        let json = report.to_json();
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn gate_failures_flag_violations() {
        let sim = ScaleSimCase {
            sim_seconds: 1.0,
            gates_per_second: 300.0,
            gates_simulated: 10,
            gates_skipped: 290,
            events: 12,
            peak_live_waveforms: 200,
            live_fraction: 0.5,
            streamed_identical: Some(false),
        };
        let report = ScaleReport {
            threads: 2,
            seed: 7,
            max_live_frac: 0.1,
            cases: vec![ScaleCase {
                circuit: "scale_free_300x64_seed7".into(),
                gates: 300,
                nets: 400,
                primary_inputs: 64,
                primary_outputs: 64,
                levels: 6,
                build_seconds: 0.01,
                levelize_seconds: 0.001,
                build_gates_per_second: 3e4,
                peak_rss_bytes: 1 << 20,
                sim: Some(sim),
            }],
        };
        let failures = report.gate_failures();
        assert_eq!(failures.len(), 2);
        assert!(failures[0].contains("live fraction"));
        assert!(failures[1].contains("differ from full retention"));
    }
}
