//! Experiment drivers for the paper's figures and the Criterion benchmarks.
//!
//! Every table/figure of the paper's evaluation section has a function here that
//! produces its data series; the `src/bin/fig*.rs` binaries print them and
//! `benches/figures.rs` measures their cost. Keeping the logic in a library
//! makes the binaries trivial and lets integration tests assert on the *shape*
//! of each result (who wins, by roughly how much) without duplicating setup.

pub mod batch;
pub mod experiments;
pub mod netlist_sweep;
pub mod netsim;
pub mod report;
pub mod scale;
pub mod seqsim;
pub mod server;
pub mod sim_hotpath;
pub mod trajectory;

pub use batch::*;
pub use experiments::*;
pub use netlist_sweep::*;
pub use netsim::*;
pub use report::*;
pub use scale::*;
pub use seqsim::*;
pub use server::*;
pub use sim_hotpath::*;
pub use trajectory::*;
