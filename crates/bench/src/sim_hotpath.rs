//! The `sim_hotpath` experiment: engine throughput of the LUT fast path.
//!
//! The runtime cost of a current-source model is dominated by lookup-table
//! evaluations — every explicit/predictor–corrector sub-step (paper
//! Eqs. (4)–(5)) queries the current, Miller-cap and internal-cap tables. This
//! experiment replays every gate of the generated chain/tree/dag netlists
//! (`mcsm-net` generators, the same circuits `netlist_sweep` times) through
//! the generic simulation engine **twice per model family**: once on the
//! cursor-accelerated allocation-free fast path ([`EvalMode::Fast`]) and once
//! on the retained allocating `LutNd::eval` reference path
//! ([`EvalMode::Reference`]). It reports engine steps/sec and LUT evals/sec
//! per family, checks the two paths **bit-identical**, and the `sim_hotpath`
//! binary gates CI on a minimum fast-over-reference speedup
//! (`BENCH_sim.json`).
//!
//! Honors `MCSM_BENCH_FAST=1` (see [`crate::report::fast_mode`]).

use crate::netlist_sweep::sweep_netlists;
use crate::report::fast_or;
use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::eval::EvalMode;
use mcsm_core::model::CellModel;
use mcsm_core::sim::{simulate, CsmSimOptions, DriveWaveform, SimResult};
use mcsm_num::json::JsonValue;
use mcsm_sta::models::ModelLibrary;
use mcsm_sta::StaError;
use std::time::Instant;

/// Model families the experiment times, in report order.
pub const HOTPATH_FAMILIES: [&str; 3] = ["sis", "baseline_mis", "complete_mcsm"];

/// Configuration of one sim-hotpath run.
#[derive(Debug, Clone)]
pub struct SimHotpathOptions {
    /// Gate budgets for the generated circuits (one chain/tree/dag triple per
    /// entry, shared with the `netlist_sweep` generators).
    pub sizes: Vec<usize>,
    /// Characterization grids for the model library.
    pub config: CharacterizationConfig,
    /// Time step of the per-gate engine runs (seconds).
    pub dt: f64,
    /// Simulated window per gate (seconds).
    pub t_stop: f64,
    /// Timed repetitions per (family, mode) pass; best (minimum) wall clock
    /// is reported.
    pub repeats: usize,
}

impl SimHotpathOptions {
    /// The default sweep; `MCSM_BENCH_FAST=1` shrinks circuits and coarsens
    /// grids/steps so the smoke run finishes in seconds.
    pub fn default_sweep() -> Self {
        SimHotpathOptions {
            sizes: fast_or(vec![6, 12], vec![16, 48]),
            config: fast_or(
                CharacterizationConfig::coarse(),
                CharacterizationConfig::standard(),
            ),
            dt: fast_or(4e-12, 1e-12),
            t_stop: 2.4e-9,
            repeats: fast_or(3, 2),
        }
    }
}

/// One gate replay: which model runs, with what stimuli and load.
struct GateTask<'a> {
    model: &'a dyn CellModel,
    inputs: Vec<DriveWaveform>,
    load: f64,
    v_out_initial: f64,
}

/// Measured results of one model family.
#[derive(Debug, Clone)]
pub struct HotpathCase {
    /// Family key (one of [`HOTPATH_FAMILIES`]).
    pub family: String,
    /// Gate simulations per timed pass.
    pub sims: usize,
    /// Engine sub-steps per pass (identical for both paths).
    pub steps: u64,
    /// LUT evaluations per pass (identical for both paths).
    pub lut_evals: u64,
    /// Best wall-clock seconds of the fast-path pass.
    pub fast_seconds: f64,
    /// Best wall-clock seconds of the reference-path pass.
    pub reference_seconds: f64,
    /// Whether every simulation result matched bit-for-bit across the paths.
    pub bit_identical: bool,
}

impl HotpathCase {
    /// Engine steps/sec on the fast path.
    pub fn fast_steps_per_second(&self) -> f64 {
        self.steps as f64 / self.fast_seconds.max(1e-12)
    }

    /// Engine steps/sec on the reference path.
    pub fn reference_steps_per_second(&self) -> f64 {
        self.steps as f64 / self.reference_seconds.max(1e-12)
    }

    /// LUT evaluations/sec on the fast path.
    pub fn fast_evals_per_second(&self) -> f64 {
        self.lut_evals as f64 / self.fast_seconds.max(1e-12)
    }

    /// Fast-over-reference throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.reference_seconds / self.fast_seconds.max(1e-12)
    }
}

/// The full experiment result, written to `BENCH_sim.json`.
#[derive(Debug, Clone)]
pub struct SimHotpathReport {
    /// Gates replayed per family pass.
    pub gates: usize,
    /// One case per model family.
    pub cases: Vec<HotpathCase>,
}

impl SimHotpathReport {
    /// Whether every family's fast path reproduced the reference path
    /// bit-for-bit.
    pub fn all_identical(&self) -> bool {
        self.cases.iter().all(|case| case.bit_identical)
    }

    /// Total-time fast-over-reference speedup across all families — the
    /// number the CI perf gate checks. Equal to the ratio of overall engine
    /// steps/sec, since both paths execute identical step counts.
    pub fn overall_speedup(&self) -> f64 {
        let reference: f64 = self.cases.iter().map(|c| c.reference_seconds).sum();
        let fast: f64 = self.cases.iter().map(|c| c.fast_seconds).sum();
        reference / fast.max(1e-12)
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("experiment".into(), JsonValue::String("sim_hotpath".into())),
            (
                "fast_mode".into(),
                JsonValue::Bool(crate::report::fast_mode()),
            ),
            ("gates".into(), JsonValue::Number(self.gates as f64)),
            (
                "overall_speedup".into(),
                JsonValue::Number(self.overall_speedup()),
            ),
            (
                "cases".into(),
                JsonValue::Array(
                    self.cases
                        .iter()
                        .map(|case| {
                            JsonValue::Object(vec![
                                ("family".into(), JsonValue::String(case.family.clone())),
                                ("sims".into(), JsonValue::Number(case.sims as f64)),
                                ("steps".into(), JsonValue::Number(case.steps as f64)),
                                ("lut_evals".into(), JsonValue::Number(case.lut_evals as f64)),
                                ("fast_seconds".into(), JsonValue::Number(case.fast_seconds)),
                                (
                                    "reference_seconds".into(),
                                    JsonValue::Number(case.reference_seconds),
                                ),
                                (
                                    "fast_steps_per_second".into(),
                                    JsonValue::Number(case.fast_steps_per_second()),
                                ),
                                (
                                    "reference_steps_per_second".into(),
                                    JsonValue::Number(case.reference_steps_per_second()),
                                ),
                                (
                                    "fast_evals_per_second".into(),
                                    JsonValue::Number(case.fast_evals_per_second()),
                                ),
                                ("speedup".into(), JsonValue::Number(case.speedup())),
                                ("bit_identical".into(), JsonValue::Bool(case.bit_identical)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Builds the per-family gate workload from the generated netlists: staggered
/// falling ramps on every pin (a MIS event per multi-input gate), loads spread
/// by fanout and position, and the family's model per gate (single-input gates
/// always run their SIS model; wider gates run the family under test).
fn family_tasks<'a>(
    library: &'a ModelLibrary,
    netlists: &[(String, mcsm_net::Netlist)],
    family: &str,
    vdd: f64,
) -> Result<Vec<GateTask<'a>>, StaError> {
    let mut tasks = Vec::new();
    let mut index = 0usize;
    for (_, netlist) in netlists {
        for gate in netlist.iter_gates() {
            let store = library.store(gate.kind)?;
            let missing =
                |what: &str| StaError::MissingModel(format!("{what} for {}", gate.kind.name()));
            let model: &dyn CellModel = if gate.kind.input_count() == 1 || family == "sis" {
                store
                    .sis_for_pin(0)
                    .ok_or_else(|| missing("no SIS model"))?
            } else if family == "baseline_mis" {
                store
                    .mis_baseline
                    .as_ref()
                    .ok_or_else(|| missing("no baseline MIS model"))?
            } else {
                store.mcsm.as_ref().ok_or_else(|| missing("no MCSM"))?
            };
            // All pins start high and fall with per-pin skew; the initial
            // output level follows from the initial logic state.
            let inputs: Vec<DriveWaveform> = (0..model.num_pins())
                .map(|pin| {
                    let start = 0.2e-9 + 25e-12 * ((index + pin) % 5) as f64;
                    let transition = 60e-12 + 20e-12 * (index % 3) as f64;
                    DriveWaveform::falling_ramp(vdd, start, transition)
                })
                .collect();
            let high = vec![true; gate.kind.input_count()];
            let v_out_initial = if gate.kind.evaluate(&high) { vdd } else { 0.0 };
            let fanout = netlist.fanout_of(gate.output).len();
            let load = 1e-15 * (1 + fanout) as f64 + 0.5e-15 * (index % 4) as f64;
            tasks.push(GateTask {
                model,
                inputs,
                load,
                v_out_initial,
            });
            index += 1;
        }
    }
    Ok(tasks)
}

/// Runs every task once in the given evaluation mode, returning the results
/// and the wall-clock seconds of the pass.
fn run_pass(
    tasks: &[GateTask<'_>],
    options: &CsmSimOptions,
    mode: EvalMode,
) -> Result<(Vec<SimResult>, f64), StaError> {
    let opts = options.clone().with_eval(mode);
    let start = Instant::now();
    let mut results = Vec::with_capacity(tasks.len());
    for task in tasks {
        results.push(simulate(
            task.model,
            &task.inputs,
            task.load,
            task.v_out_initial,
            None,
            &opts,
        )?);
    }
    Ok((results, start.elapsed().as_secs_f64()))
}

/// Runs the experiment: characterize once, then time every family fast vs
/// reference over the generated gate workload.
///
/// # Errors
///
/// Propagates characterization and simulation failures.
pub fn run_sim_hotpath(options: &SimHotpathOptions) -> Result<SimHotpathReport, StaError> {
    let technology = Technology::cmos_130nm();
    let library = ModelLibrary::characterize_parallel(
        &technology,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &options.config,
        0,
    )?;
    let netlists = sweep_netlists(&options.sizes);
    let gates: usize = netlists.iter().map(|(_, n)| n.gate_count()).sum();
    let sim_options = CsmSimOptions::new(options.t_stop, options.dt);

    let mut cases = Vec::new();
    for family in HOTPATH_FAMILIES {
        let tasks = family_tasks(&library, &netlists, family, technology.vdd)?;
        let mut fast_seconds = f64::INFINITY;
        let mut reference_seconds = f64::INFINITY;
        let mut fast_results = Vec::new();
        let mut reference_results = Vec::new();
        for _ in 0..options.repeats.max(1) {
            let (results, seconds) = run_pass(&tasks, &sim_options, EvalMode::Fast)?;
            fast_seconds = fast_seconds.min(seconds);
            fast_results = results;
            let (results, seconds) = run_pass(&tasks, &sim_options, EvalMode::Reference)?;
            reference_seconds = reference_seconds.min(seconds);
            reference_results = results;
        }
        let bit_identical = fast_results == reference_results;
        let steps: u64 = fast_results.iter().map(|r| r.steps).sum();
        let lut_evals: u64 = fast_results.iter().map(|r| r.lut_evals).sum();
        cases.push(HotpathCase {
            family: family.to_string(),
            sims: tasks.len(),
            steps,
            lut_evals,
            fast_seconds,
            reference_seconds,
            bit_identical,
        });
    }

    Ok(SimHotpathReport { gates, cases })
}

/// Result of the observability-overhead measurement: best wall-clock of the
/// complete-MCSM fast-path pass with obs fully disarmed vs with metrics and
/// tracing armed, interleaved within one process so machine noise cancels.
#[derive(Debug, Clone, Copy)]
pub struct ObsOverheadReport {
    /// Best pass seconds with metrics and tracing disarmed.
    pub disabled_seconds: f64,
    /// Best pass seconds with metrics and tracing armed.
    pub armed_seconds: f64,
}

impl ObsOverheadReport {
    /// Armed-over-disabled overhead in percent (negative when armed happened
    /// to run faster). The CI gate checks this stays under a small bound —
    /// and since the disarmed path does strictly less work than the armed one
    /// (one relaxed flag load per probe), armed-within-bound implies the
    /// disabled instrumentation is free within the same bound.
    pub fn overhead_percent(&self) -> f64 {
        (self.armed_seconds / self.disabled_seconds.max(1e-12) - 1.0) * 100.0
    }
}

/// Measures instrumentation overhead on the engine hot path: replays the
/// complete-MCSM gate workload with obs disarmed and armed, alternating per
/// repeat, and reports the best time of each. Leaves obs disarmed on return.
///
/// # Errors
///
/// Propagates characterization and simulation failures.
pub fn measure_obs_overhead(options: &SimHotpathOptions) -> Result<ObsOverheadReport, StaError> {
    let technology = Technology::cmos_130nm();
    let library = ModelLibrary::characterize_parallel(
        &technology,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &options.config,
        0,
    )?;
    let netlists = sweep_netlists(&options.sizes);
    let sim_options = CsmSimOptions::new(options.t_stop, options.dt);
    let tasks = family_tasks(&library, &netlists, "complete_mcsm", technology.vdd)?;

    let mut disabled_seconds = f64::INFINITY;
    let mut armed_seconds = f64::INFINITY;
    for _ in 0..options.repeats.max(2) {
        mcsm_obs::set_metrics(false);
        mcsm_obs::set_trace(false);
        let (_, seconds) = run_pass(&tasks, &sim_options, EvalMode::Fast)?;
        disabled_seconds = disabled_seconds.min(seconds);

        mcsm_obs::set_metrics(true);
        mcsm_obs::set_trace(true);
        let (_, seconds) = run_pass(&tasks, &sim_options, EvalMode::Fast)?;
        armed_seconds = armed_seconds.min(seconds);
    }
    mcsm_obs::set_metrics(false);
    mcsm_obs::set_trace(false);
    mcsm_obs::span::clear();

    Ok(ObsOverheadReport {
        disabled_seconds,
        armed_seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_and_derives_rates() {
        let report = SimHotpathReport {
            gates: 10,
            cases: vec![HotpathCase {
                family: "complete_mcsm".into(),
                sims: 10,
                steps: 2000,
                lut_evals: 16000,
                fast_seconds: 0.5,
                reference_seconds: 1.5,
                bit_identical: true,
            }],
        };
        assert!(report.all_identical());
        assert!((report.overall_speedup() - 3.0).abs() < 1e-9);
        let case = &report.cases[0];
        assert!((case.fast_steps_per_second() - 4000.0).abs() < 1e-9);
        assert!((case.fast_evals_per_second() - 32000.0).abs() < 1e-9);
        assert!((case.speedup() - 3.0).abs() < 1e-9);
        let json = report.to_json();
        assert_eq!(json.require("gates").unwrap().as_f64(), Some(10.0));
        let cases = json.require("cases").unwrap().as_array().unwrap();
        assert_eq!(cases[0].require("speedup").unwrap().as_f64(), Some(3.0));
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn tiny_hotpath_run_is_bit_identical_across_paths() {
        let options = SimHotpathOptions {
            sizes: vec![3],
            config: CharacterizationConfig::coarse(),
            dt: 8e-12,
            t_stop: 1.2e-9,
            repeats: 1,
        };
        let report = run_sim_hotpath(&options).unwrap();
        assert_eq!(report.cases.len(), 3);
        assert!(report.all_identical(), "fast path diverged from reference");
        for case in &report.cases {
            assert!(case.sims > 0);
            assert!(case.steps > 0);
            assert!(case.lut_evals > 0);
            assert!(case.fast_seconds > 0.0 && case.reference_seconds > 0.0);
        }
    }
}
