//! The `netlist_sweep` experiment: STA throughput over generated circuits.
//!
//! The unified netlist IR (`mcsm-net`) makes arbitrary benchmark topologies
//! one function call, so this experiment sweeps the three generator families —
//! NAND chains (deep, narrow), balanced NOR trees (wide, shallow) and random
//! leveled DAGs (seeded, bounded fanin/fanout) — at three sizes each, lowers
//! every [`Netlist`] to a `GateGraph`, times level-parallel waveform
//! propagation and reports **gates per second** into `BENCH_netlist.json`.
//!
//! On the smallest circuit of each family the parallel run is also checked
//! bit-identical against the sequential run, extending the determinism
//! contract to generated workloads. Honors `MCSM_BENCH_FAST=1` (see
//! [`crate::report::fast_mode`]).

use crate::batch::batch_input_drives;
use crate::report::fast_or;
use mcsm_cells::cell::CellKind;
use mcsm_cells::tech::Technology;
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::sim::CsmSimOptions;
use mcsm_net::{balanced_tree, nand_chain, random_dag, DagConfig, Netlist};
use mcsm_num::json::JsonValue;
use mcsm_num::par;
use mcsm_sta::arrival::{propagate, TimingOptions};
use mcsm_sta::delaycalc::{DelayBackend, DelayCalculator};
use mcsm_sta::models::ModelLibrary;
use mcsm_sta::StaError;
use std::time::Instant;

/// Configuration of one netlist-sweep run.
#[derive(Debug, Clone)]
pub struct NetlistSweepOptions {
    /// Worker threads for the timed propagation (`0` = auto).
    pub threads: usize,
    /// Gate budgets, one sweep point per entry (each family maps a budget to
    /// its nearest realizable size).
    pub sizes: Vec<usize>,
    /// Characterization grids for the model library.
    pub config: CharacterizationConfig,
    /// Time step of the per-gate waveform simulations (seconds).
    pub dt: f64,
    /// Timed repetitions per case; the best (minimum) wall clock is reported.
    pub repeats: usize,
}

impl NetlistSweepOptions {
    /// The default sweep for a thread count; `MCSM_BENCH_FAST=1` shrinks the
    /// sizes and coarsens grids/steps so the smoke run finishes in seconds.
    pub fn for_threads(threads: usize) -> Self {
        NetlistSweepOptions {
            threads,
            sizes: fast_or(vec![10, 24, 48], vec![16, 64, 256]),
            config: fast_or(
                CharacterizationConfig::coarse(),
                CharacterizationConfig::standard(),
            ),
            dt: fast_or(4e-12, 2e-12),
            repeats: fast_or(2, 1),
        }
    }
}

/// One timed case of the sweep.
#[derive(Debug, Clone)]
pub struct SweepCase {
    /// Generator family (`chain`, `tree` or `dag`).
    pub topology: String,
    /// Name of the generated circuit.
    pub circuit: String,
    /// Gate count of the circuit.
    pub gates: usize,
    /// Topological levels of the lowered graph.
    pub levels: usize,
    /// Best wall-clock seconds of one propagation.
    pub seconds: f64,
    /// Whether the parallel run was checked bit-identical against the
    /// sequential run (`None` when the check was skipped for this case).
    pub bit_identical: Option<bool>,
}

impl SweepCase {
    /// STA throughput of this case.
    pub fn gates_per_second(&self) -> f64 {
        self.gates as f64 / self.seconds.max(1e-12)
    }
}

/// The full sweep result, written to `BENCH_netlist.json`.
#[derive(Debug, Clone)]
pub struct NetlistSweepReport {
    /// Worker threads the timed passes ran with (resolved, so never 0).
    pub threads: usize,
    /// All timed cases, in family-then-size order.
    pub cases: Vec<SweepCase>,
}

impl NetlistSweepReport {
    /// Whether every performed bit-identity check passed.
    pub fn all_identical(&self) -> bool {
        self.cases
            .iter()
            .all(|case| case.bit_identical.unwrap_or(true))
    }

    /// The machine-readable report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "experiment".into(),
                JsonValue::String("netlist_sweep".into()),
            ),
            (
                "fast_mode".into(),
                JsonValue::Bool(crate::report::fast_mode()),
            ),
            ("threads".into(), JsonValue::Number(self.threads as f64)),
            (
                "cases".into(),
                JsonValue::Array(
                    self.cases
                        .iter()
                        .map(|case| {
                            JsonValue::Object(vec![
                                ("topology".into(), JsonValue::String(case.topology.clone())),
                                ("circuit".into(), JsonValue::String(case.circuit.clone())),
                                ("gates".into(), JsonValue::Number(case.gates as f64)),
                                ("levels".into(), JsonValue::Number(case.levels as f64)),
                                ("seconds".into(), JsonValue::Number(case.seconds)),
                                (
                                    "gates_per_second".into(),
                                    JsonValue::Number(case.gates_per_second()),
                                ),
                                (
                                    "bit_identical".into(),
                                    match case.bit_identical {
                                        Some(ok) => JsonValue::Bool(ok),
                                        None => JsonValue::Null,
                                    },
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The generated circuits of one sweep: `(topology, netlist)` pairs in
/// family-then-size order. Deterministic — DAG seeds derive from the gate
/// budget, so equal options give equal circuits.
pub fn sweep_netlists(sizes: &[usize]) -> Vec<(String, Netlist)> {
    let mut netlists = Vec::new();
    for &size in sizes {
        netlists.push(("chain".to_string(), nand_chain(size.max(1))));
    }
    for &size in sizes {
        // Nearest power-of-two reduction tree under the budget.
        let levels = ((size.max(2) + 1) as f64).log2().floor() as usize;
        netlists.push((
            "tree".to_string(),
            balanced_tree(levels.max(1), CellKind::Nor2),
        ));
    }
    for &size in sizes {
        let config = DagConfig::with_gate_budget(size.max(1), 0xC17 + size as u64);
        netlists.push(("dag".to_string(), random_dag(&config)));
    }
    netlists
}

/// Runs the sweep: characterize once, then time every generated circuit.
///
/// # Errors
///
/// Propagates characterization and propagation failures.
pub fn run_netlist_sweep(options: &NetlistSweepOptions) -> Result<NetlistSweepReport, StaError> {
    let threads = par::resolve_threads(options.threads);
    let technology = Technology::cmos_130nm();
    let library = ModelLibrary::characterize_parallel(
        &technology,
        &[CellKind::Inverter, CellKind::Nand2, CellKind::Nor2],
        &options.config,
        threads,
    )?;

    let mut cases = Vec::new();
    let mut seen_topology: Vec<String> = Vec::new();
    for (topology, netlist) in sweep_netlists(&options.sizes) {
        let graph = netlist.to_gate_graph()?;
        let levels = graph.topological_levels()?.len();
        let drives = batch_input_drives(&graph, technology.vdd);
        // The simulated window must cover the accumulated path delay, so it
        // scales with the circuit depth.
        let window = 2e-9 + 0.4e-9 * levels as f64;
        let calculator = DelayCalculator::new(
            DelayBackend::CompleteMcsm,
            CsmSimOptions::new(window, options.dt),
            technology.vdd,
        );
        let timing_options = TimingOptions::new(calculator, 2e-15).with_threads(threads);

        let mut best = f64::INFINITY;
        let mut parallel_result = None;
        for _ in 0..options.repeats.max(1) {
            let start = Instant::now();
            let result = propagate(&graph, &library, &drives, &timing_options)?;
            best = best.min(start.elapsed().as_secs_f64());
            parallel_result = Some(result);
        }
        let parallel_result = parallel_result.expect("at least one repeat");

        // First (smallest) circuit of each family: pin the determinism
        // contract on generated workloads too.
        let bit_identical = if seen_topology.contains(&topology) {
            None
        } else {
            seen_topology.push(topology.clone());
            let sequential = propagate(
                &graph,
                &library,
                &drives,
                &timing_options.clone().with_threads(1),
            )?;
            let mut nets: Vec<_> = sequential.nets().collect();
            nets.sort();
            Some(nets.into_iter().all(|net| {
                match (sequential.waveform(net), parallel_result.waveform(net)) {
                    (Ok(a), Ok(b)) => a == b,
                    _ => false,
                }
            }))
        };

        cases.push(SweepCase {
            topology,
            circuit: netlist.name().to_string(),
            gates: netlist.gate_count(),
            levels,
            seconds: best,
            bit_identical,
        });
    }

    Ok(NetlistSweepReport { threads, cases })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_netlists_cover_every_family_at_every_size() {
        let netlists = sweep_netlists(&[8, 16]);
        assert_eq!(netlists.len(), 6);
        assert_eq!(netlists.iter().filter(|(t, _)| t == "chain").count(), 2);
        // Deterministic: a second call builds identical circuits.
        let again = sweep_netlists(&[8, 16]);
        for ((ta, na), (tb, nb)) in netlists.iter().zip(&again) {
            assert_eq!(ta, tb);
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn report_serializes_and_flags_identity() {
        let report = NetlistSweepReport {
            threads: 2,
            cases: vec![SweepCase {
                topology: "chain".into(),
                circuit: "nand_chain_8".into(),
                gates: 8,
                levels: 8,
                seconds: 0.5,
                bit_identical: Some(true),
            }],
        };
        assert!(report.all_identical());
        assert!((report.cases[0].gates_per_second() - 16.0).abs() < 1e-9);
        let json = report.to_json();
        let cases = json.require("cases").unwrap().as_array().unwrap();
        assert_eq!(
            cases[0].require("gates_per_second").unwrap().as_f64(),
            Some(16.0)
        );
        let reparsed = JsonValue::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(reparsed, json);
    }

    #[test]
    fn tiny_sweep_runs_end_to_end() {
        let options = NetlistSweepOptions {
            threads: 2,
            sizes: vec![4],
            config: CharacterizationConfig::coarse(),
            dt: 8e-12,
            repeats: 1,
        };
        let report = run_netlist_sweep(&options).unwrap();
        assert_eq!(report.cases.len(), 3);
        assert!(report.all_identical());
        for case in &report.cases {
            assert!(case.gates > 0 && case.levels > 0);
            assert!(case.seconds > 0.0);
            assert_eq!(case.bit_identical, Some(true), "{}", case.circuit);
        }
    }
}
