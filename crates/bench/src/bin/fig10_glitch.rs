//! Figure 10: using the MCSM to model an output glitch caused by a narrow input
//! pulse, compared against the transistor-level reference.

use mcsm_bench::{fast_or, fig10_glitch, print_header, print_row, print_waveform_csv, Setup};
use mcsm_core::config::CharacterizationConfig;

fn main() {
    let setup = Setup::new();
    // MCSM_BENCH_FAST=1 uses coarse tables and time steps for CI smoke runs.
    let (mcsm, _, _) = setup
        .characterize_nor2(&fast_or(
            CharacterizationConfig::coarse(),
            CharacterizationConfig::standard(),
        ))
        .expect("characterization failed");
    let data = fig10_glitch(
        &setup,
        &mcsm,
        200e-12,
        fast_or(6e-12, 2e-12),
        fast_or(2e-12, 0.5e-12),
    )
    .expect("figure 10 experiment failed");

    print_header(
        "Fig. 10 — output glitch (input B pulse, A low, FO2 load)",
        &["quantity", "SPICE", "MCSM"],
    );
    print_row(&[
        "glitch depth [V]".into(),
        format!("{:.4}", data.spice_glitch_depth),
        format!("{:.4}", data.mcsm_glitch_depth),
    ]);
    println!("\nwaveform RMSE / Vdd: {:.4}", data.normalized_rmse);
    println!();
    print_waveform_csv("OUT (SPICE)", &data.spice_output, 400);
    print_waveform_csv("OUT (MCSM)", &data.mcsm_output, 400);
}
