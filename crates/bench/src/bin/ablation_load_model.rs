//! Ablation study (DESIGN.md §5): how the two modeling knobs that are *not*
//! dictated by the paper affect accuracy.
//!
//! 1. **Receiver Miller factor** — the lumped-load equivalent of a fanout gate
//!    counts the receivers' gate–drain capacitance once (factor 1.0) up to twice
//!    (factor 2.0, full Miller doubling). The sweep shows how the MCSM's delay
//!    error against the transistor-level reference depends on that choice.
//! 2. **Selective-modeling threshold** — the load-to-cell-capacitance ratio at
//!    which the simple (internal-node-blind) MIS model becomes acceptable.

use mcsm_bench::{ps, Setup};
use mcsm_cells::load::FanoutLoad;
use mcsm_cells::stimuli::InputHistory;
use mcsm_cells::testbench::{CellTestbench, LoadSpec};
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::selective::SelectivePolicy;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform, Simulation};
use mcsm_spice::analysis::TranOptions;

fn main() {
    let setup = Setup::new();
    let vdd = setup.technology.vdd;
    let (mcsm, _, _) = setup
        .characterize_nor2(&CharacterizationConfig::standard())
        .expect("characterization failed");

    // Reference: slow-history '11' -> '00' transition at FO1 and FO4.
    let t_first = 1e-9;
    let t_final = 2e-9;
    let transition = 50e-12;
    let event = t_final + 0.5 * transition;
    let history = InputHistory::nor2_slow_case(vdd, transition, t_first, t_final);
    let a = DriveWaveform::Analytic(history.waveforms()[0].clone());
    let b = DriveWaveform::Analytic(history.waveforms()[1].clone());

    println!("# Ablation 1 — receiver Miller factor (slow history)");
    println!("fanout | factor | SPICE delay [ps] | MCSM delay [ps] | error [%]");
    println!("------------------------------------------------------------------");
    for fanout in [1usize, 4] {
        let mut bench = CellTestbench::new(&setup.nor2, &LoadSpec::Fanout(fanout))
            .expect("bench construction failed");
        bench.apply_history(&history).expect("history applies");
        let reference = bench
            .run_transient(&TranOptions::new(3.2e-9, 2e-12))
            .expect("reference transient failed");
        let spice_delay = reference
            .node("out")
            .expect("output recorded")
            .crossing(0.5 * vdd, true)
            .expect("output rises")
            - event;

        for factor in [1.0, 1.25, 1.5, 1.75, 2.0] {
            let load = FanoutLoad::new(setup.technology.clone(), fanout)
                .capacitance_with_miller_factor(factor);
            let out = Simulation::of(&mcsm)
                .inputs(&[a.clone(), b.clone()])
                .load(load)
                .initial_output(0.0)
                .options(CsmSimOptions::new(3.2e-9, 0.5e-12))
                .run()
                .expect("model simulation failed")
                .output;
            let delay = out.crossing(0.5 * vdd, true).expect("model output rises") - event;
            println!(
                "FO{fanout}    | {factor:.2}   | {} | {} | {:+.2}",
                ps(spice_delay),
                ps(delay),
                100.0 * (delay - spice_delay) / spice_delay
            );
        }
    }

    println!();
    println!("# Ablation 2 — selective-modeling threshold");
    println!("threshold | FO where the simple model takes over");
    println!("------------------------------------------------");
    for threshold in [2.0, 4.0, 8.0, 16.0] {
        let policy = SelectivePolicy::new(threshold);
        let mut switch_at = None;
        for fanout in 1..=32usize {
            let load = FanoutLoad::new(setup.technology.clone(), fanout).equivalent_capacitance();
            if policy.choose(&mcsm, load) == mcsm_core::selective::ModelChoice::SimpleMis {
                switch_at = Some(fanout);
                break;
            }
        }
        match switch_at {
            Some(fo) => println!("{threshold:>9.1} | FO{fo}"),
            None => println!("{threshold:>9.1} | never (complete MCSM everywhere)"),
        }
    }
}
