//! The `trace_check` binary: validates a Chrome trace-event JSON file.
//!
//! ```text
//! trace_check PATH [--min-spans N] [--require NAME]...
//! ```
//!
//! * `PATH` — trace file written by `MCSM_TRACE_OUT`, `--trace-out` or the
//!   `trace` RPC.
//! * `--min-spans N` — fail unless at least `N` complete (`"ph":"X"`) span
//!   events are present (default 1).
//! * `--require NAME` — fail unless some span's name contains `NAME`
//!   (repeatable; e.g. `--require rpc. --require netsim.level` proves the
//!   trace nests from the serve loop down into the simulator).
//!
//! CI runs this against the smoke-session trace to gate trace validity: the
//! file must parse, carry the `traceEvents` array, and contain the expected
//! span names — a silently empty or malformed trace fails the step.

use mcsm_num::json::JsonValue;
use std::process::ExitCode;

struct Args {
    path: String,
    min_spans: usize,
    require: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut path = None;
    let mut min_spans = 1usize;
    let mut require = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--min-spans" => {
                min_spans = value("--min-spans")?
                    .parse()
                    .map_err(|e| format!("--min-spans: {e}"))?;
            }
            "--require" => require.push(value("--require")?),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err("expected exactly one trace file path".to_string());
                }
            }
        }
    }
    Ok(Args {
        path: path.ok_or("usage: trace_check PATH [--min-spans N] [--require NAME]...")?,
        min_spans,
        require,
    })
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("cannot read {}: {e}", args.path))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("{} is not JSON: {}", args.path, e.0))?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| format!("{} has no `traceEvents` field", args.path))?;
    let JsonValue::Array(events) = events else {
        return Err(format!("{}: `traceEvents` is not an array", args.path));
    };
    let names: Vec<&str> = events
        .iter()
        .filter(|event| event.get("ph").and_then(|ph| ph.as_str()) == Some("X"))
        .filter_map(|event| event.get("name").and_then(|name| name.as_str()))
        .collect();
    println!(
        "trace_check: {} — {} events, {} complete spans",
        args.path,
        events.len(),
        names.len()
    );
    if names.len() < args.min_spans {
        return Err(format!(
            "only {} complete spans, need at least {}",
            names.len(),
            args.min_spans
        ));
    }
    for needle in &args.require {
        if !names.iter().any(|name| name.contains(needle.as_str())) {
            return Err(format!("no span name contains `{needle}`"));
        }
        println!("trace_check: found required span `{needle}`");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("trace_check: {message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("trace_check: {message}");
            ExitCode::FAILURE
        }
    }
}
