//! Figure 5: history-induced delay difference of the NOR2 `'11' → '00'`
//! transition as a function of the output load (FO1 … FO8).

use mcsm_bench::{fast_or, fig05_delay_vs_load, print_header, print_row, ps, Setup};

fn main() {
    let setup = Setup::new();
    // MCSM_BENCH_FAST=1 trims the fanout sweep and coarsens the time step.
    let fanouts: Vec<usize> = fast_or(vec![1, 2, 4], (1..=8).collect());
    let rows = fig05_delay_vs_load(&setup, &fanouts, fast_or(6e-12, 2e-12))
        .expect("figure 5 simulation failed");
    print_header(
        "Fig. 5 — delay difference between the two input histories vs. output load",
        &[
            "load",
            "fast delay [ps]",
            "slow delay [ps]",
            "difference [%]",
        ],
    );
    for row in rows {
        print_row(&[
            format!("FO{}", row.fanout),
            ps(row.delay_fast),
            ps(row.delay_slow),
            format!("{:.2}", row.difference_percent),
        ]);
    }
}
