//! Figure 11: a simultaneous multiple-input-switching event on a NOR2 —
//! MCSM vs. the SIS CSM of reference \[5\] vs. the transistor-level reference.

use mcsm_bench::{fast_or, fig11_mis_vs_sis, print_header, print_row, print_waveform_csv, Setup};
use mcsm_core::config::CharacterizationConfig;

fn main() {
    let setup = Setup::new();
    // MCSM_BENCH_FAST=1 uses coarse tables and time steps for CI smoke runs.
    let (mcsm, _, sis) = setup
        .characterize_nor2(&fast_or(
            CharacterizationConfig::coarse(),
            CharacterizationConfig::standard(),
        ))
        .expect("characterization failed");
    let data = fig11_mis_vs_sis(
        &setup,
        &mcsm,
        &sis,
        2,
        fast_or(6e-12, 2e-12),
        fast_or(2e-12, 0.5e-12),
    )
    .expect("figure 11 experiment failed");

    print_header(
        "Fig. 11 — simultaneous switching: MCSM vs. SIS CSM vs. SPICE (FO2)",
        &["model", "delay error [%]", "waveform nRMSE"],
    );
    print_row(&[
        "MCSM".into(),
        format!("{:.2}", data.mcsm_delay_error_percent),
        format!("{:.4}", data.mcsm_nrmse),
    ]);
    print_row(&[
        "SIS CSM".into(),
        format!("{:.2}", data.sis_delay_error_percent),
        format!("{:.4}", data.sis_nrmse),
    ]);
    println!();
    print_waveform_csv("OUT (SPICE)", &data.spice_output, 400);
    print_waveform_csv("OUT (MCSM)", &data.mcsm_output, 400);
    print_waveform_csv("OUT (SIS CSM)", &data.sis_output, 400);
}
