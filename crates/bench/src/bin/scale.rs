//! The `scale` experiment binary: arena-construction, levelization and
//! streaming-simulation throughput on `scale_free_dag` circuits at
//! 10k / 100k / 1M gates, with peak-RSS snapshots. Writes `BENCH_scale.json`.
//!
//! ```text
//! scale [--threads N] [--out PATH] [--max-live-frac X]
//! ```
//!
//! * `--threads N` — worker threads for the simulated tiers (default `0` =
//!   auto from `MCSM_THREADS` / the machine).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_scale.json` in the working directory).
//! * `--max-live-frac X` — CI memory gate: exit non-zero if any streamed run
//!   kept more than `X * nets` waveforms live at once (default `0.1`;
//!   streamed-vs-full identity failures always exit non-zero).
//!
//! `MCSM_BENCH_FAST=1` keeps the 1M tier build-and-levelize only.

use mcsm_bench::{run_scale_sweep, write_json_report, ScaleOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    threads: usize,
    out: PathBuf,
    max_live_frac: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("BENCH_scale.json"),
        max_live_frac: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--max-live-frac" => {
                args.max_live_frac = Some(
                    value("--max-live-frac")?
                        .parse()
                        .map_err(|e| format!("--max-live-frac: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("scale: {message}");
            return ExitCode::FAILURE;
        }
    };

    let mut options = ScaleOptions::for_threads(args.threads);
    if let Some(frac) = args.max_live_frac {
        options.max_live_frac = frac;
    }
    println!(
        "# scale experiment: tiers {:?}, {} threads{}",
        options
            .tiers
            .iter()
            .map(|tier| tier.gates)
            .collect::<Vec<_>>(),
        mcsm_num::par::resolve_threads(args.threads),
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_scale_sweep(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("scale: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "circuit | gates | nets | levels | build s | levelize s | build gates/s | peak RSS MiB | sim s | sim gates/s | live frac | identical"
    );
    for case in &report.cases {
        let (sim_s, sim_gps, live, identical) = match &case.sim {
            Some(sim) => (
                format!("{:.4}", sim.sim_seconds),
                format!("{:.0}", sim.gates_per_second),
                format!("{:.4}", sim.live_fraction),
                sim.streamed_identical
                    .map_or_else(|| "-".to_string(), |ok| ok.to_string()),
            ),
            None => ("-".into(), "-".into(), "-".into(), "-".into()),
        };
        println!(
            "{} | {} | {} | {} | {:.4} | {:.4} | {:.0} | {:.1} | {} | {} | {} | {}",
            case.circuit,
            case.gates,
            case.nets,
            case.levels,
            case.build_seconds,
            case.levelize_seconds,
            case.build_gates_per_second,
            case.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            sim_s,
            sim_gps,
            live,
            identical,
        );
    }

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("scale: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    let failures = report.gate_failures();
    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("scale: {failure}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
