//! Figure 4: NOR2 output waveforms for the `'11' → '00'` transition under two
//! different input histories (FO2 load).

use mcsm_bench::{
    fast_or, fig04_history_outputs, print_header, print_row, print_waveform_csv, ps, Setup,
};

fn main() {
    let setup = Setup::new();
    // MCSM_BENCH_FAST=1 coarsens the reference time step for CI smoke runs.
    let data =
        fig04_history_outputs(&setup, fast_or(6e-12, 2e-12)).expect("figure 4 simulation failed");
    print_header(
        "Fig. 4 — output delay of the '11'->'00' transition under two histories (FO2)",
        &["history", "50% delay [ps]"],
    );
    print_row(&["fast ('10'->'11'->'00')".into(), ps(data.delay_fast)]);
    print_row(&["slow ('01'->'11'->'00')".into(), ps(data.delay_slow)]);
    println!(
        "\ndelay difference: {:.2} %",
        100.0 * (data.delay_slow - data.delay_fast) / data.delay_fast
    );
    println!();
    print_waveform_csv("Out1 (fast history)", &data.fast.output, 400);
    print_waveform_csv("Out2 (slow history)", &data.slow.output, 400);
}
