//! The `netlist_sweep` experiment binary: times STA over generated chains,
//! trees and random DAGs and writes `BENCH_netlist.json`.
//!
//! ```text
//! netlist_sweep [--threads N] [--out PATH]
//! ```
//!
//! * `--threads N` — worker threads for the timed propagation (default `0` =
//!   auto from `MCSM_THREADS` / the machine).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_netlist.json` in the working directory).
//!
//! Exits non-zero if any performed sequential-vs-parallel bit-identity check
//! fails. `MCSM_BENCH_FAST=1` shrinks sizes and grids for smoke runs.

use mcsm_bench::{run_netlist_sweep, write_json_report, NetlistSweepOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    threads: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("BENCH_netlist.json"),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("netlist_sweep: {message}");
            return ExitCode::FAILURE;
        }
    };

    let options = NetlistSweepOptions::for_threads(args.threads);
    println!(
        "# netlist sweep: sizes {:?}, {} threads{}",
        options.sizes,
        mcsm_num::par::resolve_threads(args.threads),
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_netlist_sweep(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("netlist_sweep: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!("topology | circuit | gates | levels | seconds | gates/s | identical");
    for case in &report.cases {
        println!(
            "{} | {} | {} | {} | {:.4} | {:.1} | {}",
            case.topology,
            case.circuit,
            case.gates,
            case.levels,
            case.seconds,
            case.gates_per_second(),
            match case.bit_identical {
                Some(true) => "yes",
                Some(false) => "NO",
                None => "-",
            }
        );
    }

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("netlist_sweep: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !report.all_identical() {
        eprintln!("netlist_sweep: parallel results differ from sequential results");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
