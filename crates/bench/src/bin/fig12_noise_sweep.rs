//! Figure 12: delay error of the MCSM vs. the noise-injection (aggressor
//! arrival) time in the coupled victim/aggressor scenario, plus the average
//! waveform RMSE (the paper reports 1.4 % of Vdd).
//!
//! The paper sweeps 2 ns … 3 ns in 10 ps steps (101 reference simulations); the
//! default here uses 25 ps steps to keep the runtime moderate. Set the
//! environment variable `MCSM_FIG12_STEP_PS` to override (e.g. `10` for the
//! paper's resolution).

use mcsm_bench::{fast_or, fig12_noise_sweep, print_header, print_row, Setup};
use mcsm_core::config::CharacterizationConfig;

fn main() {
    // MCSM_BENCH_FAST=1 widens the default injection-time step and coarsens
    // tables/time steps for CI smoke runs.
    let step_ps: f64 = std::env::var("MCSM_FIG12_STEP_PS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fast_or(250.0, 25.0));
    let setup = Setup::new();
    let (mcsm, _, _) = setup
        .characterize_nor2(&fast_or(
            CharacterizationConfig::coarse(),
            CharacterizationConfig::standard(),
        ))
        .expect("characterization failed");
    let points = fig12_noise_sweep(
        &setup,
        &mcsm,
        step_ps * 1e-12,
        fast_or(6e-12, 2e-12),
        fast_or(2e-12, 0.5e-12),
    )
    .expect("figure 12 sweep failed");

    print_header(
        "Fig. 12 — delay error vs. noise injection time (50 fF coupling, FO2 NOR2)",
        &[
            "injection time [ns]",
            "delay error [ps]",
            "nRMSE [% of Vdd]",
        ],
    );
    let mut rmse_sum = 0.0;
    for p in &points {
        print_row(&[
            format!("{:.3}", p.injection_time * 1e9),
            format!("{:.2}", p.delay_error * 1e12),
            format!("{:.2}", p.normalized_rmse * 100.0),
        ]);
        rmse_sum += p.normalized_rmse;
    }
    println!();
    println!(
        "average RMSE: {:.2} % of Vdd over {} points (paper: 1.4 %)",
        100.0 * rmse_sum / points.len() as f64,
        points.len()
    );
}
