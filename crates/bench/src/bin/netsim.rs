//! The `netsim` experiment binary: times the event-driven netlist transient
//! simulator over generated chains, trees and random DAGs per model family
//! and writes `BENCH_netsim.json`.
//!
//! ```text
//! netsim [--threads N] [--out PATH] [--min-speedup X]
//! ```
//!
//! * `--threads N` — worker threads for the parallel passes (default `0` =
//!   auto from `MCSM_THREADS` / the machine).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_netsim.json` in the working directory).
//! * `--min-speedup X` — CI perf gate: exit non-zero unless the aggregate
//!   sequential-over-parallel speedup of the full-activity tree/DAG cases is
//!   at least `X` (chains are width-1, so level parallelism cannot apply to
//!   them; bit-identity failures always exit non-zero).
//!
//! `MCSM_BENCH_FAST=1` shrinks sizes and grids for smoke runs.

use mcsm_bench::{run_netsim_sweep, write_json_report, NetsimSweepOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    threads: usize,
    out: PathBuf,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("BENCH_netsim.json"),
        min_speedup: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("netsim: {message}");
            return ExitCode::FAILURE;
        }
    };

    let options = NetsimSweepOptions::for_threads(args.threads);
    println!(
        "# netsim experiment: sizes {:?}, {} threads{}",
        options.sizes,
        mcsm_num::par::resolve_threads(args.threads),
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_netsim_sweep(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("netsim: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "family | topology | circuit | activity | gates | simulated | skipped | seq s | par s | gates/s | speedup | identical"
    );
    for case in &report.cases {
        println!(
            "{} | {} | {} | {} | {} | {} | {} | {:.4} | {:.4} | {:.1} | {:.2}x | {}",
            case.family,
            case.topology,
            case.circuit,
            case.activity,
            case.gates,
            case.gates_simulated,
            case.gates_skipped,
            case.seq_seconds,
            case.par_seconds,
            case.gates_per_second(),
            case.speedup(),
            case.bit_identical,
        );
    }
    println!(
        "overall speedup (full-activity cases): {:.2}x",
        report.overall_speedup()
    );
    println!(
        "parallel speedup (full-activity trees/DAGs): {:.2}x",
        report.parallel_speedup()
    );

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("netsim: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !report.all_identical() {
        eprintln!("netsim: parallel waveforms differ from the sequential run");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_speedup {
        let speedup = report.parallel_speedup();
        if speedup < min {
            eprintln!("netsim: parallel speedup {speedup:.2}x is below the {min:.2}x gate");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
