//! The `sim_hotpath` experiment binary: times the cursor-accelerated LUT fast
//! path against the retained allocating reference path, per model family, and
//! writes `BENCH_sim.json`.
//!
//! ```text
//! sim_hotpath [--out PATH] [--min-speedup X]
//! ```
//!
//! * `--out PATH` — where to write the JSON report (default `BENCH_sim.json`
//!   in the working directory).
//! * `--min-speedup X` — CI perf gate: exit non-zero unless the fast path is
//!   at least `X` times faster than the reference path overall (and every
//!   family's outputs are bit-identical across the paths).
//!
//! `MCSM_BENCH_FAST=1` shrinks circuits and grids for smoke runs.

use mcsm_bench::{run_sim_hotpath, write_json_report, SimHotpathOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("BENCH_sim.json"),
        min_speedup: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sim_hotpath: {message}");
            return ExitCode::FAILURE;
        }
    };

    let options = SimHotpathOptions::default_sweep();
    println!(
        "# sim_hotpath experiment: LUT fast path vs reference{}",
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_sim_hotpath(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("sim_hotpath: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!("gates per family pass: {}", report.gates);
    for case in &report.cases {
        println!(
            "{:>13}: {:.0} steps/s fast vs {:.0} steps/s reference ({:.2}x, {:.2}M evals/s, bit-identical: {})",
            case.family,
            case.fast_steps_per_second(),
            case.reference_steps_per_second(),
            case.speedup(),
            case.fast_evals_per_second() / 1e6,
            case.bit_identical,
        );
    }
    println!("overall speedup: {:.2}x", report.overall_speedup());

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("sim_hotpath: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !report.all_identical() {
        eprintln!("sim_hotpath: fast-path results differ from the reference path");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_speedup {
        let speedup = report.overall_speedup();
        if speedup < min {
            eprintln!("sim_hotpath: overall speedup {speedup:.2}x is below the {min:.2}x gate");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
