//! The `sim_hotpath` experiment binary: times the cursor-accelerated LUT fast
//! path against the retained allocating reference path, per model family, and
//! writes `BENCH_sim.json`.
//!
//! ```text
//! sim_hotpath [--out PATH] [--min-speedup X] [--max-obs-overhead PCT]
//! ```
//!
//! * `--out PATH` — where to write the JSON report (default `BENCH_sim.json`
//!   in the working directory).
//! * `--min-speedup X` — CI perf gate: exit non-zero unless the fast path is
//!   at least `X` times faster than the reference path overall (and every
//!   family's outputs are bit-identical across the paths).
//! * `--max-obs-overhead PCT` — CI observability gate: re-run the
//!   complete-MCSM workload with `mcsm-obs` disarmed vs armed (interleaved,
//!   best-of) and exit non-zero if arming costs more than `PCT` percent —
//!   the "tracing is free when off" guarantee, measured within one process
//!   so shared-runner noise cancels.
//!
//! `MCSM_BENCH_FAST=1` shrinks circuits and grids for smoke runs.

use mcsm_bench::{measure_obs_overhead, run_sim_hotpath, write_json_report, SimHotpathOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    min_speedup: Option<f64>,
    max_obs_overhead: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("BENCH_sim.json"),
        min_speedup: None,
        max_obs_overhead: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                );
            }
            "--max-obs-overhead" => {
                args.max_obs_overhead = Some(
                    value("--max-obs-overhead")?
                        .parse()
                        .map_err(|e| format!("--max-obs-overhead: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sim_hotpath: {message}");
            return ExitCode::FAILURE;
        }
    };

    let options = SimHotpathOptions::default_sweep();
    println!(
        "# sim_hotpath experiment: LUT fast path vs reference{}",
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_sim_hotpath(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("sim_hotpath: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!("gates per family pass: {}", report.gates);
    for case in &report.cases {
        println!(
            "{:>13}: {:.0} steps/s fast vs {:.0} steps/s reference ({:.2}x, {:.2}M evals/s, bit-identical: {})",
            case.family,
            case.fast_steps_per_second(),
            case.reference_steps_per_second(),
            case.speedup(),
            case.fast_evals_per_second() / 1e6,
            case.bit_identical,
        );
    }
    println!("overall speedup: {:.2}x", report.overall_speedup());

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("sim_hotpath: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !report.all_identical() {
        eprintln!("sim_hotpath: fast-path results differ from the reference path");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_speedup {
        let speedup = report.overall_speedup();
        if speedup < min {
            eprintln!("sim_hotpath: overall speedup {speedup:.2}x is below the {min:.2}x gate");
            return ExitCode::FAILURE;
        }
    }
    if let Some(max) = args.max_obs_overhead {
        let overhead = match measure_obs_overhead(&options) {
            Ok(overhead) => overhead,
            Err(error) => {
                eprintln!("sim_hotpath: obs-overhead measurement failed: {error}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "obs overhead: {:.2}% (disarmed {:.3}s, armed {:.3}s)",
            overhead.overhead_percent(),
            overhead.disabled_seconds,
            overhead.armed_seconds
        );
        if overhead.overhead_percent() > max {
            eprintln!(
                "sim_hotpath: obs overhead {:.2}% exceeds the {max:.2}% gate",
                overhead.overhead_percent()
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
