//! The `server` experiment binary: drives a resident `mcsm-serve` engine
//! through the JSON-RPC protocol over generated chains, trees and DAGs and
//! writes `BENCH_server.json`.
//!
//! ```text
//! server [--threads N] [--out PATH] [--min-warm-ratio X]
//! ```
//!
//! * `--threads N` — worker threads of the resident session (default `0` =
//!   auto from `MCSM_THREADS` / the machine).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_server.json` in the working directory).
//! * `--min-warm-ratio X` — CI perf gate: exit non-zero unless the aggregate
//!   cold-over-warm full-evaluation ratio is at least `X` (warm runs answer
//!   from the waveform memo; bit-identity failures always exit non-zero).
//!
//! `MCSM_BENCH_FAST=1` shrinks sizes and grids for smoke runs.

use mcsm_bench::{run_server_sweep, write_json_report, ServerSweepOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    threads: usize,
    out: PathBuf,
    min_warm_ratio: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("BENCH_server.json"),
        min_warm_ratio: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--min-warm-ratio" => {
                args.min_warm_ratio = Some(
                    value("--min-warm-ratio")?
                        .parse()
                        .map_err(|e| format!("--min-warm-ratio: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("server: {message}");
            return ExitCode::FAILURE;
        }
    };

    let options = ServerSweepOptions::for_threads(args.threads);
    println!(
        "# server experiment: sizes {:?}, {} threads{}",
        options.sizes,
        mcsm_num::par::resolve_threads(args.threads),
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_server_sweep(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("server: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!("topology | circuit | gates | cold s | warm s | warm ratio | queries/s | identical");
    for case in &report.cases {
        println!(
            "{} | {} | {} | {:.4} | {:.4} | {:.2}x | {:.1} | {}",
            case.topology,
            case.circuit,
            case.gates,
            case.cold_seconds,
            case.warm_seconds,
            case.warm_ratio(),
            case.queries_per_second(),
            case.bit_identical,
        );
    }
    println!(
        "overall warm ratio (cold/warm full evaluations): {:.2}x",
        report.overall_warm_ratio()
    );
    println!(
        "fault drill ({}): {} recovered requests, {} gate recoveries, bit-identical: {}",
        report.fault_drill.circuit,
        report.fault_drill.recovered_requests,
        report.fault_drill.gate_recoveries,
        report.fault_drill.bit_identical,
    );

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("server: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !report.all_identical() {
        eprintln!("server: warm waveforms differ from the cold run");
        return ExitCode::FAILURE;
    }
    if !report.fault_drill.bit_identical {
        eprintln!("server: fault drill did not settle on the clean bits");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_warm_ratio {
        let ratio = report.overall_warm_ratio();
        if ratio < min {
            eprintln!("server: warm ratio {ratio:.2}x is below the {min:.2}x gate");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
