//! Figure 9 (plus the headline 4 % / 22 % claim): MCSM and baseline-MIS accuracy
//! against the transistor-level reference for the fast and slow input histories.

use mcsm_bench::{fast_or, fig09_mcsm_accuracy, print_header, print_row, ps, Setup};
use mcsm_core::config::CharacterizationConfig;

fn main() {
    let setup = Setup::new();
    // MCSM_BENCH_FAST=1 uses coarse tables and time steps for CI smoke runs.
    let config = fast_or(
        CharacterizationConfig::coarse(),
        CharacterizationConfig::standard(),
    );
    let (mcsm, baseline, _) = setup
        .characterize_nor2(&config)
        .expect("characterization failed");
    let data = fig09_mcsm_accuracy(
        &setup,
        &mcsm,
        &baseline,
        1,
        fast_or(6e-12, 2e-12),
        fast_or(2e-12, 0.5e-12),
    )
    .expect("figure 9 experiment failed");

    print_header(
        "Fig. 9 — MCSM vs. baseline MIS CSM vs. SPICE (FO1, both histories)",
        &[
            "history",
            "SPICE delay [ps]",
            "MCSM delay [ps]",
            "baseline delay [ps]",
            "MCSM err [%]",
            "baseline err [%]",
            "MCSM nRMSE",
            "baseline nRMSE",
        ],
    );
    for case in &data.cases {
        print_row(&[
            case.label.to_string(),
            ps(case.spice_delay),
            ps(case.mcsm_delay),
            ps(case.baseline_delay),
            format!("{:.2}", case.mcsm_error_percent),
            format!("{:.2}", case.baseline_error_percent),
            format!("{:.4}", case.mcsm_nrmse),
            format!("{:.4}", case.baseline_nrmse),
        ]);
    }
    println!();
    println!(
        "max delay error: MCSM {:.2} % | baseline MIS {:.2} %  (paper: 4 % vs. 22 %)",
        data.max_mcsm_error_percent, data.max_baseline_error_percent
    );
}
