//! The `seqsim` experiment binary: times clocked sequential simulation over
//! ISCAS-89 s27 and generated register pipelines and writes
//! `BENCH_seqsim.json`.
//!
//! ```text
//! seqsim [--threads N] [--out PATH] [--min-speedup X]
//! ```
//!
//! * `--threads N` — worker threads for the parallel passes (default `0` =
//!   auto from `MCSM_THREADS` / the machine).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_seqsim.json` in the working directory).
//! * `--min-speedup X` — CI perf gate: exit non-zero unless the aggregate
//!   sequential-over-parallel speedup of the pipeline cases is at least `X`
//!   (s27's cone is deep and narrow, so level parallelism cannot apply to
//!   it; bit-identity failures always exit non-zero).
//!
//! `MCSM_BENCH_FAST=1` shrinks pipelines and grids for smoke runs.

use mcsm_bench::{run_seqsim_sweep, write_json_report, SeqsimSweepOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    threads: usize,
    out: PathBuf,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("BENCH_seqsim.json"),
        min_speedup: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("seqsim: {message}");
            return ExitCode::FAILURE;
        }
    };

    let options = SeqsimSweepOptions::for_threads(args.threads);
    println!(
        "# seqsim experiment: {} cycles, pipelines {:?}, {} threads{}",
        options.cycles,
        options.pipelines,
        mcsm_num::par::resolve_threads(args.threads),
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_seqsim_sweep(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("seqsim: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "circuit | gates | regs | cone | cycles | simulated | skipped | seq s | par s | cycles/s | regs/s | speedup | identical"
    );
    for case in &report.cases {
        println!(
            "{} | {} | {} | {} | {} | {} | {} | {:.4} | {:.4} | {:.1} | {:.1} | {:.2}x | {}",
            case.circuit,
            case.gates,
            case.registers,
            case.cone_gates,
            case.cycles,
            case.gates_simulated,
            case.gates_skipped,
            case.seq_seconds,
            case.par_seconds,
            case.cycles_per_second(),
            case.registers_per_second(),
            case.speedup(),
            case.bit_identical,
        );
    }
    println!(
        "parallel speedup (pipeline cases): {:.2}x",
        report.parallel_speedup()
    );

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("seqsim: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !report.all_identical() {
        eprintln!("seqsim: parallel sequential runs differ from the single-threaded run");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_speedup {
        let speedup = report.parallel_speedup();
        if speedup < min {
            eprintln!("seqsim: parallel speedup {speedup:.2}x is below the {min:.2}x gate");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
