//! The `report` binary: merges committed `BENCH_*.json` files into one
//! performance-trajectory table.
//!
//! ```text
//! report [--dir DIR] [--out-md PATH] [--out-json PATH]
//! ```
//!
//! * `--dir DIR` — directory scanned for `BENCH_*.json` (default `.`, the
//!   repo root where the bench binaries write their reports).
//! * `--out-md PATH` — markdown output (default `bench-out/REPORT.md`).
//! * `--out-json PATH` — JSON mirror (default `bench-out/REPORT.json`).
//!
//! The markdown is also printed to stdout. CI runs this after the bench
//! smoke job and uploads both outputs, so headline metrics can be compared
//! across commits without opening each report. A corrupt report fails the
//! run rather than silently dropping out of the table.

use mcsm_bench::{scan_dir, to_json, to_markdown, write_json_report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    dir: PathBuf,
    out_md: PathBuf,
    out_json: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        dir: PathBuf::from("."),
        out_md: PathBuf::from("bench-out/REPORT.md"),
        out_json: PathBuf::from("bench-out/REPORT.json"),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--out-md" => args.out_md = PathBuf::from(value("--out-md")?),
            "--out-json" => args.out_json = PathBuf::from(value("--out-json")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("report: {message}");
            return ExitCode::FAILURE;
        }
    };
    let reports = match scan_dir(&args.dir) {
        Ok(reports) => reports,
        Err(message) => {
            eprintln!("report: {message}");
            return ExitCode::FAILURE;
        }
    };
    let markdown = to_markdown(&reports);
    print!("{markdown}");
    for path in [&args.out_md, &args.out_json] {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out_md, &markdown) {
        eprintln!("report: cannot write {}: {e}", args.out_md.display());
        return ExitCode::FAILURE;
    }
    if let Err(message) = write_json_report(&args.out_json, &to_json(&reports)) {
        eprintln!("report: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "report: merged {} reports into {} and {}",
        reports.len(),
        args.out_md.display(),
        args.out_json.display()
    );
    ExitCode::SUCCESS
}
