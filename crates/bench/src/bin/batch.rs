//! The `batch` experiment binary: times whole-library characterization and
//! level-parallel STA, sequential vs parallel, and writes `BENCH_batch.json`.
//!
//! ```text
//! batch [--threads N] [--out PATH] [--min-speedup X]
//! ```
//!
//! * `--threads N` — worker threads for the parallel passes (default `0` =
//!   auto from `MCSM_THREADS` / the machine).
//! * `--out PATH` — where to write the JSON report (default
//!   `BENCH_batch.json` in the working directory).
//! * `--min-speedup X` — CI perf gate: exit non-zero unless the parallel
//!   characterization is at least `X` times faster than sequential (and both
//!   parallel passes are bit-identical to their sequential references).
//!
//! `MCSM_BENCH_FAST=1` shrinks grids and netlist sizes for smoke runs.

use mcsm_bench::{run_batch, write_json_report, BatchOptions};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    threads: usize,
    out: PathBuf,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads: 0,
        out: PathBuf::from("BENCH_batch.json"),
        min_speedup: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| iter.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("--min-speedup: {e}"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("batch: {message}");
            return ExitCode::FAILURE;
        }
    };

    let options = BatchOptions::for_threads(args.threads);
    println!(
        "# batch experiment: {} cells, {} threads{}",
        options.kinds.len(),
        mcsm_num::par::resolve_threads(args.threads),
        if mcsm_bench::fast_mode() {
            " (fast mode)"
        } else {
            ""
        }
    );
    let report = match run_batch(&options) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("batch: experiment failed: {error}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "characterization: {:.2}s sequential, {:.2}s on {} threads ({:.2}x, bit-identical: {})",
        report.characterize_sequential_seconds,
        report.characterize_parallel_seconds,
        report.threads,
        report.characterize_speedup(),
        report.characterization_identical,
    );
    println!(
        "sta ({} gates, {} levels): {:.2}s sequential, {:.2}s parallel ({:.2}x, bit-identical: {}, cache {}/{} hits)",
        report.sta_gates,
        report.sta_levels,
        report.sta_sequential_seconds,
        report.sta_parallel_seconds,
        report.sta_speedup(),
        report.sta_identical,
        report.sta_cache_hits,
        report.sta_cache_hits + report.sta_cache_misses,
    );

    if let Err(message) = write_json_report(&args.out, &report.to_json()) {
        eprintln!("batch: {message}");
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out.display());

    if !report.characterization_identical || !report.sta_identical {
        eprintln!("batch: parallel results differ from sequential results");
        return ExitCode::FAILURE;
    }
    if let Some(min) = args.min_speedup {
        let speedup = report.characterize_speedup();
        if speedup < min {
            eprintln!("batch: characterization speedup {speedup:.2}x is below the {min:.2}x gate");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
