//! Figure 3: internal-node voltage of a NOR2 under two input histories.
//!
//! Prints the internal-node voltage just before the final `'11' → '00'`
//! transition for both histories, plus the full waveforms as CSV.

use mcsm_bench::{
    fast_or, fig03_internal_node, print_header, print_row, print_waveform_csv, Setup,
};

fn main() {
    let setup = Setup::new();
    // MCSM_BENCH_FAST=1 coarsens the reference time step for CI smoke runs.
    let dt = fast_or(6e-12, 2e-12);
    let data = fig03_internal_node(&setup, dt).expect("figure 3 simulation failed");
    print_header(
        "Fig. 3 — internal node voltage before the final transition",
        &["history", "V(N) just before '00' [V]"],
    );
    print_row(&[
        "'10'->'11'->'00' (fast)".into(),
        format!("{:.4}", data.v_internal_fast),
    ]);
    print_row(&[
        "'01'->'11'->'00' (slow)".into(),
        format!("{:.4}", data.v_internal_slow),
    ]);
    println!();
    print_waveform_csv("N (fast history)", &data.fast.internal, 400);
    print_waveform_csv("N (slow history)", &data.slow.internal, 400);
    print_waveform_csv("A (fast history)", &data.fast.input_a, 200);
    print_waveform_csv("B (fast history)", &data.fast.input_b, 200);
}
