//! Benchmark of the one-time characterization cost (per cell) at different
//! table resolutions — the "library build" side of the flow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsm_bench::Setup;
use mcsm_cells::cell::{CellKind, CellTemplate};
use mcsm_core::characterize::{characterize_mcsm, characterize_sis};
use mcsm_core::config::CharacterizationConfig;
use std::hint::black_box;

fn bench_sis_characterization(c: &mut Criterion) {
    let setup = Setup::new();
    let inverter = CellTemplate::new(CellKind::Inverter, setup.technology.clone());
    let mut group = c.benchmark_group("characterize_sis_inverter");
    group.sample_size(10);
    for (label, config) in [
        ("coarse", CharacterizationConfig::coarse()),
        ("standard", CharacterizationConfig::standard()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| black_box(characterize_sis(&inverter, 0, cfg).unwrap()))
        });
    }
    group.finish();
}

fn bench_mcsm_characterization(c: &mut Criterion) {
    let setup = Setup::new();
    let mut group = c.benchmark_group("characterize_mcsm_nor2");
    group.sample_size(10);
    let config = CharacterizationConfig::coarse();
    group.bench_function("coarse", |b| {
        b.iter(|| black_box(characterize_mcsm(&setup.nor2, &config).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sis_characterization,
    bench_mcsm_characterization
);
criterion_main!(benches);
