//! Ablation benchmark: cost of the 4-D table lookups that dominate MCSM
//! evaluation, as a function of table resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcsm_num::grid::Axis;
use mcsm_num::lut::LutNd;
use std::hint::black_box;

fn build_table(points_per_axis: usize) -> LutNd {
    let axis = || Axis::uniform(-0.1, 1.3, points_per_axis).unwrap();
    LutNd::from_fn(vec![axis(), axis(), axis(), axis()], |v| {
        (v[0] - v[1]) * (v[2] + 0.3) - 0.05 * v[3]
    })
    .unwrap()
}

fn bench_lut_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_eval_4d");
    for points in [5usize, 9, 13] {
        let lut = build_table(points);
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |b, _| {
            let mut q = 0.01;
            b.iter(|| {
                q = (q + 0.137) % 1.2;
                black_box(lut.eval(&[q, 1.2 - q, 0.5 * q, 0.9]).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_lut_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("lut_build_4d");
    group.sample_size(20);
    for points in [5usize, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |b, &p| {
            b.iter(|| black_box(build_table(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lut_eval, bench_lut_build);
criterion_main!(benches);
