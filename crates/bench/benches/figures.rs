//! Cost of regenerating the paper's figures (reduced-resolution versions, so a
//! full `cargo bench` stays affordable). The full-resolution data is produced by
//! the `fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use mcsm_bench::{
    fig03_internal_node, fig04_history_outputs, fig05_delay_vs_load, fig09_mcsm_accuracy,
    fig11_mis_vs_sis, Setup,
};
use mcsm_core::config::CharacterizationConfig;
use std::hint::black_box;

fn bench_history_figures(c: &mut Criterion) {
    let setup = Setup::new();
    let mut group = c.benchmark_group("figures_reference_runs");
    group.sample_size(10);
    group.bench_function("fig03_internal_node", |b| {
        b.iter(|| black_box(fig03_internal_node(&setup, 5e-12).unwrap()))
    });
    group.bench_function("fig04_history_outputs", |b| {
        b.iter(|| black_box(fig04_history_outputs(&setup, 5e-12).unwrap()))
    });
    group.bench_function("fig05_fo1_fo4", |b| {
        b.iter(|| black_box(fig05_delay_vs_load(&setup, &[1, 4], 5e-12).unwrap()))
    });
    group.finish();
}

fn bench_model_figures(c: &mut Criterion) {
    let setup = Setup::new();
    let (mcsm, baseline, sis) = setup
        .characterize_nor2(&CharacterizationConfig::coarse())
        .unwrap();
    let mut group = c.benchmark_group("figures_model_comparisons");
    group.sample_size(10);
    group.bench_function("fig09_accuracy", |b| {
        b.iter(|| {
            black_box(fig09_mcsm_accuracy(&setup, &mcsm, &baseline, 1, 5e-12, 1e-12).unwrap())
        })
    });
    group.bench_function("fig11_mis_vs_sis", |b| {
        b.iter(|| black_box(fig11_mis_vs_sis(&setup, &mcsm, &sis, 2, 5e-12, 1e-12).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_history_figures, bench_model_figures);
criterion_main!(benches);
