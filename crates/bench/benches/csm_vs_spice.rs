//! The efficiency claim behind current-source models: once characterized, a
//! model evaluation (table-driven waveform integration) is orders of magnitude
//! cheaper than a transistor-level transient of the same event.

use criterion::{criterion_group, criterion_main, Criterion};
use mcsm_bench::Setup;
use mcsm_cells::load::FanoutLoad;
use mcsm_cells::stimuli::InputHistory;
use mcsm_cells::testbench::{CellTestbench, LoadSpec};
use mcsm_core::config::CharacterizationConfig;
use mcsm_core::sim::{CsmSimOptions, DriveWaveform, Simulation};
use mcsm_spice::analysis::TranOptions;
use std::hint::black_box;

fn bench_mis_event(c: &mut Criterion) {
    let setup = Setup::new();
    let vdd = setup.technology.vdd;
    let mcsm =
        mcsm_core::characterize::characterize_mcsm(&setup.nor2, &CharacterizationConfig::coarse())
            .unwrap();
    let load = FanoutLoad::new(setup.technology.clone(), 2).equivalent_capacitance();

    let mut group = c.benchmark_group("nor2_mis_event");
    group.sample_size(10);

    // Both simulations advance the same 2 ns event with the same 2 ps base step,
    // so the comparison isolates "table-driven update" vs. "Newton + MNA solve"
    // per time point. The CSM engine sub-steps internally where its state demands
    // it, just as the transient engine halves steps when Newton struggles.
    group.bench_function("mcsm_waveform_eval", |b| {
        let inputs = [
            DriveWaveform::falling_ramp(vdd, 0.5e-9, 60e-12),
            DriveWaveform::falling_ramp(vdd, 0.5e-9, 60e-12),
        ];
        let options = CsmSimOptions::new(2e-9, 2e-12);
        b.iter(|| {
            black_box(
                Simulation::of(&mcsm)
                    .inputs(&inputs)
                    .load(load)
                    .initial_output(0.0)
                    .options(options.clone())
                    .run()
                    .unwrap(),
            )
        })
    });

    group.bench_function("spice_transient", |b| {
        b.iter(|| {
            let mut bench = CellTestbench::new(&setup.nor2, &LoadSpec::Fanout(2)).unwrap();
            let history = InputHistory::simultaneous(
                vdd,
                60e-12,
                vec![true, true],
                vec![false, false],
                0.5e-9,
            );
            bench.apply_history(&history).unwrap();
            black_box(bench.run_transient(&TranOptions::new(2e-9, 2e-12)).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mis_event);
criterion_main!(benches);
