//! Errors produced while building, validating, serializing or lowering a
//! [`crate::Netlist`].

use mcsm_num::json::JsonError;
use mcsm_spice::error::SpiceError;
use std::fmt;

/// Error produced by netlist construction, validation or lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A gate was declared with the wrong number of input nets for its cell
    /// kind (an "unknown pin" in library terms).
    PinCountMismatch {
        /// Instance name of the offending gate.
        gate: String,
        /// Cell name (`INV`, `NOR2`, …).
        cell: String,
        /// Pins the cell has.
        expected: usize,
        /// Nets the gate was given.
        got: usize,
    },
    /// An ECO retype would change the role of a connected pin, or add or drop
    /// a role-bearing register pin — e.g. retyping a NAND2 into a DFF would
    /// turn data pin `B` into clock pin `CLK`. Reported instead of a generic
    /// pin-count mismatch whenever a register kind is involved, naming the
    /// offending pin.
    PinRoleMismatch {
        /// Instance name of the offending gate.
        gate: String,
        /// Cell the instance currently is.
        from_cell: String,
        /// Cell the retype requested.
        to_cell: String,
        /// Offending pin index.
        pin: usize,
        /// What is wrong with that pin (names the pin and its role).
        detail: String,
    },
    /// Two gates were declared with the same instance name.
    DuplicateGate(String),
    /// A net is driven by more than one gate output.
    MultipleDrivers {
        /// The over-driven net.
        net: String,
        /// The gate that drove it first.
        first: String,
        /// The gate that tried to drive it as well.
        second: String,
    },
    /// A net feeds a gate input (or is a primary output) but has no driver and
    /// is not a primary input.
    UndrivenNet {
        /// The dangling net.
        net: String,
        /// One place the net is consumed, for the error message.
        consumer: String,
    },
    /// A net is driven (or declared) but feeds nothing: it has no fanout and
    /// is not a primary output.
    UnreadNet(String),
    /// The gates form a combinational cycle.
    CombinationalLoop {
        /// Instance names of the gates stuck on the cycle.
        gates: Vec<String>,
    },
    /// A name was looked up that the netlist does not contain.
    UnknownNet(String),
    /// A gate name was looked up that the netlist does not contain.
    UnknownGate(String),
    /// An explicit net load was negative or non-finite.
    InvalidLoad {
        /// The net the load was attached to.
        net: String,
        /// The rejected value (farads).
        farads: f64,
    },
    /// The netlist has no gates at all.
    Empty,
    /// A JSON document did not have the expected shape.
    Json(String),
    /// A SPICE-level lowering step failed.
    Spice(String),
    /// A model-level simulation step failed.
    Model(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::PinCountMismatch {
                gate,
                cell,
                expected,
                got,
            } => write!(
                f,
                "gate `{gate}`: {cell} expects {expected} inputs, got {got}"
            ),
            NetlistError::PinRoleMismatch {
                gate,
                from_cell,
                to_cell,
                pin,
                detail,
            } => write!(
                f,
                "gate `{gate}`: cannot retype {from_cell} to {to_cell}: pin {pin} {detail}"
            ),
            NetlistError::DuplicateGate(gate) => {
                write!(f, "duplicate gate instance name `{gate}`")
            }
            NetlistError::MultipleDrivers { net, first, second } => {
                write!(f, "net `{net}` is driven by both `{first}` and `{second}`")
            }
            NetlistError::UndrivenNet { net, consumer } => write!(
                f,
                "net `{net}` ({consumer}) has no driver and is not a primary input"
            ),
            NetlistError::UnreadNet(net) => {
                write!(f, "net `{net}` feeds nothing and is not a primary output")
            }
            NetlistError::CombinationalLoop { gates } => write!(
                f,
                "combinational cycle involving gates: {}",
                gates.join(", ")
            ),
            NetlistError::UnknownNet(net) => write!(f, "no net named `{net}`"),
            NetlistError::UnknownGate(gate) => write!(f, "no gate named `{gate}`"),
            NetlistError::InvalidLoad { net, farads } => write!(
                f,
                "net `{net}`: explicit load must be finite and non-negative, got {farads}"
            ),
            NetlistError::Empty => write!(f, "netlist contains no gates"),
            NetlistError::Json(msg) => write!(f, "netlist json: {msg}"),
            NetlistError::Spice(msg) => write!(f, "netlist spice lowering: {msg}"),
            NetlistError::Model(msg) => write!(f, "netlist model simulation: {msg}"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl From<JsonError> for NetlistError {
    fn from(e: JsonError) -> Self {
        NetlistError::Json(e.0)
    }
}

impl From<SpiceError> for NetlistError {
    fn from(e: SpiceError) -> Self {
        NetlistError::Spice(e.to_string())
    }
}

impl From<mcsm_core::CsmError> for NetlistError {
    fn from(e: mcsm_core::CsmError) -> Self {
        NetlistError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offenders() {
        let e = NetlistError::MultipleDrivers {
            net: "x".into(),
            first: "u1".into(),
            second: "u2".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("x") && msg.contains("u1") && msg.contains("u2"));

        let e = NetlistError::PinCountMismatch {
            gate: "g".into(),
            cell: "NOR2".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("NOR2"));

        let e: NetlistError = JsonError("bad".into()).into();
        assert!(matches!(e, NetlistError::Json(_)));
    }
}
